#ifndef NOMAP_SERVICE_ENGINE_POOL_H
#define NOMAP_SERVICE_ENGINE_POOL_H

/**
 * @file
 * The serving layer: a pool of warm Engine isolates behind a bounded
 * request queue, with per-request robustness and pool metrics.
 *
 * ExecutionService turns the library's synchronous Engine::run into a
 * multi-tenant service:
 *
 *  - M worker threads pull from a bounded MPMC queue (submit blocks
 *    for backpressure; trySubmit rejects with a QueueFull response).
 *  - EnginePool keeps idle isolates keyed by EngineConfig; a released
 *    isolate is reset() to pristine so reuse is bit-deterministic and
 *    tenants never observe each other's heap.
 *  - A shared CompiledProgramCache lets repeated scripts skip
 *    lexing/parsing/bytecode compilation entirely.
 *  - Robustness: a watchdog thread enforces per-request deadlines via
 *    cooperative cancellation; FatalError becomes an error Response
 *    instead of crashing the worker; unexpected (transient) failures
 *    get a bounded number of retries on a fresh isolate.
 *  - Observability: latency percentiles, throughput, queue depth,
 *    pool/cache counters, and aggregated ExecutionStats, exportable
 *    as JSON (metricsJson()).
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "engine/program_cache.h"
#include "inject/fault_plan.h"
#include "service/metrics.h"
#include "service/mpmc_queue.h"
#include "service/request.h"

namespace nomap {

/**
 * Stable identity of an EngineConfig: every behavior knob, rendered
 * as a string. Used by EnginePool to key idle isolates and by the
 * shard router to key placement (same identity -> same shard, so a
 * tenant's isolates and compiled programs stay shard-local).
 */
std::string engineConfigKey(const EngineConfig &config);

/**
 * Idle-isolate pool keyed by EngineConfig. acquire() reuses a warm
 * isolate when one exists for the config (constructing otherwise);
 * release() resets it to pristine and shelves it. Thread-safe.
 */
class EnginePool
{
  public:
    explicit EnginePool(size_t max_idle_per_config = 8);

    /** Get a pristine isolate for @p config (reused or fresh). */
    std::unique_ptr<Engine> acquire(const EngineConfig &config);

    /** Reset @p engine and shelve it for reuse (drops when full). */
    void release(std::unique_ptr<Engine> engine);

    /** Destroy @p engine (post-failure isolates are never reused). */
    void discard(std::unique_ptr<Engine> engine);

    struct Stats {
        uint64_t created = 0;
        uint64_t reused = 0;
        uint64_t discarded = 0;
    };

    Stats stats() const;
    size_t idleCount() const;

  private:
    mutable std::mutex mutex;
    std::unordered_map<std::string,
                       std::vector<std::unique_ptr<Engine>>>
        idle;
    const size_t maxIdlePerConfig;
    Stats counters;
};

/** Tuning for ExecutionService. */
struct ServiceConfig {
    /** Worker threads executing requests. */
    size_t workers = 4;
    /** Bounded request-queue capacity (admission control). */
    size_t queueCapacity = 256;
    /** Idle isolates kept per distinct EngineConfig. */
    size_t maxIdleEnginesPerConfig = 8;
    /** Default end-to-end deadline in ms; 0 = no deadline. */
    uint64_t defaultTimeoutMs = 0;
    /** Default transient-failure retries per request. */
    uint32_t defaultMaxRetries = 1;
    /** Share compiled programs across requests/isolates. */
    bool enableProgramCache = true;
    /** Distinct scripts the program cache holds. */
    size_t programCacheCapacity = 256;
    /**
     * Test-only fault injection: called before each execution attempt;
     * returning true makes that attempt fail with a transient error
     * (exercises the retry path deterministically).
     */
    std::function<bool(const Request &, uint32_t attempt)>
        failureInjection;
    /**
     * Deterministic fault plan for the service-level sites
     * (service.queuefull / service.retry; see src/inject/). Must
     * outlive the service. When null, NOMAP_FAULT_PLAN is consulted
     * at construction instead. Engine-level sites of the same
     * environment plan arm inside each isolate independently.
     */
    const FaultPlan *faultPlan = nullptr;
};

/** Concurrent multi-isolate execution service (see file comment). */
class ExecutionService
{
  public:
    explicit ExecutionService(ServiceConfig config = ServiceConfig());
    ~ExecutionService();

    ExecutionService(const ExecutionService &) = delete;
    ExecutionService &operator=(const ExecutionService &) = delete;

    /**
     * Enqueue @p request, blocking while the queue is full
     * (backpressure). The future always yields a Response.
     */
    std::future<Response> submit(Request request);

    /**
     * Enqueue without blocking: a full queue yields an immediate
     * QueueFull response instead of waiting.
     */
    std::future<Response> trySubmit(Request request);

    /**
     * Callback-style submission for event-loop callers (the TCP
     * front-end): never blocks, and @p done is invoked exactly once
     * with the Response — from a worker thread on completion, or
     * inline when admission rejects the request (full queue,
     * shutdown). The callback must not throw and should be cheap; the
     * server's completion path hands off to its poll loop.
     */
    void submitAsync(Request request,
                     std::function<void(Response)> done);

    /** Requests currently queued (admission-control signal). */
    size_t queueDepth() const { return queue.size(); }

    /**
     * Count one request load-shed at this shard's door (the sharded
     * router sheds before enqueueing, so the shed never enters the
     * queue; this keeps the counter in the shard's own snapshot).
     */
    void recordShed();

    /**
     * Stop admission, drain every queued request, join all threads.
     * Idempotent; also invoked by the destructor.
     */
    void shutdown();

    ServiceMetricsSnapshot metrics() const;
    std::string metricsJson() const { return metrics().toJson(); }

    const ServiceConfig &config() const { return cfg; }

  private:
    struct Job {
        Request request;
        std::promise<Response> promise;
        /** Callback delivery (submitAsync); promise unused when set. */
        std::function<void(Response)> done;
        int64_t enqueuedUs = 0;
    };

    /** Per-worker watchdog mailbox. */
    struct WorkerSlot {
        std::atomic<bool> cancel{false};
        /** Absolute deadline (steady µs); 0 = no deadline armed. */
        std::atomic<int64_t> deadlineUs{0};
    };

    static int64_t nowUs();

    std::future<Response> enqueue(Request request, bool block);
    /** Shared push path; fills the rejection Response on failure. */
    bool pushJob(Job &&job, bool block, Response *rejection);
    void workerMain(size_t index);
    void watchdogMain();
    Response execute(Job &job, WorkerSlot &slot);
    void recordResponse(const Response &response);

    ServiceConfig cfg;
    /** Plan captured from NOMAP_FAULT_PLAN when cfg.faultPlan is null. */
    std::unique_ptr<FaultPlan> envPlan;
    /** Shared across workers; counters are relaxed atomics. */
    std::unique_ptr<FaultInjector> injector;
    CompiledProgramCache programCache;
    EnginePool pool;
    BoundedMpmcQueue<Job> queue;

    std::vector<std::unique_ptr<WorkerSlot>> slots;
    std::vector<std::thread> workers;
    std::thread watchdog;
    std::atomic<bool> watchdogStop{false};
    std::mutex shutdownMutex;
    bool shutdownDone = false;

    const int64_t startUs;
    std::atomic<uint64_t> nextRequestId{1};
    std::atomic<uint64_t> inFlight{0};

    // ---- Metrics (guarded by metricsMutex) -----------------------------
    mutable std::mutex metricsMutex;
    LatencyHistogram latency;
    ExecutionStats aggregate;
    uint64_t submitted = 0;
    uint64_t rejected = 0;
    uint64_t shedCount = 0;
    uint64_t queueDepthHighWater = 0;
    uint64_t completed = 0;
    uint64_t succeeded = 0;
    uint64_t errors = 0;
    uint64_t timeouts = 0;
    uint64_t retriesTotal = 0;
    uint64_t traceEventsTotal = 0;
    uint64_t traceDropsTotal = 0;
};

} // namespace nomap

#endif // NOMAP_SERVICE_ENGINE_POOL_H
