#include "service/metrics.h"

#include <cmath>

#include "support/logging.h"

namespace nomap {

size_t
LatencyHistogram::bucketOf(double micros)
{
    if (!(micros > 1.0))
        return 0;
    // Bucket b > 0 covers (kGrowth^(b-1), kGrowth^b]: the smallest b
    // whose upper edge reaches micros. ceil() gets within one bucket;
    // the correction loops pin the answer to the pow()-computed edges
    // bucketFloorMicros() exposes, so a value lying exactly on an
    // edge lands in the bucket the edge closes (edge-inclusive).
    double b = std::ceil(std::log(micros) / std::log(kGrowth));
    size_t k = b < 1.0 ? 1 : static_cast<size_t>(b);
    if (k > kBuckets - 1)
        k = kBuckets - 1;
    while (k > 1 &&
           std::pow(kGrowth, static_cast<double>(k - 1)) >= micros) {
        --k;
    }
    while (k < kBuckets - 1 &&
           std::pow(kGrowth, static_cast<double>(k)) < micros) {
        ++k;
    }
    return k;
}

double
LatencyHistogram::bucketFloorMicros(size_t bucket)
{
    if (bucket == 0)
        return 0.0;
    return std::pow(kGrowth, static_cast<double>(bucket) - 1.0);
}

double
LatencyHistogram::bucketMidMicros(size_t bucket)
{
    if (bucket == 0)
        return 1.0;
    // Geometric midpoint of [kGrowth^(b-1), kGrowth^b).
    return std::pow(kGrowth, static_cast<double>(bucket) - 0.5);
}

void
LatencyHistogram::record(double micros)
{
    if (!std::isfinite(micros))
        return; // A NaN sum would poison mean() for good.
    if (micros < 0.0)
        micros = 0.0;
    ++buckets[bucketOf(micros)];
    ++total;
    sum += micros;
    if (micros > maxSeen)
        maxSeen = micros;
}

double
LatencyHistogram::mean() const
{
    return total ? sum / static_cast<double>(total) : 0.0;
}

double
LatencyHistogram::percentile(double p) const
{
    if (total == 0)
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 100.0)
        p = 100.0;
    double rank = p / 100.0 * static_cast<double>(total);
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
        seen += buckets[b];
        if (static_cast<double>(seen) >= rank && buckets[b] > 0) {
            double mid = bucketMidMicros(b);
            return mid > maxSeen ? maxSeen : mid;
        }
    }
    return maxSeen;
}

std::string
ServiceMetricsSnapshot::toJson() const
{
    return toJson(0);
}

std::string
ServiceMetricsSnapshot::toJson(int indent) const
{
    std::string pad(indent > 0 ? static_cast<size_t>(indent) : 0,
                    ' ');
    std::string out;
    out += "{\n";
    out += pad;
    out += strprintf("  \"uptime_seconds\": %.3f,\n", uptimeSeconds);
    out += pad;
    out += strprintf("  \"workers\": %llu,\n",
                     static_cast<unsigned long long>(workers));
    out += pad;
    out += "  \"queue\": {";
    out += strprintf("\"depth\": %llu, ",
                     static_cast<unsigned long long>(queueDepth));
    out += strprintf(
        "\"high_water\": %llu, ",
        static_cast<unsigned long long>(queueDepthHighWater));
    out += strprintf("\"capacity\": %llu, ",
                     static_cast<unsigned long long>(queueCapacity));
    out += strprintf("\"submitted\": %llu, ",
                     static_cast<unsigned long long>(submitted));
    out += strprintf("\"rejected\": %llu, ",
                     static_cast<unsigned long long>(rejected));
    out += strprintf("\"shed\": %llu, ",
                     static_cast<unsigned long long>(shed));
    out += strprintf("\"in_flight\": %llu},\n",
                     static_cast<unsigned long long>(inFlight));
    out += pad;
    out += "  \"outcomes\": {";
    out += strprintf("\"completed\": %llu, ",
                     static_cast<unsigned long long>(completed));
    out += strprintf("\"ok\": %llu, ",
                     static_cast<unsigned long long>(succeeded));
    out += strprintf("\"errors\": %llu, ",
                     static_cast<unsigned long long>(errors));
    out += strprintf("\"timeouts\": %llu, ",
                     static_cast<unsigned long long>(timeouts));
    out += strprintf("\"retries\": %llu},\n",
                     static_cast<unsigned long long>(retries));
    out += pad;
    out += "  \"latency_us\": {";
    out += strprintf("\"p50\": %.1f, ", p50Micros);
    out += strprintf("\"p95\": %.1f, ", p95Micros);
    out += strprintf("\"p99\": %.1f, ", p99Micros);
    out += strprintf("\"mean\": %.1f, ", meanMicros);
    out += strprintf("\"max\": %.1f},\n", maxMicros);
    out += pad;
    out += strprintf("  \"throughput_rps\": %.2f,\n", throughputRps);
    out += pad;
    out += "  \"engine_pool\": {";
    out += strprintf("\"created\": %llu, ",
                     static_cast<unsigned long long>(enginesCreated));
    out += strprintf("\"reused\": %llu, ",
                     static_cast<unsigned long long>(enginesReused));
    out += strprintf("\"discarded\": %llu, ",
                     static_cast<unsigned long long>(enginesDiscarded));
    out += strprintf("\"idle\": %llu},\n",
                     static_cast<unsigned long long>(enginesIdle));
    out += pad;
    out += "  \"program_cache\": {";
    out += strprintf("\"hits\": %llu, ",
                     static_cast<unsigned long long>(cacheHits));
    out += strprintf("\"misses\": %llu, ",
                     static_cast<unsigned long long>(cacheMisses));
    out += strprintf("\"entries\": %llu},\n",
                     static_cast<unsigned long long>(cacheEntries));
    out += pad;
    out += "  \"trace\": {";
    out += strprintf("\"events\": %llu, ",
                     static_cast<unsigned long long>(traceEvents));
    out += strprintf("\"drops\": %llu},\n",
                     static_cast<unsigned long long>(traceDrops));
    out += pad;
    out += "  \"vm\": {";
    out += strprintf(
        "\"instructions\": %llu, ",
        static_cast<unsigned long long>(aggregate.totalInstructions()));
    out += strprintf(
        "\"checks\": %llu, ",
        static_cast<unsigned long long>(aggregate.totalChecks()));
    out += strprintf("\"cycles\": %.0f, ", aggregate.totalCycles());
    out += strprintf("\"deopts\": %llu, ",
                     static_cast<unsigned long long>(aggregate.deopts));
    out += strprintf(
        "\"ftl_compiles\": %llu, ",
        static_cast<unsigned long long>(aggregate.ftlCompiles));
    out += strprintf(
        "\"tx_commits\": %llu, ",
        static_cast<unsigned long long>(aggregate.txCommits));
    out += strprintf(
        "\"tx_aborts\": {\"total\": %llu, \"capacity\": %llu, "
        "\"check\": %llu, \"sof\": %llu}}\n",
        static_cast<unsigned long long>(aggregate.txAborts),
        static_cast<unsigned long long>(aggregate.txAbortsCapacity),
        static_cast<unsigned long long>(aggregate.txAbortsCheck),
        static_cast<unsigned long long>(aggregate.txAbortsSof));
    out += pad;
    out += "}";
    return out;
}

std::string
NetConnectionCounters::toJson() const
{
    std::string out = "{";
    out += strprintf("\"accepted\": %llu, ",
                     static_cast<unsigned long long>(accepted));
    out += strprintf("\"active\": %llu, ",
                     static_cast<unsigned long long>(active));
    out += strprintf("\"closed\": %llu, ",
                     static_cast<unsigned long long>(closed));
    out += strprintf("\"rejected\": %llu, ",
                     static_cast<unsigned long long>(rejected));
    out += strprintf("\"accept_faults\": %llu, ",
                     static_cast<unsigned long long>(acceptFaults));
    out += strprintf("\"accept_backoffs\": %llu, ",
                     static_cast<unsigned long long>(acceptBackoffs));
    out += strprintf("\"read_errors\": %llu, ",
                     static_cast<unsigned long long>(readErrors));
    out += strprintf("\"write_errors\": %llu, ",
                     static_cast<unsigned long long>(writeErrors));
    out += strprintf("\"decode_errors\": %llu, ",
                     static_cast<unsigned long long>(decodeErrors));
    out += strprintf("\"frames_in\": %llu, ",
                     static_cast<unsigned long long>(framesIn));
    out += strprintf("\"frames_out\": %llu, ",
                     static_cast<unsigned long long>(framesOut));
    out += strprintf("\"deferred_frames\": %llu, ",
                     static_cast<unsigned long long>(deferredFrames));
    out += strprintf("\"bytes_in\": %llu, ",
                     static_cast<unsigned long long>(bytesIn));
    out += strprintf("\"bytes_out\": %llu}",
                     static_cast<unsigned long long>(bytesOut));
    return out;
}

std::string
NetLoopCounters::toJson() const
{
    std::string out = "{";
    out += strprintf("\"loop\": %llu, ",
                     static_cast<unsigned long long>(loop));
    out += strprintf("\"accepted\": %llu, ",
                     static_cast<unsigned long long>(accepted));
    out += strprintf("\"active\": %llu, ",
                     static_cast<unsigned long long>(active));
    out += strprintf("\"frames_in\": %llu, ",
                     static_cast<unsigned long long>(framesIn));
    out += strprintf("\"frames_out\": %llu}",
                     static_cast<unsigned long long>(framesOut));
    return out;
}

std::string
ShardedMetricsSnapshot::toJson() const
{
    std::string out;
    out += "{\n";
    out += strprintf("  \"shards\": %llu,\n",
                     static_cast<unsigned long long>(shards));
    out += strprintf("  \"loops\": %llu,\n",
                     static_cast<unsigned long long>(loops));
    out += strprintf("  \"shed_queue_depth\": %llu,\n",
                     static_cast<unsigned long long>(shedQueueDepth));
    out += "  \"router\": {";
    out += strprintf("\"routed\": %llu, ",
                     static_cast<unsigned long long>(routed));
    out += strprintf("\"shed\": %llu, ",
                     static_cast<unsigned long long>(shedTotal));
    out += "\"routed_per_loop\": [";
    for (size_t i = 0; i < routedPerLoop.size(); ++i) {
        out += strprintf(
            "%s%llu", i ? ", " : "",
            static_cast<unsigned long long>(routedPerLoop[i]));
    }
    out += "]},\n";
    out += "  \"connections\": ";
    out += connections.toJson();
    out += ",\n";
    out += "  \"event_loops\": [";
    for (size_t i = 0; i < eventLoops.size(); ++i) {
        out += i ? ", " : "";
        out += eventLoops[i].toJson();
    }
    out += "],\n";
    out += "  \"per_shard\": [\n";
    for (size_t i = 0; i < perShard.size(); ++i) {
        const Shard &shard = perShard[i];
        out += strprintf("    {\"shard\": %llu, ",
                         static_cast<unsigned long long>(i));
        out += strprintf("\"routed\": %llu, ",
                         static_cast<unsigned long long>(shard.routed));
        out += strprintf("\"shed\": %llu,\n",
                         static_cast<unsigned long long>(shard.shed));
        out += "     \"service\": ";
        out += shard.service.toJson(5);
        out += i + 1 < perShard.size() ? "},\n" : "}\n";
    }
    out += "  ]\n";
    out += "}";
    return out;
}

} // namespace nomap
