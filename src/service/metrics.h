#ifndef NOMAP_SERVICE_METRICS_H
#define NOMAP_SERVICE_METRICS_H

/**
 * @file
 * Pool-level observability: a log-scale latency histogram and the
 * aggregate snapshot the service exports (optionally as JSON).
 *
 * The histogram uses geometric buckets (~25% relative width) so one
 * small fixed array covers microseconds to hours with bounded
 * percentile error — the standard serving-metrics trade-off.
 * Instances are not internally synchronized; the service records into
 * them under its metrics mutex.
 */

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/stats.h"

namespace nomap {

/** Fixed-size geometric histogram of latencies in microseconds. */
class LatencyHistogram
{
  public:
    void record(double micros);

    uint64_t count() const { return total; }
    double mean() const;
    double max() const { return maxSeen; }

    /** Approximate latency at percentile @p p (0..100). */
    double percentile(double p) const;

    // The bucket geometry is part of the external metrics contract
    // (dashboards bake in the edges), so it is public and pinned by
    // the golden-file test tests/test_metrics_golden.cc.

    /** Geometric bucket growth factor (~25% relative resolution). */
    static constexpr double kGrowth = 1.25;

    /** kGrowth^96 microseconds ≈ 6 hours of range. */
    static constexpr size_t kBuckets = 96;

    /** Bucket index covering @p micros. */
    static size_t bucketOf(double micros);

    /**
     * Lower edge of @p bucket in microseconds. Bucket 0 covers
     * [0, 1]; bucket b > 0 covers (kGrowth^(b-1), kGrowth^b].
     */
    static double bucketFloorMicros(size_t bucket);

    /** Representative (geometric-mid) latency for @p bucket. */
    static double bucketMidMicros(size_t bucket);

  private:
    std::array<uint64_t, kBuckets> buckets{};
    uint64_t total = 0;
    double sum = 0.0;
    double maxSeen = 0.0;
};

/** Point-in-time view of the whole service. */
struct ServiceMetricsSnapshot {
    // ---- Lifecycle -----------------------------------------------------
    double uptimeSeconds = 0.0;
    uint64_t workers = 0;

    // ---- Admission -----------------------------------------------------
    uint64_t queueDepth = 0;
    /** Deepest the queue has ever been (admission-control signal). */
    uint64_t queueDepthHighWater = 0;
    uint64_t queueCapacity = 0;
    uint64_t submitted = 0;
    uint64_t rejected = 0; ///< QueueFull + Shutdown rejections.
    /** Requests load-shed by queue-depth admission control. */
    uint64_t shed = 0;
    uint64_t inFlight = 0; ///< Requests currently inside workers.

    // ---- Outcomes ------------------------------------------------------
    uint64_t completed = 0;
    uint64_t succeeded = 0;
    uint64_t errors = 0;
    uint64_t timeouts = 0;
    uint64_t retries = 0; ///< Extra attempts beyond the first.

    // ---- End-to-end latency (microseconds) -----------------------------
    double p50Micros = 0.0;
    double p95Micros = 0.0;
    double p99Micros = 0.0;
    double meanMicros = 0.0;
    double maxMicros = 0.0;
    double throughputRps = 0.0; ///< completed / uptime.

    // ---- Engine pool ---------------------------------------------------
    uint64_t enginesCreated = 0;
    uint64_t enginesReused = 0;
    uint64_t enginesDiscarded = 0;
    uint64_t enginesIdle = 0;

    // ---- Program cache -------------------------------------------------
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheEntries = 0;

    // ---- Tracing -------------------------------------------------------
    /** Trace events exported by successful requests (incl. spans). */
    uint64_t traceEvents = 0;
    /** Events lost because a per-engine trace buffer filled up. */
    uint64_t traceDrops = 0;

    // ---- Aggregated VM counters (successful requests) ------------------
    ExecutionStats aggregate;

    /** Render the snapshot as a JSON object (stable key order). */
    std::string toJson() const;

    /**
     * Same object rendered with @p indent leading spaces per line,
     * for embedding as a per-shard section of a sharded snapshot.
     */
    std::string toJson(int indent) const;
};

/**
 * Wire-level counters of the TCP front-end. Lives here (not in
 * src/net/) so the sharded snapshot can embed it without the service
 * layer depending on sockets; a snapshot taken without a server in
 * front reports all zeros.
 */
struct NetConnectionCounters {
    uint64_t accepted = 0;      ///< Connections accept()ed and served.
    uint64_t active = 0;        ///< Currently open.
    uint64_t closed = 0;        ///< Closed (either side).
    /** Turned away at the max-connection cap (never served). */
    uint64_t rejected = 0;
    uint64_t acceptFaults = 0;  ///< net.accept injected failures.
    /** Accept-interest backoffs after transient accept() failures. */
    uint64_t acceptBackoffs = 0;
    uint64_t readErrors = 0;    ///< recv() errors (not EOF).
    uint64_t writeErrors = 0;   ///< send() errors.
    uint64_t decodeErrors = 0;  ///< Malformed/oversized frames.
    uint64_t framesIn = 0;      ///< Complete request frames decoded.
    uint64_t framesOut = 0;     ///< Response frames fully written.
    uint64_t deferredFrames = 0; ///< net.frame slow-client deferrals.
    uint64_t bytesIn = 0;
    uint64_t bytesOut = 0;

    /** Render as a JSON object (stable key order). */
    std::string toJson() const;
};

/** Per-event-loop slice of the wire counters (1-based loop ids). */
struct NetLoopCounters {
    uint64_t loop = 0;     ///< 1-based loop ordinal.
    uint64_t accepted = 0; ///< Connections pinned to this loop.
    uint64_t active = 0;   ///< Currently open on this loop.
    uint64_t framesIn = 0;
    uint64_t framesOut = 0;

    /** Render as a JSON object (stable key order). */
    std::string toJson() const;
};

/**
 * Point-in-time view of the whole sharded front-end: one per-shard
 * section per ExecutionService shard (each a full
 * ServiceMetricsSnapshot plus the router's counters for that shard)
 * and the wire counters when a TCP server fronts the shards.
 */
struct ShardedMetricsSnapshot {
    uint64_t shards = 0;
    /** Event loops configured at the router (1 when no TCP server). */
    uint64_t loops = 0;
    /** Shed threshold in effect (0 = shedding disabled). */
    uint64_t shedQueueDepth = 0;
    /** Totals across shards (router-side). */
    uint64_t routed = 0;
    uint64_t shedTotal = 0;
    /**
     * Router admissions by originating event loop; index 0 counts
     * in-process submissions (no TCP connection behind them).
     */
    std::vector<uint64_t> routedPerLoop;

    struct Shard {
        uint64_t routed = 0; ///< Requests the router sent here.
        uint64_t shed = 0;   ///< Requests shed at this shard's door.
        ServiceMetricsSnapshot service;
    };
    std::vector<Shard> perShard;

    /** Wire counters (all zero without a TCP server in front). */
    NetConnectionCounters connections;

    /** Per-loop wire counters (empty without a TCP server). */
    std::vector<NetLoopCounters> eventLoops;

    /** Render the snapshot as a JSON object (stable key order). */
    std::string toJson() const;
};

} // namespace nomap

#endif // NOMAP_SERVICE_METRICS_H
