#ifndef NOMAP_SERVICE_METRICS_H
#define NOMAP_SERVICE_METRICS_H

/**
 * @file
 * Pool-level observability: a log-scale latency histogram and the
 * aggregate snapshot the service exports (optionally as JSON).
 *
 * The histogram uses geometric buckets (~25% relative width) so one
 * small fixed array covers microseconds to hours with bounded
 * percentile error — the standard serving-metrics trade-off.
 * Instances are not internally synchronized; the service records into
 * them under its metrics mutex.
 */

#include <array>
#include <cstdint>
#include <string>

#include "engine/stats.h"

namespace nomap {

/** Fixed-size geometric histogram of latencies in microseconds. */
class LatencyHistogram
{
  public:
    void record(double micros);

    uint64_t count() const { return total; }
    double mean() const;
    double max() const { return maxSeen; }

    /** Approximate latency at percentile @p p (0..100). */
    double percentile(double p) const;

    // The bucket geometry is part of the external metrics contract
    // (dashboards bake in the edges), so it is public and pinned by
    // the golden-file test tests/test_metrics_golden.cc.

    /** Geometric bucket growth factor (~25% relative resolution). */
    static constexpr double kGrowth = 1.25;

    /** kGrowth^96 microseconds ≈ 6 hours of range. */
    static constexpr size_t kBuckets = 96;

    /** Bucket index covering @p micros. */
    static size_t bucketOf(double micros);

    /**
     * Lower edge of @p bucket in microseconds. Bucket 0 covers
     * [0, 1]; bucket b > 0 covers (kGrowth^(b-1), kGrowth^b].
     */
    static double bucketFloorMicros(size_t bucket);

    /** Representative (geometric-mid) latency for @p bucket. */
    static double bucketMidMicros(size_t bucket);

  private:
    std::array<uint64_t, kBuckets> buckets{};
    uint64_t total = 0;
    double sum = 0.0;
    double maxSeen = 0.0;
};

/** Point-in-time view of the whole service. */
struct ServiceMetricsSnapshot {
    // ---- Lifecycle -----------------------------------------------------
    double uptimeSeconds = 0.0;
    uint64_t workers = 0;

    // ---- Admission -----------------------------------------------------
    uint64_t queueDepth = 0;
    uint64_t queueCapacity = 0;
    uint64_t submitted = 0;
    uint64_t rejected = 0; ///< QueueFull + Shutdown rejections.
    uint64_t inFlight = 0; ///< Requests currently inside workers.

    // ---- Outcomes ------------------------------------------------------
    uint64_t completed = 0;
    uint64_t succeeded = 0;
    uint64_t errors = 0;
    uint64_t timeouts = 0;
    uint64_t retries = 0; ///< Extra attempts beyond the first.

    // ---- End-to-end latency (microseconds) -----------------------------
    double p50Micros = 0.0;
    double p95Micros = 0.0;
    double p99Micros = 0.0;
    double meanMicros = 0.0;
    double maxMicros = 0.0;
    double throughputRps = 0.0; ///< completed / uptime.

    // ---- Engine pool ---------------------------------------------------
    uint64_t enginesCreated = 0;
    uint64_t enginesReused = 0;
    uint64_t enginesDiscarded = 0;
    uint64_t enginesIdle = 0;

    // ---- Program cache -------------------------------------------------
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheEntries = 0;

    // ---- Tracing -------------------------------------------------------
    /** Trace events exported by successful requests (incl. spans). */
    uint64_t traceEvents = 0;
    /** Events lost because a per-engine trace buffer filled up. */
    uint64_t traceDrops = 0;

    // ---- Aggregated VM counters (successful requests) ------------------
    ExecutionStats aggregate;

    /** Render the snapshot as a JSON object (stable key order). */
    std::string toJson() const;
};

} // namespace nomap

#endif // NOMAP_SERVICE_METRICS_H
