#ifndef NOMAP_SERVICE_MPMC_QUEUE_H
#define NOMAP_SERVICE_MPMC_QUEUE_H

/**
 * @file
 * Bounded multi-producer/multi-consumer FIFO.
 *
 * The service's admission point: a hard capacity turns overload into
 * explicit backpressure (blocking push) or rejection (tryPush)
 * instead of unbounded memory growth. close() initiates drain
 * semantics — producers start failing immediately, consumers keep
 * popping until the queue is empty and then see end-of-stream.
 *
 * Mutex + two condvars rather than a lock-free ring: queue operations
 * bracket whole script executions, so contention on this lock is
 * nowhere near the serving hot path, and the blocking semantics come
 * for free.
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace nomap {

template <typename T>
class BoundedMpmcQueue
{
  public:
    explicit BoundedMpmcQueue(size_t capacity)
        : cap(capacity ? capacity : 1)
    {
    }

    /**
     * Block until space is available, then enqueue. Returns false
     * (leaving @p item unmoved) if the queue was closed first.
     */
    bool
    push(T &&item)
    {
        std::unique_lock<std::mutex> lock(m);
        notFull.wait(lock,
                     [&] { return closedFlag || q.size() < cap; });
        if (closedFlag)
            return false;
        q.push_back(std::move(item));
        notEmpty.notify_one();
        return true;
    }

    /**
     * Enqueue without blocking. Returns false (leaving @p item
     * unmoved) when full or closed.
     */
    bool
    tryPush(T &&item)
    {
        std::lock_guard<std::mutex> lock(m);
        if (closedFlag || q.size() >= cap)
            return false;
        q.push_back(std::move(item));
        notEmpty.notify_one();
        return true;
    }

    /**
     * Block until an item is available and dequeue it. Returns
     * nullopt only when the queue is closed *and* drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(m);
        notEmpty.wait(lock, [&] { return closedFlag || !q.empty(); });
        if (q.empty())
            return std::nullopt;
        T item = std::move(q.front());
        q.pop_front();
        notFull.notify_one();
        return item;
    }

    /** Stop admitting; wake every blocked producer and consumer. */
    void
    close()
    {
        std::lock_guard<std::mutex> lock(m);
        closedFlag = true;
        notFull.notify_all();
        notEmpty.notify_all();
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(m);
        return q.size();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(m);
        return closedFlag;
    }

    size_t capacity() const { return cap; }

  private:
    mutable std::mutex m;
    std::condition_variable notFull;
    std::condition_variable notEmpty;
    std::deque<T> q;
    const size_t cap;
    bool closedFlag = false;
};

} // namespace nomap

#endif // NOMAP_SERVICE_MPMC_QUEUE_H
