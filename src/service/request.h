#ifndef NOMAP_SERVICE_REQUEST_H
#define NOMAP_SERVICE_REQUEST_H

/**
 * @file
 * The service's wire types: one Request in, one Response out.
 *
 * A Request is a script plus the EngineConfig to run it under (the
 * service is multi-tenant across architectures/configs) and
 * per-request robustness knobs. A Response always comes back — user
 * errors, deadline overruns, queue rejection, and shutdown are all
 * reported as statuses, never as exceptions escaping a worker.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "engine/config.h"
#include "engine/stats.h"
#include "trace/trace.h"

namespace nomap {

/** How a request ended. */
enum class ResponseStatus : uint8_t {
    Ok,        ///< Executed to completion.
    Error,     ///< User/program error (syntax, semantics, retries spent).
    Timeout,   ///< Deadline exceeded (queued or executing).
    QueueFull, ///< Rejected by backpressure (trySubmit on a full queue).
    Shutdown,  ///< Rejected because the service is shutting down.
    Shed,      ///< Load-shed by admission control (shard over depth).
};

/** Printable status name. */
inline const char *
responseStatusName(ResponseStatus status)
{
    switch (status) {
      case ResponseStatus::Ok: return "ok";
      case ResponseStatus::Error: return "error";
      case ResponseStatus::Timeout: return "timeout";
      case ResponseStatus::QueueFull: return "queue_full";
      case ResponseStatus::Shutdown: return "shutdown";
      case ResponseStatus::Shed: return "shed";
    }
    return "?";
}

/** One script-execution request. */
struct Request {
    /** Caller-chosen id; 0 lets the service assign one. */
    uint64_t id = 0;
    /** JS-subset program text. */
    std::string source;
    /** VM configuration (architecture, tiers, thresholds, seed). */
    EngineConfig config;
    /** End-to-end deadline in ms from submission; 0 = service default. */
    uint64_t timeoutMs = 0;
    /** Transient-failure retries; negative = service default. */
    int32_t maxRetries = -1;
    /**
     * Routing key for the sharded front-end: requests with the same
     * tenant + EngineConfig identity always land on the same shard
     * (isolate-pool and program-cache affinity). Empty is a valid
     * tenant.
     */
    std::string tenant;
    /**
     * Shard the router chose (stamped by ShardedService::submitAsync;
     * callers need not set it). Tags the request's trace span.
     */
    uint32_t shard = 0;
    /**
     * Originating wire connection, 0 when the request did not come in
     * over TCP. Tags the request's trace span so a Perfetto view can
     * be grouped by connection.
     */
    uint64_t connectionId = 0;
    /**
     * Event loop the connection is pinned to (1-based ordinal), 0 for
     * in-process submissions. Stamped by the server; tags the
     * request's trace span and the router's per-loop counters.
     */
    uint32_t loop = 0;
};

/** The outcome of one Request. */
struct Response {
    uint64_t id = 0;
    ResponseStatus status = ResponseStatus::Ok;
    /** Human-readable failure description ("" on Ok). */
    std::string error;

    /** Display string of the program's `result` global. */
    std::string resultString;
    /** Everything print() emitted. */
    std::string printed;
    /** Per-request counters (isolate stats are reset per request). */
    ExecutionStats stats;
    /** True when compilation was skipped via the program cache. */
    bool programCacheHit = false;
    /** Execution attempts consumed (1 = no retries). */
    uint32_t attempts = 1;
    /** Shard that served (or shed) the request; 0 when unsharded. */
    uint32_t shard = 0;

    /** Time from submission to worker pickup, microseconds. */
    double queueMicros = 0.0;
    /** Time inside the worker (all attempts), microseconds. */
    double execMicros = 0.0;
    /** End-to-end latency, microseconds. */
    double totalMicros = 0.0;

    /**
     * Drained trace events when the request's EngineConfig enabled
     * tracing (traceCapacity > 0) and the request succeeded: the
     * engine's events wrapped in request-scoped spans (queue wait,
     * execute, retries), all stamped with this request's id as the
     * exporter lane. Empty otherwise.
     */
    std::vector<TraceEvent> traceEvents;
    /** Events the engine's trace buffer dropped (buffer full). */
    uint64_t traceDropped = 0;

    bool ok() const { return status == ResponseStatus::Ok; }
};

} // namespace nomap

#endif // NOMAP_SERVICE_REQUEST_H
