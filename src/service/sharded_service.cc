#include "service/sharded_service.h"

#include <utility>

#include "support/logging.h"

namespace nomap {

// ---- ShardRouter -------------------------------------------------------

ShardRouter::ShardRouter(size_t shard_count)
    : shards(shard_count ? shard_count : 1)
{
}

uint64_t
ShardRouter::keyHash(const std::string &tenant,
                     const EngineConfig &config)
{
    // FNV-1a over "tenant\0config-identity". The config identity is
    // the same string EnginePool keys isolates by, so router placement
    // and pool affinity agree by construction.
    uint64_t h = 14695981039346656037ull;
    auto mix = [&h](const std::string &s) {
        for (unsigned char c : s) {
            h ^= c;
            h *= 1099511628211ull;
        }
    };
    mix(tenant);
    h ^= 0; // Separator byte keeps ("ab","") != ("a","b...").
    h *= 1099511628211ull;
    mix(engineConfigKey(config));
    return h;
}

size_t
ShardRouter::route(const Request &request) const
{
    return static_cast<size_t>(
        keyHash(request.tenant, request.config) % shards);
}

// ---- ShardedService ----------------------------------------------------

ShardedService::ShardedService(ShardedServiceConfig config)
    : cfg(std::move(config)), router(cfg.shards)
{
    const FaultPlan *plan = cfg.faultPlan;
    if (!plan) {
        if (std::optional<FaultPlan> env = FaultPlan::fromEnv()) {
            envPlan = std::make_unique<FaultPlan>(std::move(*env));
            plan = envPlan.get();
        }
    }
    if (plan && !plan->empty())
        injector = std::make_unique<FaultInjector>(*plan);

    size_t n = router.shardCount();
    shards.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        ServiceConfig sc = cfg.shard;
        // Hand the shard the resolved plan explicitly: each shard
        // arms its own injector (fresh counters), and resolving here
        // keeps a mid-run NOMAP_FAULT_PLAN change from skewing shards.
        sc.faultPlan = plan;
        shards.push_back(
            std::make_unique<ExecutionService>(std::move(sc)));
        routedCounts.push_back(
            std::make_unique<std::atomic<uint64_t>>(0));
        shedCounts.push_back(
            std::make_unique<std::atomic<uint64_t>>(0));
    }

    size_t loops = cfg.loops ? cfg.loops : 1;
    routedByLoop.reserve(loops + 1);
    for (size_t i = 0; i <= loops; ++i)
        routedByLoop.push_back(
            std::make_unique<std::atomic<uint64_t>>(0));
}

ShardedService::~ShardedService()
{
    shutdown();
}

void
ShardedService::shutdown()
{
    for (auto &shard : shards)
        shard->shutdown();
}

size_t
ShardedService::shardOf(const Request &request) const
{
    return router.route(request);
}

void
ShardedService::submitAsync(Request request,
                            std::function<void(Response)> done)
{
    size_t index = router.route(request);
    request.shard = static_cast<uint32_t>(index);

    bool forced_shed =
        injector && injector->fire(FaultSite::ServiceShardFull);
    bool over_depth =
        cfg.shedQueueDepth != 0 &&
        shards[index]->queueDepth() >= cfg.shedQueueDepth;
    if (forced_shed || over_depth) {
        shedCounts[index]->fetch_add(1, std::memory_order_relaxed);
        shards[index]->recordShed();
        Response response;
        response.id = request.id;
        response.shard = request.shard;
        response.status = ResponseStatus::Shed;
        response.error =
            forced_shed
                ? strprintf("shard %zu shed (injected fault)", index)
                : strprintf(
                      "shard %zu shed: queue depth >= %llu", index,
                      static_cast<unsigned long long>(
                          cfg.shedQueueDepth));
        done(std::move(response));
        return;
    }

    routedCounts[index]->fetch_add(1, std::memory_order_relaxed);
    size_t loopSlot = request.loop;
    if (loopSlot >= routedByLoop.size())
        loopSlot = routedByLoop.size() - 1;
    routedByLoop[loopSlot]->fetch_add(1, std::memory_order_relaxed);
    shards[index]->submitAsync(std::move(request), std::move(done));
}

std::future<Response>
ShardedService::submit(Request request)
{
    auto promise = std::make_shared<std::promise<Response>>();
    std::future<Response> future = promise->get_future();
    submitAsync(std::move(request), [promise](Response response) {
        promise->set_value(std::move(response));
    });
    return future;
}

ShardedMetricsSnapshot
ShardedService::metrics() const
{
    ShardedMetricsSnapshot snap;
    snap.shards = shards.size();
    snap.loops = cfg.loops ? cfg.loops : 1;
    snap.shedQueueDepth = cfg.shedQueueDepth;
    snap.routedPerLoop.reserve(routedByLoop.size());
    for (const auto &counter : routedByLoop)
        snap.routedPerLoop.push_back(
            counter->load(std::memory_order_relaxed));
    snap.perShard.reserve(shards.size());
    for (size_t i = 0; i < shards.size(); ++i) {
        ShardedMetricsSnapshot::Shard section;
        section.routed =
            routedCounts[i]->load(std::memory_order_relaxed);
        section.shed = shedCounts[i]->load(std::memory_order_relaxed);
        section.service = shards[i]->metrics();
        snap.routed += section.routed;
        snap.shedTotal += section.shed;
        snap.perShard.push_back(std::move(section));
    }
    return snap;
}

} // namespace nomap
