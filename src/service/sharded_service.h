#ifndef NOMAP_SERVICE_SHARDED_SERVICE_H
#define NOMAP_SERVICE_SHARDED_SERVICE_H

/**
 * @file
 * Sharded serving: N independent ExecutionService shards behind a
 * stable router, with queue-depth admission control in front.
 *
 * Why shard at all? Each ExecutionService owns its isolate pool,
 * compiled-program cache, and request queue; routing every request
 * for a given (tenant, EngineConfig) identity to the same shard keeps
 * the warm isolates and compiled programs for that identity
 * shard-local, so the pool hit rate survives scale-out instead of
 * being diluted across all workers (the thread/data-placement lesson
 * from the STM mapping literature, applied one level up).
 *
 * Admission control: HTM-style robustness discipline — bounded work,
 * then graceful degradation. A request that finds its routed shard's
 * queue at or above ShardedServiceConfig::shedQueueDepth is *shed*
 * immediately with ResponseStatus::Shed rather than queued behind a
 * backlog it would only time out in. The shed is counted per shard
 * and surfaces in the sharded metrics snapshot; clients treat Shed as
 * "retry later against a less loaded system".
 *
 * Determinism: routing is a pure function of (tenant, EngineConfig),
 * so the same request mix always lands on the same shards; execution
 * inside each shard keeps the PR-1 differential guarantee
 * (bit-identical to sequential in-process runs).
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "inject/fault_plan.h"
#include "service/engine_pool.h"
#include "service/metrics.h"
#include "service/request.h"

namespace nomap {

/**
 * Stable shard placement: FNV-1a over tenant + EngineConfig identity,
 * reduced modulo the shard count. A pure function — no state — so
 * routing is reproducible across processes and restarts.
 */
class ShardRouter
{
  public:
    explicit ShardRouter(size_t shard_count);

    /** Shard index for @p request (same inputs -> same shard). */
    size_t route(const Request &request) const;

    /** The underlying hash (exposed for tests/diagnostics). */
    static uint64_t keyHash(const std::string &tenant,
                            const EngineConfig &config);

    size_t shardCount() const { return shards; }

  private:
    const size_t shards;
};

/** Tuning for ShardedService. */
struct ShardedServiceConfig {
    /** Number of ExecutionService shards (clamped to >= 1). */
    size_t shards = 2;
    /** Template applied to every shard (workers, queue, cache...). */
    ServiceConfig shard;
    /**
     * Queue-depth admission control: a request whose routed shard
     * already holds this many queued requests is shed immediately
     * with ResponseStatus::Shed. 0 disables shedding (overload then
     * surfaces as blocking or QueueFull at the shard itself).
     */
    size_t shedQueueDepth = 0;
    /**
     * Event loops of the fronting server (clamped to >= 1); sizes the
     * router's per-loop admission counters. Requests whose
     * Request::loop exceeds this are counted in the last bucket.
     */
    size_t loops = 1;
    /**
     * Fault plan for the router-level service.shardfull site. Must
     * outlive the service; when null, NOMAP_FAULT_PLAN is consulted.
     * The same plan is also handed to every shard (service.* sites
     * arm per shard with independent counters).
     */
    const FaultPlan *faultPlan = nullptr;
};

/** N ExecutionService shards behind a stable router (file comment). */
class ShardedService
{
  public:
    explicit ShardedService(
        ShardedServiceConfig config = ShardedServiceConfig());
    ~ShardedService();

    ShardedService(const ShardedService &) = delete;
    ShardedService &operator=(const ShardedService &) = delete;

    /**
     * Route, apply admission control, and submit. Never blocks.
     * @p done is invoked exactly once: inline on shed/rejection,
     * from a shard worker on completion. Stamps Request::shard.
     */
    void submitAsync(Request request,
                     std::function<void(Response)> done);

    /** Future-style convenience wrapper over submitAsync. */
    std::future<Response> submit(Request request);

    /** The shard the router would pick for @p request. */
    size_t shardOf(const Request &request) const;

    size_t shardCount() const { return shards.size(); }

    /** Direct shard access (tests, metrics drilling). */
    ExecutionService &shard(size_t index) { return *shards[index]; }

    /** Stop admission on every shard, drain, join. Idempotent. */
    void shutdown();

    /**
     * Snapshot every shard plus router counters. The connections
     * section is zeroed; a fronting TCP server fills it in before
     * rendering (NoMapServer::metrics()).
     */
    ShardedMetricsSnapshot metrics() const;
    std::string metricsJson() const { return metrics().toJson(); }

    const ShardedServiceConfig &config() const { return cfg; }

  private:
    ShardedServiceConfig cfg;
    /** Plan captured from NOMAP_FAULT_PLAN when cfg.faultPlan null. */
    std::unique_ptr<FaultPlan> envPlan;
    /** Router-level injector (service.shardfull). */
    std::unique_ptr<FaultInjector> injector;
    ShardRouter router;
    std::vector<std::unique_ptr<ExecutionService>> shards;
    /** Per-shard router counters (relaxed; exact totals). */
    std::vector<std::unique_ptr<std::atomic<uint64_t>>> routedCounts;
    std::vector<std::unique_ptr<std::atomic<uint64_t>>> shedCounts;
    /**
     * Admissions by originating event loop; slot 0 is in-process
     * (Request::loop == 0), slots 1..loops are server loops.
     */
    std::vector<std::unique_ptr<std::atomic<uint64_t>>> routedByLoop;
};

} // namespace nomap

#endif // NOMAP_SERVICE_SHARDED_SERVICE_H
