#include "stm/shared_heap.h"

#include <thread>

#include "support/counters.h"
#include "support/logging.h"

namespace nomap {

const char *
regionAbortCauseName(RegionAbortCause cause)
{
    switch (cause) {
      case RegionAbortCause::None: return "none";
      case RegionAbortCause::Conflict: return "conflict";
      case RegionAbortCause::Capacity: return "capacity";
      case RegionAbortCause::Injected: return "injected";
    }
    return "?";
}

namespace {

/** AbortCode rendered into session TxAbort events (the precise cause
 *  rides in `ways` as a RegionAbortCause). */
AbortCode
abortCodeFor(RegionAbortCause cause)
{
    switch (cause) {
      case RegionAbortCause::Capacity:
        return AbortCode::Capacity;
      case RegionAbortCause::Conflict:
      case RegionAbortCause::Injected:
        return AbortCode::ExplicitCheck;
      case RegionAbortCause::None:
        break;
    }
    return AbortCode::None;
}

} // namespace

SharedHeapSession::SharedHeapSession(const SharedHeapConfig &config_,
                                     const FaultPlan *plan)
    : config(config_)
{
    NOMAP_ASSERT(config.lanes >= 1);
    shapesPtr = std::make_unique<ShapeTable>();
    stringsPtr = std::make_unique<StringTable>();
    heapPtr = std::make_unique<Heap>(*shapesPtr, *stringsPtr);

    ExternalVm vm;
    vm.shapes = shapesPtr.get();
    vm.strings = stringsPtr.get();
    vm.heap = heapPtr.get();
    for (uint32_t i = 0; i < config.lanes; ++i) {
        auto lane = std::make_unique<Lane>();
        lane->engine = std::make_unique<Engine>(config.engine, vm);
        lane->footprint = std::make_unique<RegionFootprint>(
            htmModeOf(config.engine.arch), config.engine.capacityModel);
        if (lane->engine->faultInjector()) {
            lane->planCopy = std::make_unique<FaultPlan>(
                lane->engine->faultInjector()->plan());
        }
        laneStates.push_back(std::move(lane));
    }

    if (plan) {
        sessionPlan = std::make_unique<FaultPlan>(*plan);
    } else if (std::optional<FaultPlan> env = FaultPlan::fromEnv()) {
        sessionPlan = std::make_unique<FaultPlan>(std::move(*env));
    }
    if (sessionPlan && !sessionPlan->empty())
        injector = std::make_unique<FaultInjector>(*sessionPlan);

    if (config.sessionTraceCapacity > 0) {
        sessionTrace =
            std::make_unique<TraceBuffer>(config.sessionTraceCapacity);
    }
}

SharedHeapSession::~SharedHeapSession() = default;

Engine &
SharedHeapSession::engine(uint32_t lane)
{
    NOMAP_ASSERT(lane < laneStates.size());
    return *laneStates[lane]->engine;
}

void
SharedHeapSession::emitEvent(TraceEventType type, uint32_t lane,
                             uint16_t aux, uint8_t code, uint32_t ways,
                             uint64_t bytes)
{
    if (!sessionTrace || !sessionTrace->enabled())
        return;
    TraceEvent event;
    event.vcycles = eventSerial++;
    event.type = type;
    event.code = code;
    event.aux = aux;
    event.ways = ways;
    event.bytes = bytes;
    event.tid = lane + 1;
    sessionTrace->emit(event);
}

RegionResult
SharedHeapSession::run(uint32_t lane_idx, const std::string &source)
{
    NOMAP_ASSERT(lane_idx < laneStates.size());
    Lane &lane = *laneStates[lane_idx];
    Engine &eng = *lane.engine;

    std::unique_lock<std::mutex> lock(domainMutex);

    // One stm.fallback occurrence per *logical region*, decided up
    // front so a doomed region stays doomed across its whole retry
    // ladder (and an undoomed one never spuriously fires mid-ladder).
    bool doomed =
        injector && injector->fire(FaultSite::StmFallback);

    // Retries must draw the same Math.random() sequence the aborted
    // attempt did; snapshot the raw state once per region.
    uint64_t rng_snapshot = eng.rng().rawState();

    uint32_t conflict_aborts = 0;
    uint32_t capacity_aborts = 0;
    uint32_t injected_aborts = 0;

    for (uint32_t attempt = 1;; ++attempt) {
        if (!lock.owns_lock())
            lock.lock();

        bool htm_mode = attempt <= config.engine.htmRetryLimit;
        // Publish this attempt's logical begin, then drop and retake
        // the mutex before executing. Any lane that slips in between
        // commits *inside* this attempt's window, which is exactly
        // what makes wall-clock-overlapping run() calls logically
        // concurrent — without the gap, begin-to-probe would sit
        // entirely inside one mutex hold and no commit could ever
        // land in a window, making conflict aborts unreachable. The
        // yield matters: std::mutex is unfair, and without it the
        // publisher wins the reacquire race nearly every time, which
        // would silently starve the window again.
        uint64_t start_serial = conflicts.beginRegion();
        lock.unlock();
        std::this_thread::yield();
        lock.lock();
        lane.footprint->clear();
        // Brown's template: HTM attempts subscribe the fallback-lock
        // word into their read set, so any logically-concurrent
        // fallback commit conflicts them out.
        if (htm_mode)
            lane.footprint->noteRead(kFallbackLockAddr);

        HeapMark mark = heapPtr->mark();
        size_t shape_mark = shapesPtr->size();
        size_t string_mark = stringsPtr->size();
        eng.memHierarchy().save(lane.memSnapshot);
        heapPtr->setTransactionManager(&eng.htm());
        if (attempt > 1) {
            eng.rng().setRawState(rng_snapshot);
            // Fresh injector counters (and a fresh adaptive
            // controller) so the retry replays engine-level faults
            // exactly as the first attempt saw them. Attempt 1 runs
            // the engine exactly as constructed — part of the K=1
            // isolate-parity contract.
            if (lane.planCopy)
                eng.armFaultPlan(lane.planCopy.get());
            else if (config.engine.adaptive)
                eng.armFaultPlan(nullptr);
        }
        eng.resetStats();
        heapPtr->sessionBegin(lane.footprint.get());
        emitEvent(TraceEventType::TxBegin, lane_idx,
                  static_cast<uint16_t>(attempt), 0, 0, 0);

        EngineResult er;
        try {
            er = eng.run(source);
        } catch (...) {
            // Guest error (or cancellation): unwind the region so the
            // shared heap stays consistent, then let it propagate.
            heapPtr->sessionAbort(mark);
            shapesPtr->truncate(shape_mark);
            stringsPtr->truncate(string_mark);
            eng.memHierarchy().restore(lane.memSnapshot);
            conflicts.endRegion(start_serial);
            throw;
        }

        RegionAbortCause cause = RegionAbortCause::None;
        if (htm_mode) {
            if (doomed) {
                cause = RegionAbortCause::Injected;
            } else if (lane.footprint->exceeded()) {
                cause = RegionAbortCause::Capacity;
            } else if (conflicts
                           .check(*lane.footprint, start_serial)
                           .conflict) {
                cause = RegionAbortCause::Conflict;
            }
        }

        if (cause == RegionAbortCause::None) {
            uint64_t bytes = lane.footprint->writeFootprintBytes();
            RegionResult out;
            out.commitSerial =
                conflicts.commit(lane.footprint->writeLines(),
                                 /*fallback=*/!htm_mode);
            heapPtr->sessionCommit();
            conflicts.endRegion(start_serial);

            if (htm_mode) {
                emitEvent(TraceEventType::TxCommit, lane_idx,
                          static_cast<uint16_t>(attempt), 0, 0, bytes);
            } else {
                emitEvent(TraceEventType::TxFallback, lane_idx,
                          static_cast<uint16_t>(attempt - 1), 0, 0,
                          bytes);
            }

            lane.counters.regions += 1;
            lane.counters.retries += attempt - 1;
            lane.counters.conflictAborts += conflict_aborts;
            lane.counters.capacityAborts += capacity_aborts;
            lane.counters.injectedAborts += injected_aborts;
            lane.counters.fallbacks += htm_mode ? 0 : 1;

            aggregate.merge(er.stats);
            aggregate.stmRegions += 1;
            aggregate.stmRegionRetries += attempt - 1;
            aggregate.stmConflictAborts += conflict_aborts;
            aggregate.stmCapacityAborts += capacity_aborts;
            aggregate.stmInjectedAborts += injected_aborts;
            aggregate.stmFallbacks += htm_mode ? 0 : 1;

            out.engine = std::move(er);
            out.attempts = attempt;
            out.fallback = !htm_mode;
            out.conflictAborts = conflict_aborts;
            out.capacityAborts = capacity_aborts;
            out.injectedAborts = injected_aborts;
            out.writeFootprintBytes = bytes;
            return out;
        }

        // Abort: roll the shared VM state back and retry. Heap, shape
        // ids, string ids, and the lane's simulated cache contents all
        // rewind to the attempt's start, so the retry is bit-identical
        // to a first attempt from this committed state.
        heapPtr->sessionAbort(mark);
        shapesPtr->truncate(shape_mark);
        stringsPtr->truncate(string_mark);
        eng.memHierarchy().restore(lane.memSnapshot);
        conflicts.endRegion(start_serial);
        switch (cause) {
          case RegionAbortCause::Conflict: ++conflict_aborts; break;
          case RegionAbortCause::Capacity: ++capacity_aborts; break;
          case RegionAbortCause::Injected: ++injected_aborts; break;
          case RegionAbortCause::None: break;
        }
        emitEvent(TraceEventType::TxAbort, lane_idx,
                  static_cast<uint16_t>(attempt),
                  static_cast<uint8_t>(abortCodeFor(cause)),
                  static_cast<uint32_t>(cause), 0);

        // Drop the domain lock between attempts so other lanes can
        // commit (which is also what lets genuine conflicts and
        // fallback pressure arise under contention).
        lock.unlock();
        std::this_thread::yield();
    }
}

ExecutionStats
SharedHeapSession::aggregateStats() const
{
    std::lock_guard<std::mutex> lock(domainMutex);
    return aggregate;
}

LaneCounters
SharedHeapSession::laneCounters(uint32_t lane) const
{
    NOMAP_ASSERT(lane < laneStates.size());
    std::lock_guard<std::mutex> lock(domainMutex);
    return laneStates[lane]->counters;
}

std::string
SharedHeapSession::metricsJson() const
{
    std::lock_guard<std::mutex> lock(domainMutex);

    LaneCounters totals;
    for (const auto &lane : laneStates) {
        totals.regions += lane->counters.regions;
        totals.retries += lane->counters.retries;
        totals.conflictAborts += lane->counters.conflictAborts;
        totals.capacityAborts += lane->counters.capacityAborts;
        totals.injectedAborts += lane->counters.injectedAborts;
        totals.fallbacks += lane->counters.fallbacks;
    }
    // Derived counter: clamp instead of trusting regions >= fallbacks
    // (same rule as the net front-end's active-connection gauge).
    uint64_t htm_commits =
        clampedDelta(totals.regions, totals.fallbacks);

    std::string json = "{";
    json += strprintf("\"lanes\":%u,", config.lanes);
    json += strprintf("\"htm_retry_limit\":%u,",
                      config.engine.htmRetryLimit);
    json += strprintf(
        "\"totals\":{\"regions\":%llu,\"htm_commits\":%llu,"
        "\"retries\":%llu,\"conflict_aborts\":%llu,"
        "\"capacity_aborts\":%llu,\"injected_aborts\":%llu,"
        "\"fallbacks\":%llu},",
        static_cast<unsigned long long>(totals.regions),
        static_cast<unsigned long long>(htm_commits),
        static_cast<unsigned long long>(totals.retries),
        static_cast<unsigned long long>(totals.conflictAborts),
        static_cast<unsigned long long>(totals.capacityAborts),
        static_cast<unsigned long long>(totals.injectedAborts),
        static_cast<unsigned long long>(totals.fallbacks));
    json += "\"per_lane\":[";
    for (size_t i = 0; i < laneStates.size(); ++i) {
        const LaneCounters &c = laneStates[i]->counters;
        if (i)
            json += ",";
        json += strprintf(
            "{\"regions\":%llu,\"retries\":%llu,"
            "\"conflict_aborts\":%llu,\"capacity_aborts\":%llu,"
            "\"injected_aborts\":%llu,\"fallbacks\":%llu}",
            static_cast<unsigned long long>(c.regions),
            static_cast<unsigned long long>(c.retries),
            static_cast<unsigned long long>(c.conflictAborts),
            static_cast<unsigned long long>(c.capacityAborts),
            static_cast<unsigned long long>(c.injectedAborts),
            static_cast<unsigned long long>(c.fallbacks));
    }
    json += "]";
    if (sessionTrace) {
        json += strprintf(
            ",\"trace\":{\"emitted\":%llu,\"dropped\":%llu}",
            static_cast<unsigned long long>(sessionTrace->emitted()),
            static_cast<unsigned long long>(sessionTrace->dropped()));
    }
    json += "}";
    return json;
}

} // namespace nomap
