#ifndef NOMAP_STM_SHARED_HEAP_H
#define NOMAP_STM_SHARED_HEAP_H

/**
 * @file
 * Shared guest heaps: K engine threads executing against one Heap.
 *
 * A SharedHeapSession owns a single ShapeTable/StringTable/Heap triple
 * and K engines viewing it (Engine's ExternalVm form). Each lane runs
 * whole guest programs — *regions* — against the shared heap; every
 * region is one simulated HTM transaction:
 *
 *  - While the region executes, the heap's tracked-write funnel and
 *    ExecEnv::memAccess collect its cache-line footprint into a
 *    RegionFootprint, bounded by the same geometry as the per-engine
 *    HTM manager (htm/region.h).
 *  - At commit, the footprint is probed against every region that
 *    committed inside this one's logical window (ConflictTable). An
 *    overlap — or a footprint overflow, or an injected stm.fallback
 *    doom — aborts the region: the heap rolls back through the region
 *    undo log, allocator state rewinds to the region's HeapMark, the
 *    RNG is restored, and the region retries.
 *  - After EngineConfig::htmRetryLimit HTM attempts, the region takes
 *    the software fallback path (Brown's retry-then-fallback
 *    template): it runs without commit-time checks, and its commit
 *    record carries the fallback-lock line every HTM region subscribes
 *    into its read set — so logically-concurrent HTM regions abort on
 *    it, which is the template's mutual exclusion.
 *
 * Execution is physically serialized under the session's domain mutex
 * (each attempt runs start-to-finish holding it; the lock is dropped
 * and the thread yields between attempts so lanes interleave). The
 * concurrency being modeled is *logical*: a region's window spans
 * every commit between its begin serial and its own commit probe, and
 * the begin is published in its own mutex hold *before* the attempt
 * queues for execution — so run() calls that overlap in wall-clock
 * time are logically concurrent, and whichever commits first aborts
 * the overlapping others. Physical serialization is what makes every
 * outcome trivially serializable — the simulated conflicts only add
 * aborts and fallbacks, never wrong results — and what keeps the
 * session ThreadSanitizer-clean without touching the executors.
 *
 * Determinism contract (pinned by tests/test_shared_heap.cc):
 *  - A K=1 session run is bit-identical to a plain isolate run of the
 *    same program (result, printed output, ExecutionStats, engine
 *    trace) on all six architectures.
 *  - A region that aborts and retries re-executes bit-identically to
 *    a first attempt from the same committed state: heap ids and
 *    abstract addresses rewind via HeapMark, shape/string tables
 *    truncate to their attempt-start sizes (a retry re-derives
 *    identical ids), the lane's simulated cache contents are restored
 *    (cycle accounting would otherwise see the aborted attempt's warm
 *    lines), the Math.random() state is restored, per-run stats are
 *    reset, and any engine-level fault plan (or adaptive controller)
 *    is re-armed with fresh counters.
 */

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "htm/region.h"
#include "memsim/hierarchy.h"

namespace nomap {

/** Why one region attempt aborted (None = it committed). */
enum class RegionAbortCause : uint8_t {
    None,
    Conflict, ///< Footprint overlapped a logically-concurrent commit.
    Capacity, ///< Write footprint overflowed the HTM geometry.
    Injected, ///< stm.fallback doom (inject/fault_plan.h).
};

/** Printable cause name ("none", "conflict", ...). */
const char *regionAbortCauseName(RegionAbortCause cause);

/** Configuration of a SharedHeapSession. */
struct SharedHeapConfig {
    /** Applied to every lane's engine (htmRetryLimit lives here). */
    EngineConfig engine;

    /** Number of engine lanes sharing the heap (K). */
    uint32_t lanes = 1;

    /**
     * Capacity of the session's own region-event trace ring (TxBegin /
     * TxAbort / TxCommit / TxFallback per attempt; 0 disables it).
     * Separate from EngineConfig::traceCapacity on purpose: engine
     * trace streams must stay bit-identical to a plain isolate's, so
     * region events go to a session-owned buffer stamped with a
     * monotone event ordinal instead of virtual cycles.
     */
    uint32_t sessionTraceCapacity = 0;
};

/** Per-lane region counters (metricsJson / introspection). */
struct LaneCounters {
    uint64_t regions = 0;        ///< Regions committed on this lane.
    uint64_t retries = 0;        ///< Aborted HTM attempts.
    uint64_t conflictAborts = 0;
    uint64_t capacityAborts = 0;
    uint64_t injectedAborts = 0;
    uint64_t fallbacks = 0;      ///< Regions that committed via fallback.
};

/** Outcome of one region (one guest program run to commit). */
struct RegionResult {
    /** The committed attempt's result — for K=1, bit-identical to a
     *  plain isolate running the same program. */
    EngineResult engine;
    /** Attempts consumed, aborted + committed (1 = first try). */
    uint32_t attempts = 0;
    /** True when the committing attempt ran the fallback path. */
    bool fallback = false;
    /** ConflictTable serial assigned to the commit. */
    uint64_t commitSerial = 0;
    uint32_t conflictAborts = 0;
    uint32_t capacityAborts = 0;
    uint32_t injectedAborts = 0;
    /** Write footprint of the committed attempt, in bytes. */
    uint64_t writeFootprintBytes = 0;
};

/**
 * K engines, one heap. Construct with K = SharedHeapConfig::lanes;
 * call run() from up to K caller threads, each owning one lane index
 * (the session has no worker pool of its own). run() on distinct
 * lanes is safe to call concurrently; a lane must not be used by two
 * threads at once.
 */
class SharedHeapSession
{
  public:
    /**
     * @param config Session shape and per-engine configuration.
     * @param plan Session-level fault plan (stm.fallback site), or
     *        nullptr to consult NOMAP_FAULT_PLAN. Engine-level sites
     *        in the same plan are armed per engine as usual (the
     *        Engine constructor reads the environment itself).
     */
    explicit SharedHeapSession(const SharedHeapConfig &config,
                               const FaultPlan *plan = nullptr);
    ~SharedHeapSession();

    SharedHeapSession(const SharedHeapSession &) = delete;
    SharedHeapSession &operator=(const SharedHeapSession &) = delete;

    /**
     * Execute @p source as one region on @p lane, retrying aborts up
     * to the configured HTM budget and falling back thereafter.
     * Returns after the region commits. Throws FatalError for guest
     * program errors (the region's partial effects are rolled back
     * first, so the shared heap stays consistent).
     */
    RegionResult run(uint32_t lane, const std::string &source);

    uint32_t laneCount() const
    {
        return static_cast<uint32_t>(laneStates.size());
    }

    /** The shared heap (globals persist across regions, like
     *  successive scripts in one page). */
    Heap &heap() { return *heapPtr; }

    /** Lane @p lane's engine (its trace/stats are per-region). */
    Engine &engine(uint32_t lane);

    /**
     * The session's region-event trace, or nullptr when
     * SharedHeapConfig::sessionTraceCapacity is 0. Event payloads:
     *   TxBegin     aux = attempt ordinal, tid = lane + 1
     *   TxCommit    aux = attempt, bytes = write footprint
     *   TxAbort     aux = attempt, code = mapped AbortCode,
     *               ways = RegionAbortCause, tid = lane + 1
     *   TxFallback  aux = HTM attempts burned, bytes = footprint
     * Timestamps are a session-monotone event ordinal, not cycles.
     */
    TraceBuffer *trace() { return sessionTrace.get(); }

    /**
     * Merged view: every committed region's ExecutionStats folded
     * together, plus the session's stm* counters (which no Engine
     * ever writes).
     */
    ExecutionStats aggregateStats() const;

    /** Per-lane counters (index < laneCount()). */
    LaneCounters laneCounters(uint32_t lane) const;

    /** Session metrics as a JSON object (deterministic field order). */
    std::string metricsJson() const;

  private:
    struct Lane {
        std::unique_ptr<Engine> engine;
        std::unique_ptr<RegionFootprint> footprint;
        /** Stable copy of the engine's armed plan for per-attempt
         *  re-arming (fresh injector counters on retry). */
        std::unique_ptr<FaultPlan> planCopy;
        /** Reused buffer for the attempt-start cache contents (the
         *  retry rollback restores it). */
        MemHierarchy::Snapshot memSnapshot;
        LaneCounters counters;
    };

    void emitEvent(TraceEventType type, uint32_t lane, uint16_t aux,
                   uint8_t code, uint32_t ways, uint64_t bytes);

    SharedHeapConfig config;

    // Same construction order as Engine::initVm — tables before heap,
    // heap before engines — and the reverse on destruction, so the
    // engines' raw views never dangle.
    std::unique_ptr<ShapeTable> shapesPtr;
    std::unique_ptr<StringTable> stringsPtr;
    std::unique_ptr<Heap> heapPtr;
    std::vector<std::unique_ptr<Lane>> laneStates;

    /** Serializes region execution and guards all mutable session
     *  state below. */
    mutable std::mutex domainMutex;

    ConflictTable conflicts;
    std::unique_ptr<FaultPlan> sessionPlan;
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<TraceBuffer> sessionTrace;
    uint64_t eventSerial = 0;
    ExecutionStats aggregate;
};

} // namespace nomap

#endif // NOMAP_STM_SHARED_HEAP_H
