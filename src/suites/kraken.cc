#include "suites/suite.h"

/**
 * @file
 * Kraken-class workloads K01-K14 (original code; see suite.h).
 *
 * Kraken's distinguishing trait for NoMap is write-footprint scale:
 * the imaging/audio workloads stream through multi-thousand-element
 * arrays, producing transactional write sets far beyond a 32 KB L1D —
 * which is why NoMap_RTM gains nothing on Kraken in the paper while
 * ROT-style HTM still fits everything in the 256 KB L2.
 */

namespace nomap {

std::vector<BenchmarkSpec>
krakenAll()
{
    std::vector<BenchmarkSpec> v;

    // K01 ai-astar: grid cost propagation with a frontier list.
    v.push_back({"K01", "ai-astar", R"JS(
function relax(cost, width, height, passes) {
    var changed = 0;
    for (var p = 0; p < passes; p++) {
        for (var y = 1; y < height - 1; y++) {
            var row = y * width;
            for (var x = 1; x < width - 1; x++) {
                var i = row + x;
                var best = cost[i];
                var up = cost[i - width] + 1;
                var down = cost[i + width] + 1;
                var left = cost[i - 1] + 1;
                var right = cost[i + 1] + 1;
                if (up < best) best = up;
                if (down < best) best = down;
                if (left < best) best = left;
                if (right < best) best = right;
                if (best < cost[i]) { cost[i] = best; changed++; }
            }
        }
    }
    return changed;
}
var width = 64; var height = 48;
var cost = [];
for (var i = 0; i < width * height; i++) cost[i] = 9999;
cost[width * 24 + 32] = 0;
var total = 0;
for (var f = 0; f < 70; f++) {
    for (var j = 0; j < cost.length; j++) {
        if (j != width * 24 + 32) cost[j] = 9999;
    }
    total = relax(cost, width, height, 3);
}
result = total;
)JS", true, ""});

    // K02 audio-beat-detection: envelope tracking through list
    // methods and allocation — runtime dominated (>=95% non-FTL).
    v.push_back({"K02", "audio-beat-detection", R"JS(
function detect(samples) {
    var peaks = [];
    var env = 0;
    for (var i = 0; i < samples.length; i++) {
        var s = samples[i];
        if (s < 0) s = -s;
        env = env * 0.9 + s * 0.1;
        if (s > env * 2.5) peaks.push(i);
    }
    return peaks;
}
var samples = [];
for (var i = 0; i < 150; i++) {
    samples.push(Math.sin(i * 0.3) + ((i % 37) == 0 ? 4.0 : 0.0));
}
var count = 0;
for (var f = 0; f < 120; f++) {
    var peaks = detect(samples);
    count = peaks.length + peaks.indexOf(37);
}
result = count;
)JS", false, ">=95% non-FTL instructions (paper Table III)"});

    // K03 audio-dft: naive DFT assembled through push() — method-call
    // (runtime) dominated.
    v.push_back({"K03", "audio-dft", R"JS(
function dft(signal, bins) {
    var out = [];
    var n = signal.length;
    for (var k = 0; k < bins; k++) {
        var re = 0; var im = 0;
        for (var t = 0; t < n; t++) {
            var ang = 6.283185307 * k * t / n;
            re += signal[t] * Math.cos(ang);
            im -= signal[t] * Math.sin(ang);
        }
        out.push(Math.sqrt(re * re + im * im));
    }
    return out;
}
var signal = [];
for (var i = 0; i < 48; i++) signal.push(Math.sin(i * 0.7));
var out = 0;
for (var f = 0; f < 110; f++) {
    var spec = dft(signal, 12);
    out = Math.floor(spec[3] * 1000);
}
result = out;
)JS", false, ">=95% non-FTL instructions (paper Table III)"});

    // K04 audio-fft: butterfly mixing through helper calls and fresh
    // allocations per frame — non-FTL dominated.
    v.push_back({"K04", "audio-fft", R"JS(
function butterfly(re, im, i, j, wr, wi) {
    var tr = re[j] * wr - im[j] * wi;
    var ti = re[j] * wi + im[j] * wr;
    re[j] = re[i] - tr;
    im[j] = im[i] - ti;
    re[i] = re[i] + tr;
    im[i] = im[i] + ti;
}
function fftPass(re, im, half) {
    for (var i = 0; i < half; i++) {
        var ang = -3.14159265 * i / half;
        butterfly(re, im, i, i + half, Math.cos(ang), Math.sin(ang));
    }
}
var hash = 0;
for (var f = 0; f < 110; f++) {
    var re = []; var im = [];
    for (var i = 0; i < 64; i++) { re.push(Math.sin(i)); im.push(0); }
    fftPass(re, im, 32);
    fftPass(re, im, 16);
    fftPass(re, im, 8);
    hash = Math.floor(re[5] * 1000) & 65535;
}
result = hash;
)JS", false, ">=95% non-FTL instructions (paper Table III)"});

    // K05 audio-oscillator: waveform synthesis into a large buffer
    // with a per-sample generator call — much of the transaction's
    // time runs unoptimized callee code (paper: TMTime >> TMOpt).
    v.push_back({"K05", "audio-oscillator", R"JS(
function oscSample(phase, detune) {
    var s = Math.sin(phase);
    var saw = phase * 0.318309886 - 1.0;
    return s * 0.7 + saw * 0.3 + detune;
}
function fillBuffer(buf, phase0, step) {
    var n = buf.length;
    var phase = phase0;
    for (var i = 0; i < n; i++) {
        buf[i] = oscSample(phase, 0.001);
        phase += step;
        if (phase > 6.283185307) phase -= 6.283185307;
    }
    return buf[n - 1];
}
var buf = [];
for (var i = 0; i < 6000; i++) buf[i] = 0;
var last = 0;
for (var f = 0; f < 90; f++) last = fillBuffer(buf, f * 0.01, 0.07);
result = Math.floor(last * 100000);
)JS", true, ""});

    // K06 imaging-darkroom: per-pixel brightness/contrast through a
    // helper call; 8000-pixel channel = 64 KB of writes.
    v.push_back({"K06", "imaging-darkroom", R"JS(
function adjust(p, brightness, contrast) {
    var x = ((p - 128) * contrast >> 7) + 128 + brightness;
    if (x < 0) x = 0;
    if (x > 255) x = 255;
    return x;
}
function darkroom(src, dst, brightness, contrast) {
    var n = src.length;
    for (var i = 0; i < n; i++) {
        dst[i] = adjust(src[i], brightness, contrast);
    }
    return dst[n >> 1];
}
var src = []; var dst = [];
for (var i = 0; i < 8000; i++) { src[i] = (i * 37) & 255; dst[i] = 0; }
var mid = 0;
for (var f = 0; f < 80; f++) mid = darkroom(src, dst, (f % 16) - 8, 140);
result = mid;
)JS", true, ""});

    // K07 imaging-desaturate: straight-line integer pixel loop —
    // NoMap's best case on Kraken; 3x 4000x8B channels read, one
    // written (32 KB write set: too big for RTM's budget, fine for
    // ROT).
    v.push_back({"K07", "imaging-desaturate", R"JS(
function desaturate(r, g, b, out) {
    var n = out.length;
    for (var i = 0; i < n; i++) {
        out[i] = (r[i] * 30 + g[i] * 59 + b[i] * 11) / 100 | 0;
    }
    return out[n - 1];
}
var r = []; var g = []; var b = []; var out = [];
for (var i = 0; i < 4400; i++) {
    r[i] = (i * 3) & 255; g[i] = (i * 7) & 255; b[i] = (i * 11) & 255;
    out[i] = 0;
}
var last = 0;
for (var f = 0; f < 90; f++) last = desaturate(r, g, b, out);
result = last;
)JS", true, ""});

    // K08 imaging-gaussian-blur: 1D separable stencil, double
    // weights, two passes over 4000-element channels.
    v.push_back({"K08", "imaging-gaussian-blur", R"JS(
function blurPass(src, dst) {
    var n = src.length;
    for (var i = 2; i < n - 2; i++) {
        dst[i] = src[i - 2] * 0.0614 + src[i - 1] * 0.2448 +
                 src[i] * 0.3877 + src[i + 1] * 0.2448 +
                 src[i + 2] * 0.0614;
    }
    dst[0] = src[0]; dst[1] = src[1];
    dst[n - 2] = src[n - 2]; dst[n - 1] = src[n - 1];
    return dst[n >> 1];
}
var a = []; var b = [];
for (var i = 0; i < 4000; i++) { a[i] = (i * 13) & 255; b[i] = 0; }
var mid = 0;
for (var f = 0; f < 80; f++) {
    blurPass(a, b);
    mid = blurPass(b, a);
}
result = Math.floor(mid * 1000);
)JS", true, ""});

    // K09 json-parse-financial: character-level parsing with string
    // methods and object building — runtime dominated.
    v.push_back({"K09", "json-parse-financial", R"JS(
function parseNumber(s, start) {
    var n = 0;
    var i = start;
    while (i < s.length) {
        var c = s.charCodeAt(i);
        if (c < 48 || c > 57) break;
        n = n * 10 + (c - 48);
        i++;
    }
    return {value: n, next: i};
}
function parseRow(s) {
    var total = 0;
    var i = 0;
    while (i < s.length) {
        var c = s.charCodeAt(i);
        if (c >= 48 && c <= 57) {
            var r = parseNumber(s, i);
            total += r.value;
            i = r.next;
        } else {
            i++;
        }
    }
    return total;
}
var row = "{\"open\": 1375, \"high\": 1395, \"low\": 1362, \"close\": 1380, \"vol\": 991200}";
var sum = 0;
for (var f = 0; f < 150; f++) sum = parseRow(row);
result = sum;
)JS", false, ">=95% non-FTL instructions (paper Table III)"});

    // K10 json-stringify-tinderbox: string assembly via join/concat.
    v.push_back({"K10", "json-stringify-tinderbox", R"JS(
function stringify(build) {
    var parts = [];
    parts.push("{\"name\": \"" + build.name + "\"");
    parts.push(", \"time\": " + build.time);
    parts.push(", \"status\": \"" + build.status + "\"}");
    return parts.join("");
}
var hash = 0;
for (var f = 0; f < 160; f++) {
    var s = stringify({name: "linux-" + (f % 10), time: 100000 + f,
                       status: (f % 3) == 0 ? "green" : "orange"});
    hash = (hash + s.length + s.charCodeAt(9)) & 65535;
}
result = hash;
)JS", false, ">=95% non-FTL instructions (paper Table III)"});

    // K11 stanford-crypto-aes: wider state than S13; multiple table
    // and state arrays hot at once.
    v.push_back({"K11", "stanford-crypto-aes", R"JS(
function round(ctx) {
    var n = ctx.state.length;
    for (var i = 0; i < n; i++) {
        var x = ctx.state[i];
        ctx.state[i] = (ctx.t0[x & 255] ^ ctx.t1[(x >> 8) & 255] ^
                        ctx.key[i]) & 65535;
    }
}
function finalMix(ctx) {
    var acc = 0;
    var st = ctx.state;
    var n = st.length;
    for (var i = 0; i < n; i++) acc = (acc + st[i] * 31) & 1048575;
    return acc;
}
function encryptBlock(ctx, rounds) {
    for (var r = 0; r < rounds; r++) round(ctx);
    return finalMix(ctx);
}
var ctx = {state: [], key: [], t0: [], t1: []};
for (var i = 0; i < 256; i++) {
    ctx.t0[i] = (i * 179 + 3) & 65535;
    ctx.t1[i] = (i * 83 + 7) & 65535;
}
for (var i = 0; i < 3072; i++) {
    ctx.state[i] = i & 65535;
    ctx.key[i] = (i * 5) & 65535;
}
var out = 0;
for (var f = 0; f < 60; f++) out = encryptBlock(ctx, 2);
result = out;
)JS", true, ""});

    // K12 stanford-crypto-ccm: CTR-style xor stream + MAC accumulate.
    v.push_back({"K12", "stanford-crypto-ccm", R"JS(
function ctrXor(data, stream, out) {
    var n = data.length;
    for (var i = 0; i < n; i++) out[i] = data[i] ^ stream[i];
}
function mac(out) {
    var m = 0;
    var n = out.length;
    for (var i = 0; i < n; i++) m = (m + out[i] * 13 + (m >> 3)) & 1048575;
    return m;
}
function ccm(data, stream, out, rounds) {
    var tag = 0;
    for (var r = 0; r < rounds; r++) {
        ctrXor(data, stream, out);
        tag = (tag + mac(out)) & 1048575;
    }
    return tag;
}
var data = []; var stream = []; var out = [];
for (var i = 0; i < 3072; i++) {
    data[i] = (i * 29) & 255; stream[i] = (i * 101 + 17) & 255; out[i] = 0;
}
var tag = 0;
for (var f = 0; f < 70; f++) tag = ccm(data, stream, out, 2);
result = tag;
)JS", true, ""});

    // K13 stanford-crypto-pbkdf2: repeated keyed mixing rounds.
    v.push_back({"K13", "stanford-crypto-pbkdf2", R"JS(
function prf(block, salt, iter) {
    var n = block.length;
    for (var i = 0; i < n; i++) {
        var x = (block[i] + salt[i] + iter) & 1048575;
        block[i] = (x ^ (x >> 5) ^ (x << 2)) & 1048575;
    }
}
function derive(block, salt, acc, iters) {
    var n = block.length;
    for (var it = 0; it < iters; it++) {
        prf(block, salt, it);
        for (var i = 0; i < n; i++) acc[i] = acc[i] ^ block[i];
    }
    var h = 0;
    for (var j = 0; j < n; j++) h = (h + acc[j]) & 1048575;
    return h;
}
var block = []; var salt = []; var acc = [];
for (var i = 0; i < 1536; i++) {
    block[i] = i; salt[i] = (i * 7 + 1) & 255; acc[i] = 0;
}
var out = 0;
for (var f = 0; f < 70; f++) out = derive(block, salt, acc, 3);
result = out;
)JS", true, ""});

    // K14 stanford-crypto-sha256-iterative: masked-lane compression
    // over a large message buffer.
    v.push_back({"K14", "stanford-crypto-sha256-iterative", R"JS(
function compress(w, state) {
    var a = state[0]; var b = state[1]; var c = state[2]; var d = state[3];
    var n = w.length;
    for (var t = 0; t < n; t++) {
        var s1 = ((a >> 2) | (a << 10)) & 4095;
        var ch = (a & b) ^ ((~a) & c);
        var t1 = (d + s1 + ch + w[t]) & 1048575;
        d = c; c = b; b = a;
        a = (t1 + ((b & c) | (b & d) | (c & d))) & 1048575;
    }
    state[0] = (state[0] + a) & 1048575;
    state[1] = (state[1] + b) & 1048575;
    state[2] = (state[2] + c) & 1048575;
    state[3] = (state[3] + d) & 1048575;
    return state[0];
}
var w = []; var state = [1779033703 & 1048575, 3144134277 & 1048575,
                         1013904242 & 1048575, 2773480762 & 1048575];
for (var i = 0; i < 512; i++) w[i] = (i * 40503 + 11) & 1048575;
var out = 0;
for (var f = 0; f < 100; f++) out = compress(w, state);
result = out;
)JS", true, ""});

    return v;
}

} // namespace nomap
