#include "suites/shootout.h"

#include <cmath>

/**
 * @file
 * Shootout kernels: JS-subset sources plus native C++ twins that
 * compute the same results while counting analytic C-level dynamic
 * instructions (see shootout.h for the Figure-1 model).
 */

namespace nomap {

namespace {

// ---- Native twins ---------------------------------------------------------

double
nativeFibo(uint64_t *instructions)
{
    // fib(18), naive recursion: ~8 instructions per call (prologue,
    // compare, two calls, add).
    struct Fib {
        static long
        fib(long n, uint64_t &calls)
        {
            ++calls;
            if (n < 2)
                return 1;
            return fib(n - 2, calls) + fib(n - 1, calls);
        }
    };
    uint64_t calls = 0;
    long r = Fib::fib(18, calls);
    *instructions = calls * 8;
    return static_cast<double>(r);
}

double
nativeSieve(uint64_t *instructions)
{
    bool flags[4097];
    long count = 0;
    uint64_t instr = 0;
    for (int iter = 0; iter < 10; ++iter) {
        count = 0;
        for (int i = 2; i <= 4096; ++i)
            flags[i] = true;
        instr += 4096 * 3; // store + loop control
        for (int p = 2; p <= 4096; ++p) {
            instr += 4;
            if (flags[p]) {
                ++count;
                for (int k = p + p; k <= 4096; k += p) {
                    flags[k] = false;
                    instr += 5;
                }
            }
        }
    }
    *instructions = instr;
    return static_cast<double>(count);
}

double
nativeMatrix(uint64_t *instructions)
{
    // 30x30 integer matrix multiply, 12 repetitions: inner body is
    // ~9 instructions (2 addressed loads, mul, add, loop control).
    const int n = 30;
    static long a[30][30], b[30][30], c[30][30];
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            a[i][j] = (i + j) % 7;
            b[i][j] = (i * j) % 5;
        }
    }
    for (int rep = 0; rep < 12; ++rep) {
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                long sum = 0;
                for (int k = 0; k < n; ++k)
                    sum += a[i][k] * b[k][j];
                c[i][j] = sum;
            }
        }
    }
    *instructions = 12ull * n * n * n * 9;
    return static_cast<double>(c[7][11]);
}

double
nativeNbody(uint64_t *instructions)
{
    const int n = 5;
    double x[n], y[n], vx[n], vy[n], mass[n];
    for (int i = 0; i < n; ++i) {
        x[i] = i * 1.5;
        y[i] = i * 0.5 - 1.0;
        vx[i] = 0.01 * i;
        vy[i] = -0.005 * i;
        mass[i] = 1.0 + i * 0.1;
    }
    const int steps = 600;
    for (int s = 0; s < steps; ++s) {
        for (int i = 0; i < n; ++i) {
            for (int j = i + 1; j < n; ++j) {
                double dx = x[i] - x[j];
                double dy = y[i] - y[j];
                double d2 = dx * dx + dy * dy + 0.1;
                double mag = 0.01 / (d2 * std::sqrt(d2));
                vx[i] -= dx * mass[j] * mag;
                vy[i] -= dy * mass[j] * mag;
                vx[j] += dx * mass[i] * mag;
                vy[j] += dy * mass[i] * mag;
            }
        }
        for (int i = 0; i < n; ++i) {
            x[i] += 0.01 * vx[i];
            y[i] += 0.01 * vy[i];
        }
    }
    // Pair body ~42 instructions (incl. sqrt+div latency), ~8/update.
    *instructions =
        static_cast<uint64_t>(steps) * (10 * 42 + n * 8);
    double e = 0;
    for (int i = 0; i < n; ++i)
        e += 0.5 * mass[i] * (vx[i] * vx[i] + vy[i] * vy[i]);
    return std::floor(e * 100000);
}

double
nativeHeapsort(uint64_t *instructions)
{
    const int n = 1500;
    static double arr[n + 1];
    uint64_t instr = 0;
    for (int rep = 0; rep < 12; ++rep) {
        // Deterministic pseudo-random fill (LCG), then heapsort.
        unsigned long seed = 42;
        for (int i = 1; i <= n; ++i) {
            // 16807 keeps products < 2^53 so the JS twin (double
            // arithmetic) computes bit-identical values.
            seed = (seed * 16807 + 12345) & 0x7fffffff;
            arr[i] = static_cast<double>(seed % 10000);
            instr += 8;
        }
        int l = n / 2 + 1;
        int ir = n;
        for (;;) {
            double rra;
            if (l > 1) {
                rra = arr[--l];
            } else {
                rra = arr[ir];
                arr[ir] = arr[1];
                if (--ir == 1) {
                    arr[1] = rra;
                    break;
                }
            }
            int i = l;
            int j = l * 2;
            while (j <= ir) {
                instr += 12;
                if (j < ir && arr[j] < arr[j + 1])
                    ++j;
                if (rra < arr[j]) {
                    arr[i] = arr[j];
                    i = j;
                    j += j;
                } else {
                    break;
                }
            }
            arr[i] = rra;
            instr += 9;
        }
    }
    *instructions = instr;
    return arr[1500 / 2];
}

double
nativeHash(uint64_t *instructions)
{
    // Open-addressing int hash: insert + probe.
    const int cap = 4096;
    static long keys[cap], vals[cap];
    uint64_t instr = 0;
    long found = 0;
    for (int rep = 0; rep < 10; ++rep) {
        for (int i = 0; i < cap; ++i) {
            keys[i] = -1;
            vals[i] = 0;
        }
        instr += cap * 3;
        for (int i = 0; i < 2000; ++i) {
            long k = (i * 40503L) & 0xffff;
            int slot = static_cast<int>(k & (cap - 1));
            while (keys[slot] != -1 && keys[slot] != k) {
                slot = (slot + 1) & (cap - 1);
                instr += 6;
            }
            keys[slot] = k;
            vals[slot] = i;
            instr += 14;
        }
        found = 0;
        for (int i = 0; i < 2000; ++i) {
            long k = (i * 40503L) & 0xffff;
            int slot = static_cast<int>(k & (cap - 1));
            while (keys[slot] != -1) {
                instr += 6;
                if (keys[slot] == k) {
                    found += vals[slot] & 1;
                    break;
                }
                slot = (slot + 1) & (cap - 1);
            }
            instr += 9;
        }
    }
    *instructions = instr;
    return static_cast<double>(found);
}

double
nativeHarmonic(uint64_t *instructions)
{
    // Chunked like the JS twin; fp division dominates (~8 cycles'
    // worth of work folded into the per-iteration estimate).
    double sum = 0;
    for (int rep = 0; rep < 100; ++rep) {
        int start = rep * 2000 + 1;
        for (int i = start; i < start + 2000; ++i)
            sum += 1.0 / i;
    }
    *instructions = 100ull * 2000 * 8;
    return std::floor(sum * 1000000);
}

double
nativeRandom(uint64_t *instructions)
{
    // Shootout "random": repeated LCG in [0, 100), chunked into calls
    // exactly like the JS twin (steady-state measurement).
    long last = 42;
    double r = 0;
    for (int rep = 0; rep < 100; ++rep) {
        for (int i = 0; i < 4000; ++i) {
            last = (last * 3877 + 29573) % 139968;
            r = 100.0 * last / 139968;
        }
    }
    *instructions = 100ull * 4000 * 6;
    return std::floor(r * 1000);
}

double
nativeFannkuch(uint64_t *instructions)
{
    // Reuse the suite's S05-style kernel at n=7.
    int perm[8], perm1[8], count[8];
    for (int i = 0; i < 7; ++i)
        perm1[i] = i;
    int flips_max = 0;
    int r = 7;
    uint64_t instr = 0;
    int iters = 0;
    while (iters < 300) {
        ++iters;
        while (r != 1) {
            count[r - 1] = r;
            --r;
        }
        for (int j = 0; j < 7; ++j)
            perm[j] = perm1[j];
        int flips = 0;
        int k = perm[0];
        while (k != 0) {
            int half = (k + 1) >> 1;
            for (int m = 0; m < half; ++m) {
                int t = perm[m];
                perm[m] = perm[k - m];
                perm[k - m] = t;
                instr += 6;
            }
            ++flips;
            k = perm[0];
        }
        if (flips > flips_max)
            flips_max = flips;
        instr += 30;
        for (;;) {
            if (r == 7)
                goto done;
            int p0 = perm1[0];
            for (int q = 0; q < r; ++q)
                perm1[q] = perm1[q + 1];
            perm1[r] = p0;
            instr += r * 3 + 8;
            if (--count[r] > 0)
                break;
            ++r;
        }
    }
done:
    // The JS twin performs 40 identical calls (steady state).
    *instructions = instr * 40;
    return flips_max;
}

double
nativeBinarytrees(uint64_t *instructions)
{
    // Allocation-free model of tree checks: item arithmetic only;
    // ~14 instructions per node visit (alloc amortized).
    struct Walk {
        static long
        check(long item, int depth, uint64_t &nodes)
        {
            ++nodes;
            if (depth <= 0)
                return item;
            return item + check(2 * item - 1, depth - 1, nodes) -
                   check(2 * item, depth - 1, nodes);
        }
    };
    uint64_t nodes = 0;
    long sum = 0;
    for (int rep = 0; rep < 160; ++rep)
        sum += Walk::check(rep % 4, 5, nodes);
    *instructions = nodes * 14;
    return static_cast<double>(sum);
}

double
nativeTakfp(uint64_t *instructions)
{
    struct Tak {
        static double
        tak(double x, double y, double z, uint64_t &calls)
        {
            ++calls;
            if (y >= x)
                return z;
            return tak(tak(x - 1, y, z, calls),
                       tak(y - 1, z, x, calls),
                       tak(z - 1, x, y, calls), calls);
        }
    };
    uint64_t calls = 0;
    double r = Tak::tak(18.0, 12.0, 6.0, calls);
    *instructions = calls * 9;
    return r;
}

// ---- JS-subset twins -------------------------------------------------------

const char *kJsFibo = R"JS(
function fib(n) {
    if (n < 2) return 1;
    return fib(n - 2) + fib(n - 1);
}
result = fib(18);
)JS";

const char *kJsSieve = R"JS(
function sieve(m, flags) {
    var count = 0;
    for (var i = 2; i <= m; i++) flags[i] = true;
    for (var p = 2; p <= m; p++) {
        if (flags[p]) {
            count++;
            for (var k = p + p; k <= m; k += p) flags[k] = false;
        }
    }
    return count;
}
var flags = [];
flags[4096] = false;
var count = 0;
for (var rep = 0; rep < 10; rep++) count = sieve(4096, flags);
result = count;
)JS";

const char *kJsMatrix = R"JS(
function mmult(n, a, b, c) {
    for (var i = 0; i < n; i++) {
        var ai = i * n;
        for (var j = 0; j < n; j++) {
            var sum = 0;
            for (var k = 0; k < n; k++) sum += a[ai + k] * b[k * n + j];
            c[ai + j] = sum;
        }
    }
    return c[7 * n + 11];
}
var n = 30;
var a = []; var b = []; var c = [];
for (var i = 0; i < n * n; i++) {
    var row = Math.floor(i / n); var col = i % n;
    a[i] = (row + col) % 7;
    b[i] = (row * col) % 5;
    c[i] = 0;
}
var out = 0;
for (var rep = 0; rep < 12; rep++) out = mmult(n, a, b, c);
result = out;
)JS";

const char *kJsNbody = R"JS(
function advance(x, y, vx, vy, mass, dt) {
    var n = x.length;
    for (var i = 0; i < n; i++) {
        for (var j = i + 1; j < n; j++) {
            var dx = x[i] - x[j];
            var dy = y[i] - y[j];
            var d2 = dx * dx + dy * dy + 0.1;
            var mag = dt / (d2 * Math.sqrt(d2));
            vx[i] -= dx * mass[j] * mag;
            vy[i] -= dy * mass[j] * mag;
            vx[j] += dx * mass[i] * mag;
            vy[j] += dy * mass[i] * mag;
        }
    }
    for (var k = 0; k < n; k++) {
        x[k] += dt * vx[k];
        y[k] += dt * vy[k];
    }
}
var x = []; var y = []; var vx = []; var vy = []; var mass = [];
for (var i = 0; i < 5; i++) {
    x[i] = i * 1.5; y[i] = i * 0.5 - 1.0;
    vx[i] = 0.01 * i; vy[i] = -0.005 * i;
    mass[i] = 1.0 + i * 0.1;
}
for (var s = 0; s < 600; s++) advance(x, y, vx, vy, mass, 0.01);
var e = 0;
for (var i2 = 0; i2 < 5; i2++) {
    e += 0.5 * mass[i2] * (vx[i2] * vx[i2] + vy[i2] * vy[i2]);
}
result = Math.floor(e * 100000);
)JS";

const char *kJsHeapsort = R"JS(
function heapsort(n, arr) {
    var l = Math.floor(n / 2) + 1;
    var ir = n;
    while (true) {
        var rra = 0;
        if (l > 1) {
            l--;
            rra = arr[l];
        } else {
            rra = arr[ir];
            arr[ir] = arr[1];
            ir--;
            if (ir == 1) { arr[1] = rra; break; }
        }
        var i = l;
        var j = l * 2;
        while (j <= ir) {
            if (j < ir && arr[j] < arr[j + 1]) j++;
            if (rra < arr[j]) {
                arr[i] = arr[j];
                i = j;
                j += j;
            } else break;
        }
        arr[i] = rra;
    }
    return arr[Math.floor(n / 2)];
}
var out = 0;
var arr = [];
for (var rep = 0; rep < 12; rep++) {
    var seed = 42;
    for (var i = 1; i <= 1500; i++) {
        seed = (seed * 16807 + 12345) & 2147483647;
        arr[i] = seed % 10000;
    }
    arr[0] = 0;
    out = heapsort(1500, arr);
}
result = out;
)JS";

const char *kJsHash = R"JS(
function fillAndProbe(keys, vals, cap) {
    for (var i = 0; i < cap; i++) { keys[i] = -1; vals[i] = 0; }
    for (var i = 0; i < 2000; i++) {
        var k = (i * 40503) & 65535;
        var slot = k & (cap - 1);
        while (keys[slot] != -1 && keys[slot] != k) {
            slot = (slot + 1) & (cap - 1);
        }
        keys[slot] = k;
        vals[slot] = i;
    }
    var found = 0;
    for (var i = 0; i < 2000; i++) {
        var k = (i * 40503) & 65535;
        var slot = k & (cap - 1);
        while (keys[slot] != -1) {
            if (keys[slot] == k) { found += vals[slot] & 1; break; }
            slot = (slot + 1) & (cap - 1);
        }
    }
    return found;
}
var keys = []; var vals = [];
keys[4095] = 0; vals[4095] = 0;
var found = 0;
for (var rep = 0; rep < 10; rep++) {
    found = fillAndProbe(keys, vals, 4096);
}
result = found;
)JS";

const char *kJsHarmonic = R"JS(
function harmonicRange(start, count) {
    var sum = 0;
    for (var i = start; i < start + count; i++) sum += 1.0 / i;
    return sum;
}
var sum = 0;
for (var rep = 0; rep < 100; rep++) {
    sum += harmonicRange(rep * 2000 + 1, 2000);
}
result = Math.floor(sum * 1000000);
)JS";

const char *kJsRandom = R"JS(
var last = 42;
function genRandom(n) {
    var r = 0;
    for (var i = 0; i < n; i++) {
        last = (last * 3877 + 29573) % 139968;
        r = 100.0 * last / 139968;
    }
    return r;
}
var r = 0;
for (var rep = 0; rep < 100; rep++) r = genRandom(4000);
result = Math.floor(r * 1000);
)JS";

const char *kJsFannkuch = R"JS(
function fannkuch(n, perm, perm1, count) {
    for (var i = 0; i < n; i++) perm1[i] = i;
    var flipsMax = 0;
    var r = n;
    var iters = 0;
    while (iters < 300) {
        iters++;
        while (r != 1) { count[r - 1] = r; r--; }
        for (var j = 0; j < n; j++) perm[j] = perm1[j];
        var flips = 0;
        var k = perm[0];
        while (k != 0) {
            var half = (k + 1) >> 1;
            for (var m = 0; m < half; m++) {
                var t = perm[m];
                perm[m] = perm[k - m];
                perm[k - m] = t;
            }
            flips++;
            k = perm[0];
        }
        if (flips > flipsMax) flipsMax = flips;
        var done = false;
        while (true) {
            if (r == n) { done = true; break; }
            var p0 = perm1[0];
            for (var q = 0; q < r; q++) perm1[q] = perm1[q + 1];
            perm1[r] = p0;
            count[r] = count[r] - 1;
            if (count[r] > 0) break;
            r++;
        }
        if (done) break;
    }
    return flipsMax;
}
var perm = []; var perm1 = []; var count = [];
for (var i = 0; i < 8; i++) { perm[i] = 0; perm1[i] = 0; count[i] = 0; }
var best = 0;
for (var rep = 0; rep < 40; rep++) {
    best = fannkuch(7, perm, perm1, count);
}
result = best;
)JS";

const char *kJsBinarytrees = R"JS(
function check(item, depth) {
    if (depth <= 0) return item;
    return item + check(2 * item - 1, depth - 1)
                - check(2 * item, depth - 1);
}
var sum = 0;
for (var rep = 0; rep < 160; rep++) sum += check(rep % 4, 5);
result = sum;
)JS";

const char *kJsTakfp = R"JS(
function tak(x, y, z) {
    if (y >= x) return z;
    return tak(tak(x - 1.0, y, z), tak(y - 1.0, z, x),
               tak(z - 1.0, x, y));
}
result = tak(18.0, 12.0, 6.0);
)JS";

} // namespace

const std::vector<ShootoutKernel> &
shootoutSuite()
{
    static const std::vector<ShootoutKernel> suite = {
        {"random", kJsRandom, nativeRandom, ""},
        {"nbody", kJsNbody, nativeNbody, ""},
        {"matrix", kJsMatrix, nativeMatrix, ""},
        {"heapsort", kJsHeapsort, nativeHeapsort, ""},
        {"hash", kJsHash, nativeHash, ""},
        {"harmonic", kJsHarmonic, nativeHarmonic, ""},
        {"fibo", kJsFibo, nativeFibo, ""},
        {"fannkuchredux", kJsFannkuch, nativeFannkuch, ""},
        {"binarytrees", kJsBinarytrees, nativeBinarytrees, ""},
        {"takfp", kJsTakfp, nativeTakfp, ""},
        {"sieve", kJsSieve, nativeSieve, ""},
    };
    return suite;
}

const std::vector<LanguageModel> &
languageModels()
{
    // Calibrated once so the suite geo-means land on the paper's
    // published relative speeds (PyPy 10.6x, HHVM 31.4x, JRuby 47.7x
    // of C). All three reference implementations are JITs, so their
    // factors relative to our *interpreter* are below/near 1; the
    // per-kernel variation then comes from the workload itself.
    static const std::vector<LanguageModel> models = {
        {"Python", 0.154},
        {"PHP", 0.456},
        {"Ruby", 0.693},
    };
    return models;
}

} // namespace nomap
