#ifndef NOMAP_SUITES_SHOOTOUT_H
#define NOMAP_SUITES_SHOOTOUT_H

/**
 * @file
 * Shootout kernels for the paper's motivational Figure 1.
 *
 * Figure 1 compares the Shootout suite across C, JavaScript (JSC),
 * Python (PyPy), PHP (HHVM), and Ruby (JRuby). We reproduce it as a
 * model with honest mechanics:
 *
 *  - "JavaScript": the kernel's JS-subset source run through this
 *    repository's full pipeline (Base architecture, FTL tier), in
 *    simulated cycles.
 *  - "C": the same kernel implemented natively in C++ and *costed
 *    analytically* with per-iteration x86 instruction estimates fed
 *    through the same cycle model — no boxing, no checks, no runtime
 *    calls. The native implementation really computes the result (so
 *    we can cross-validate against the VM).
 *  - "Python"/"PHP"/"Ruby": the JS source run interpreter-only, with
 *    dispatch-cost multipliers calibrated once against the reference
 *    interpreters' published relative speeds (CPython-like = 1.0,
 *    HHVM-era PHP = 2.2x, JRuby-era Ruby = 3.2x slower dispatch).
 *
 * EXPERIMENTS.md documents this as a *model* of the figure: the
 * ordering and log-scale magnitudes are the reproduction target, not
 * the absolute numbers.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace nomap {

/** One Shootout kernel. */
struct ShootoutKernel {
    std::string name;
    std::string jsSource; ///< JS-subset implementation.
    /**
     * Native implementation: returns the kernel's result (for
     * cross-validation with the VM run) and sets @p instructions to
     * the analytic dynamic-instruction estimate of compiled C.
     */
    double (*native)(uint64_t *instructions);
    /** Expected `result` global as a string (cross-check). */
    std::string expected;
};

/** The kernels shown in Figure 1. */
const std::vector<ShootoutKernel> &shootoutSuite();

/** Interpreter dispatch multipliers for the modeled languages. */
struct LanguageModel {
    const char *name;
    double dispatchFactor;
};

/** Python / PHP / Ruby interpreter models (see file comment). */
const std::vector<LanguageModel> &languageModels();

} // namespace nomap

#endif // NOMAP_SUITES_SHOOTOUT_H
