#include "suites/suite.h"

namespace nomap {

// Defined in sunspider_a.cc / sunspider_b.cc / kraken.cc.
std::vector<BenchmarkSpec> sunspiderPartA();
std::vector<BenchmarkSpec> sunspiderPartB();
std::vector<BenchmarkSpec> krakenAll();

const std::vector<BenchmarkSpec> &
sunspiderSuite()
{
    static const std::vector<BenchmarkSpec> suite = [] {
        std::vector<BenchmarkSpec> v = sunspiderPartA();
        std::vector<BenchmarkSpec> b = sunspiderPartB();
        v.insert(v.end(), b.begin(), b.end());
        return v;
    }();
    return suite;
}

const std::vector<BenchmarkSpec> &
krakenSuite()
{
    static const std::vector<BenchmarkSpec> suite = krakenAll();
    return suite;
}

const BenchmarkSpec *
findBenchmark(const std::string &id)
{
    for (const BenchmarkSpec &spec : sunspiderSuite()) {
        if (spec.id == id)
            return &spec;
    }
    for (const BenchmarkSpec &spec : krakenSuite()) {
        if (spec.id == id)
            return &spec;
    }
    return nullptr;
}

} // namespace nomap
