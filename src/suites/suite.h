#ifndef NOMAP_SUITES_SUITE_H
#define NOMAP_SUITES_SUITE_H

/**
 * @file
 * Benchmark suites for the evaluation.
 *
 * The paper evaluates SunSpider (26 benchmarks) and Kraken (14).
 * Those suites are real-world web workloads we cannot ship, so each
 * entry here is a from-scratch workload written in the JS subset that
 * matches the *behavioural class* of its namesake: the same hot-loop
 * structure, data-type mix, check mix (overflow-heavy vs bounds-heavy
 * vs property-heavy), FTL coverage (some benchmarks deliberately
 * spend >=95% of their time in runtime/lower-tier code), and write-
 * footprint scale (Kraken's transactional write sets exceed a 32 KB
 * L1D, which is what starves RTM in the paper). Table III's AvgS /
 * AvgT membership is reproduced exactly.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace nomap {

/** One benchmark. */
struct BenchmarkSpec {
    std::string id;       ///< "S01".."S26" / "K01".."K14".
    std::string name;     ///< Namesake workload (e.g. "3d-cube").
    std::string source;   ///< JS-subset program text.
    bool inAvgS = true;   ///< Paper Table III membership.
    /** Why a benchmark is excluded from AvgS ("" if included). */
    std::string exclusionReason;
};

/** The 26 SunSpider-class workloads (S01..S26). */
const std::vector<BenchmarkSpec> &sunspiderSuite();

/** The 14 Kraken-class workloads (K01..K14). */
const std::vector<BenchmarkSpec> &krakenSuite();

/** Look up one benchmark by id across both suites (nullptr if none). */
const BenchmarkSpec *findBenchmark(const std::string &id);

} // namespace nomap

#endif // NOMAP_SUITES_SUITE_H
