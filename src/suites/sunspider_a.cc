#include "suites/suite.h"

/**
 * @file
 * SunSpider-class workloads S01-S13. All programs are original code
 * written for this reproduction; each matches the behavioural class
 * of its namesake (see suite.h).
 */

namespace nomap {

std::vector<BenchmarkSpec>
sunspiderPartA()
{
    std::vector<BenchmarkSpec> v;

    // S01 3d-cube: 3D point rotation. Double math over parallel
    // coordinate arrays held in an object; property + bounds checks.
    v.push_back({"S01", "3d-cube", R"JS(
function rotateAll(cube, sinA, cosA, sinB, cosB) {
    var n = cube.xs.length;
    var check = 0;
    for (var i = 0; i < n; i++) {
        var x = cube.xs[i]; var y = cube.ys[i]; var z = cube.zs[i];
        var y2 = y * cosA - z * sinA;
        var z2 = y * sinA + z * cosA;
        var x2 = x * cosB - z2 * sinB;
        var z3 = x * sinB + z2 * cosB;
        cube.xs[i] = x2; cube.ys[i] = y2; cube.zs[i] = z3;
        check = check + 1;
    }
    cube.checksum = cube.xs[0] + cube.ys[1] + cube.zs[2];
    return check;
}
var cube = {xs: [], ys: [], zs: [], checksum: 0};
for (var i = 0; i < 400; i++) {
    cube.xs[i] = (i % 17) * 0.25;
    cube.ys[i] = (i % 11) * 0.5;
    cube.zs[i] = (i % 7) * 0.125;
}
var total = 0;
for (var f = 0; f < 140; f++) {
    total = rotateAll(cube, 0.0998, 0.995, 0.1986, 0.98);
}
result = Math.floor(cube.checksum * 1000) + total;
)JS", true, ""});

    // S02 3d-morph: sine-wave morphing whose results are never
    // consumed — the paper reports NoMap optimizes this away as dead
    // code once SMP liveness disappears.
    v.push_back({"S02", "3d-morph", R"JS(
function morph(n, phase) {
    var a = 0;
    for (var i = 0; i < n; i++) {
        a = a + Math.sin((i + phase) * 0.00314) * 0.501;
        a = a * 0.9999;
    }
    return 0;
}
var sink = 0;
for (var f = 0; f < 140; f++) sink += morph(900, f);
result = sink;
)JS", false, "dead code under NoMap (paper Table III)"});

    // S03 3d-raytrace: vector math through small helper functions
    // called from the hot loop — most FTL instructions end up NoTM or
    // TMUnopt, so NoMap gains little (matches the paper's S03).
    v.push_back({"S03", "3d-raytrace", R"JS(
function dot(ax, ay, az, bx, by, bz) {
    return ax * bx + ay * by + az * bz;
}
function shade(t, light) {
    if (t < 0) return 0;
    var s = t * light;
    if (s > 255) return 255;
    return s;
}
function trace(dirs, light) {
    var n = dirs.length;
    var acc = 0;
    for (var i = 0; i < n; i++) {
        var d = dirs[i];
        var t = dot(d, d * 0.5, d * 0.25, 0.577, 0.577, 0.577);
        acc = acc + shade(t, light);
    }
    return acc;
}
var dirs = [];
for (var i = 0; i < 300; i++) dirs[i] = (i % 23) * 0.043;
var out = 0;
for (var f = 0; f < 150; f++) out = trace(dirs, 40.0);
result = Math.floor(out);
)JS", true, ""});

    // S04 access-binary-trees: allocation + recursion dominated.
    v.push_back({"S04", "access-binary-trees", R"JS(
function bottomUp(item, depth) {
    if (depth <= 0) return {item: item, left: null, right: null};
    return {item: item,
            left: bottomUp(2 * item - 1, depth - 1),
            right: bottomUp(2 * item, depth - 1)};
}
function checkTree(node) {
    if (node.left === null) return node.item;
    return node.item + checkTree(node.left) - checkTree(node.right);
}
var sum = 0;
for (var f = 0; f < 160; f++) {
    var tree = bottomUp(f % 4, 5);
    sum += checkTree(tree);
}
result = sum;
)JS", true, ""});

    // S05 access-fannkuch: permutation flipping; integer arrays,
    // swaps, bounds checks everywhere.
    v.push_back({"S05", "access-fannkuch", R"JS(
function fannkuch(n, perm, perm1, count) {
    for (var i = 0; i < n; i++) perm1[i] = i;
    var flipsMax = 0;
    var r = n;
    var iters = 0;
    while (iters < 300) {
        iters++;
        while (r != 1) { count[r - 1] = r; r--; }
        for (var j = 0; j < n; j++) perm[j] = perm1[j];
        var flips = 0;
        var k = perm[0];
        while (k != 0) {
            var half = (k + 1) >> 1;
            for (var m = 0; m < half; m++) {
                var t = perm[m];
                perm[m] = perm[k - m];
                perm[k - m] = t;
            }
            flips++;
            k = perm[0];
        }
        if (flips > flipsMax) flipsMax = flips;
        while (r != n) {
            var p0 = perm1[0];
            for (var q = 0; q < r; q++) perm1[q] = perm1[q + 1];
            perm1[r] = p0;
            count[r] = count[r] - 1;
            if (count[r] > 0) break;
            r++;
        }
        if (r == n) break;
    }
    return flipsMax;
}
var perm = []; var perm1 = []; var count = [];
for (var i = 0; i < 8; i++) { perm[i] = 0; perm1[i] = 0; count[i] = 0; }
var best = 0;
for (var f = 0; f < 130; f++) best = fannkuch(7, perm, perm1, count);
result = best;
)JS", true, ""});

    // S06 access-nbody: objects with x/y/z/vx/vy/vz properties,
    // double physics, sqrt intrinsics.
    v.push_back({"S06", "access-nbody", R"JS(
function advance(bodies, dt) {
    var n = bodies.length;
    for (var i = 0; i < n; i++) {
        var bi = bodies[i];
        for (var j = i + 1; j < n; j++) {
            var bj = bodies[j];
            var dx = bi.x - bj.x;
            var dy = bi.y - bj.y;
            var dz = bi.z - bj.z;
            var d2 = dx * dx + dy * dy + dz * dz + 0.1;
            var mag = dt / (d2 * Math.sqrt(d2));
            bi.vx -= dx * bj.mass * mag;
            bi.vy -= dy * bj.mass * mag;
            bi.vz -= dz * bj.mass * mag;
            bj.vx += dx * bi.mass * mag;
            bj.vy += dy * bi.mass * mag;
            bj.vz += dz * bi.mass * mag;
        }
    }
    for (var k = 0; k < n; k++) {
        var b = bodies[k];
        b.x += dt * b.vx;
        b.y += dt * b.vy;
        b.z += dt * b.vz;
    }
}
function energy(bodies) {
    var e = 0;
    for (var i = 0; i < bodies.length; i++) {
        var b = bodies[i];
        e += 0.5 * b.mass * (b.vx * b.vx + b.vy * b.vy + b.vz * b.vz);
    }
    return e;
}
var bodies = [];
for (var i = 0; i < 5; i++) {
    bodies[i] = {x: i * 1.5, y: i * 0.5 - 1.0, z: 2.0 - i,
                 vx: 0.01 * i, vy: -0.005 * i, vz: 0.002,
                 mass: 1.0 + i * 0.1};
}
for (var f = 0; f < 220; f++) advance(bodies, 0.01);
result = Math.floor(energy(bodies) * 100000);
)JS", true, ""});

    // S07 access-nsieve: sieve of Eratosthenes; strided boolean-array
    // writes (bounds checks with non-unit stride stay per-iteration).
    v.push_back({"S07", "access-nsieve", R"JS(
function nsieve(m, flags) {
    var count = 0;
    for (var i = 2; i < m; i++) flags[i] = true;
    for (var p = 2; p < m; p++) {
        if (flags[p]) {
            count++;
            for (var k = p + p; k < m; k += p) flags[k] = false;
        }
    }
    return count;
}
var flags = [];
flags[1200] = false;
var primes = 0;
for (var f = 0; f < 130; f++) primes = nsieve(1200, flags);
result = primes;
)JS", true, ""});

    // S08 bitops-3bit-bits-in-byte: pure bit arithmetic accumulated
    // into an unused local — dead code under NoMap.
    v.push_back({"S08", "bitops-3bit-bits-in-byte", R"JS(
function bits3(n) {
    var sink = 0;
    for (var i = 0; i < n; i++) {
        var b = i & 255;
        var c = (b & 1) + ((b >> 1) & 1) + ((b >> 2) & 1) +
                ((b >> 3) & 1) + ((b >> 4) & 1) + ((b >> 5) & 1) +
                ((b >> 6) & 1) + ((b >> 7) & 1);
        sink = (sink + c) & 1023;
    }
    return 0;
}
var z = 0;
for (var f = 0; f < 150; f++) z += bits3(1000);
result = z;
)JS", false, "dead code under NoMap (paper Table III)"});

    // S09 bitops-bits-in-byte: same shape, shift-loop variant.
    v.push_back({"S09", "bitops-bits-in-byte", R"JS(
function bitsInByte(n) {
    var sink = 0;
    for (var i = 0; i < n; i++) {
        var b = i & 255;
        var m = 1;
        var c = 0;
        while (m < 256) {
            if (b & m) c++;
            m = m << 1;
        }
        sink = (sink + c) & 4095;
    }
    return 0;
}
var z = 0;
for (var f = 0; f < 140; f++) z += bitsInByte(700);
result = z;
)JS", false, "dead code under NoMap (paper Table III)"});

    // S10 bitops-bitwise-and: tight loop of int adds + masks writing
    // a global — the paper highlights S10 as the SOF showcase.
    v.push_back({"S10", "bitops-bitwise-and", R"JS(
var acc = 305419896;
function grind(n) {
    for (var i = 0; i < n; i++) {
        acc = (acc + i) & 2147483647;
        acc = (acc + (i << 3)) & 1073741823;
    }
    return acc;
}
var out = 0;
for (var f = 0; f < 140; f++) out = grind(1100);
result = out;
)JS", true, ""});

    // S11 bitops-nsieve-bits: sieve over a packed bit array.
    v.push_back({"S11", "bitops-nsieve-bits", R"JS(
function nsieveBits(m, words) {
    var count = 0;
    var nw = words.length;
    for (var w = 0; w < nw; w++) words[w] = -1;
    for (var p = 2; p < m; p++) {
        if (words[p >> 5] & (1 << (p & 31))) {
            count++;
            for (var k = p + p; k < m; k += p) {
                words[k >> 5] = words[k >> 5] & ~(1 << (k & 31));
            }
        }
    }
    return count;
}
var words = [];
for (var i = 0; i < 40; i++) words[i] = 0;
var primes = 0;
for (var f = 0; f < 140; f++) primes = nsieveBits(1200, words);
result = primes;
)JS", true, ""});

    // S12 controlflow-recursive: ackermann/fib/tak recursion; call
    // overhead dominates, little for transactions to win.
    v.push_back({"S12", "controlflow-recursive", R"JS(
function ack(m, n) {
    if (m == 0) return n + 1;
    if (n == 0) return ack(m - 1, 1);
    return ack(m - 1, ack(m, n - 1));
}
function fib(n) {
    if (n < 2) return 1;
    return fib(n - 2) + fib(n - 1);
}
var s = 0;
for (var f = 0; f < 150; f++) {
    s = ack(2, 3) + fib(10);
}
result = s;
)JS", true, ""});

    // S13 crypto-aes: many small loops over state/key byte arrays
    // with table lookups — the paper's bounds-check-sinking showcase
    // (72 checks from 29 loops sunk).
    v.push_back({"S13", "crypto-aes", R"JS(
function subBytes(ctx) {
    var n = ctx.state.length;
    for (var i = 0; i < n; i++) {
        ctx.state[i] = ctx.sbox[ctx.state[i] & 255];
    }
}
function shiftRows(ctx) {
    var n = ctx.state.length;
    for (var i = 0; i < n; i++) ctx.tmp[i] = ctx.state[(i * 5) % n];
    for (var j = 0; j < n; j++) ctx.state[j] = ctx.tmp[j];
}
function addRoundKey(ctx) {
    var n = ctx.state.length;
    for (var i = 0; i < n; i++) {
        ctx.state[i] = ctx.state[i] ^ ctx.key[i];
    }
}
function mixColumns(ctx) {
    var n = ctx.state.length;
    for (var i = 0; i < n; i++) {
        var x = ctx.state[i];
        ctx.state[i] = ((x << 1) ^ (x >> 7)) & 255;
    }
}
function encrypt(ctx, rounds) {
    for (var r = 0; r < rounds; r++) {
        subBytes(ctx);
        shiftRows(ctx);
        mixColumns(ctx);
        addRoundKey(ctx);
    }
    var acc = 0;
    var st = ctx.state;
    for (var i = 0; i < st.length; i++) acc = (acc + st[i]) & 65535;
    return acc;
}
var ctx = {state: [], sbox: [], key: [], tmp: []};
for (var i = 0; i < 256; i++) ctx.sbox[i] = (i * 7 + 99) & 255;
for (var i = 0; i < 64; i++) {
    ctx.state[i] = i * 3 & 255;
    ctx.key[i] = i * 11 & 255;
    ctx.tmp[i] = 0;
}
var out = 0;
for (var f = 0; f < 150; f++) out = encrypt(ctx, 4);
result = out;
)JS", true, ""});

    return v;
}

} // namespace nomap
