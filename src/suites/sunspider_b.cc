#include "suites/suite.h"

/**
 * @file
 * SunSpider-class workloads S14-S26 (original code; see suite.h).
 * S17 and S21-S26 deliberately spend >=95% of their time in runtime
 * helpers / lower tiers (string methods, allocation, generic ops), so
 * they are excluded from AvgS exactly as in the paper's Table III.
 */

namespace nomap {

std::vector<BenchmarkSpec>
sunspiderPartB()
{
    std::vector<BenchmarkSpec> v;

    // S14 crypto-md5: masked 16-bit-lane integer mixing (keeps the
    // int32 fast path live while exercising overflow checks).
    v.push_back({"S14", "crypto-md5", R"JS(
function mix(words, rounds) {
    var a = 1732584193 & 65535;
    var b = 4023233417 & 65535;
    var c = 2562383102 & 65535;
    var d = 271733878 & 65535;
    var n = words.length;
    for (var r = 0; r < rounds; r++) {
        for (var i = 0; i < n; i++) {
            var f = (b & c) | ((~b) & d);
            var t = (a + f + words[i] + 47) & 65535;
            a = d; d = c; c = b;
            b = (b + ((t << 3) | (t >> 13))) & 65535;
        }
    }
    return ((a << 16) | b) + c + d;
}
var words = [];
for (var i = 0; i < 128; i++) words[i] = (i * 2654435 + 17) & 65535;
var out = 0;
for (var f = 0; f < 140; f++) out = mix(words, 4);
result = out;
)JS", true, ""});

    // S15 crypto-sha1: rotate/xor rounds over a message schedule.
    v.push_back({"S15", "crypto-sha1", R"JS(
function schedule(w) {
    for (var t = 16; t < 80; t++) {
        var x = w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16];
        w[t] = ((x << 1) | (x >>> 31)) & 16777215;
    }
}
function rounds(w) {
    var a = 1, b = 2, c = 3, d = 4, e = 5;
    for (var t = 0; t < 80; t++) {
        var f = 0;
        if (t < 20) f = (b & c) | ((~b) & d);
        else if (t < 40) f = b ^ c ^ d;
        else if (t < 60) f = (b & c) | (b & d) | (c & d);
        else f = b ^ c ^ d;
        var tmp = (((a << 5) | (a >>> 27)) + f + e + w[t]) & 16777215;
        e = d; d = c; c = b;
        b = ((b << 30) | (b >>> 2)) & 16777215;
        a = tmp;
    }
    return a + b + c + d + e;
}
function sha1ish(w, blocks) {
    var h = 0;
    for (var bIdx = 0; bIdx < blocks; bIdx++) {
        schedule(w);
        h = (h + rounds(w)) & 16777215;
    }
    return h;
}
var w = [];
for (var i = 0; i < 80; i++) w[i] = (i * 131071 + 7) & 16777215;
var out = 0;
for (var f = 0; f < 130; f++) out = sha1ish(w, 3);
result = out;
)JS", true, ""});

    // S16 date-format-tofte: formatting via string building — mostly
    // runtime (NoFTL) work, kept in AvgS like the paper's S16 but
    // showing little NoMap benefit.
    v.push_back({"S16", "date-format-tofte", R"JS(
function pad2(n) {
    if (n < 10) return "0" + n;
    return "" + n;
}
function formatStamp(day, month, year, h, m, s) {
    return pad2(day) + "/" + pad2(month) + "/" + year + " " +
           pad2(h) + ":" + pad2(m) + ":" + pad2(s);
}
var hash = 0;
for (var f = 0; f < 160; f++) {
    var s = formatStamp(f % 28 + 1, f % 12 + 1, 2008, f % 24,
                        f % 60, (f * 7) % 60);
    hash = (hash + s.length + s.charCodeAt(0)) & 65535;
}
result = hash;
)JS", true, ""});

    // S17 date-format-xparb: heavier string formatting; >=95%
    // non-FTL, excluded from AvgS.
    v.push_back({"S17", "date-format-xparb", R"JS(
function monthName(m) {
    var names = ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul",
                 "Aug", "Sep", "Oct", "Nov", "Dec"];
    return names[m % 12];
}
function longFormat(day, month, year) {
    var suffix = "th";
    if (day % 10 == 1 && day != 11) suffix = "st";
    else if (day % 10 == 2 && day != 12) suffix = "nd";
    else if (day % 10 == 3 && day != 13) suffix = "rd";
    return monthName(month) + " " + day + suffix + ", " + year;
}
var hash = 0;
for (var f = 0; f < 220; f++) {
    var s = longFormat(f % 28 + 1, f % 12, 1990 + (f % 30));
    hash = (hash + s.length * 31 + s.charCodeAt(s.length - 1)) & 65535;
}
result = hash;
)JS", false, ">=95% non-FTL instructions (paper Table III)"});

    // S18 math-cordic: CORDIC rotation against an angle-table object;
    // the paper reports NoMap finds a redundant load and sinks
    // another within cordicsincos — the x/y property traffic here
    // reproduces that pattern.
    v.push_back({"S18", "math-cordic", R"JS(
function cordicsincos(state, angles, target) {
    state.x = 607252935;
    state.y = 0;
    var z = target;
    var n = angles.length;
    for (var i = 0; i < n; i++) {
        var dx = state.x >> 3;
        var dy = state.y >> 3;
        var da = angles[i];
        if (z >= 0) {
            state.x = state.x - dy;
            state.y = state.y + dx;
            z = z - da;
        } else {
            state.x = state.x + dy;
            state.y = state.y - dx;
            z = z + da;
        }
    }
    return state.x - state.y;
}
var angles = [];
for (var i = 0; i < 40; i++) angles[i] = 2949120 >> i;
var state = {x: 0, y: 0};
var out = 0;
for (var f = 0; f < 300; f++) out = cordicsincos(state, angles, 1474560);
result = out;
)JS", true, ""});

    // S19 math-partial-sums: double series with intrinsics.
    v.push_back({"S19", "math-partial-sums", R"JS(
function partial(n) {
    var a1 = 0; var a2 = 0; var a3 = 0; var a4 = 0;
    var twothirds = 2.0 / 3.0;
    var alt = -1.0;
    for (var k = 1; k <= n; k++) {
        var k2 = k * k;
        var sk = Math.sin(k);
        var ck = Math.cos(k);
        alt = -alt;
        a1 += Math.pow(twothirds, k - 1);
        a2 += 1.0 / (k2 * (1.0 + sk * sk));
        a3 += 1.0 / (k2 * (1.0 + ck * ck));
        a4 += alt / k;
    }
    return a1 + a2 + a3 + a4;
}
var out = 0;
for (var f = 0; f < 150; f++) out = partial(220);
result = Math.floor(out * 1000000);
)JS", true, ""});

    // S20 math-spectral-norm: nested loops over double vectors.
    v.push_back({"S20", "math-spectral-norm", R"JS(
function A(i, j) {
    return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1);
}
function multAv(u, v) {
    var n = u.length;
    for (var i = 0; i < n; i++) {
        var t = 0;
        for (var j = 0; j < n; j++) t += A(i, j) * u[j];
        v[i] = t;
    }
}
function multAtv(u, v) {
    var n = u.length;
    for (var i = 0; i < n; i++) {
        var t = 0;
        for (var j = 0; j < n; j++) t += A(j, i) * u[j];
        v[i] = t;
    }
}
var u = []; var w = []; var x = [];
for (var i = 0; i < 40; i++) { u[i] = 1.0; w[i] = 0; x[i] = 0; }
for (var f = 0; f < 130; f++) {
    multAv(u, w);
    multAtv(w, x);
}
var vBv = 0; var vv = 0;
for (var i2 = 0; i2 < 40; i2++) {
    vBv += u[i2] * x[i2];
    vv += x[i2] * x[i2];
}
result = Math.floor(Math.sqrt(vBv / vv) * 1000000);
)JS", true, ""});

    // S21 regexp-dna (no regexp engine in the subset): pattern
    // scanning with string methods — runtime dominated.
    v.push_back({"S21", "regexp-dna", R"JS(
function countPattern(seq, pat) {
    var count = 0;
    var start = 0;
    while (true) {
        var rest = seq.substring(start, seq.length);
        var at = rest.indexOf(pat);
        if (at < 0) break;
        count++;
        start = start + at + 1;
    }
    return count;
}
var seq = "";
var bases = "acgt";
for (var i = 0; i < 60; i++) {
    seq = seq + bases.charAt((i * 7) % 4) + "gg" +
          bases.charAt((i * 13) % 4) + "tta";
}
var total = 0;
for (var f = 0; f < 90; f++) {
    total = countPattern(seq, "gg") + countPattern(seq, "tta") +
            countPattern(seq, "agg");
}
result = total;
)JS", false, ">=95% non-FTL instructions (paper Table III)"});

    // S22 string-base64: chunked encode with fromCharCode/charCodeAt.
    v.push_back({"S22", "string-base64", R"JS(
function encodeChunk(data, table, from, to, parts) {
    var out = "";
    for (var i = from; i + 2 < to; i += 3) {
        var n = (data.charCodeAt(i) << 16) |
                (data.charCodeAt(i + 1) << 8) | data.charCodeAt(i + 2);
        out = out + table.charAt((n >> 18) & 63) +
              table.charAt((n >> 12) & 63) +
              table.charAt((n >> 6) & 63) + table.charAt(n & 63);
    }
    parts.push(out);
}
var table = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
var data = "";
for (var i = 0; i < 30; i++) data = data + "Man is distinguished";
var hash = 0;
for (var f = 0; f < 60; f++) {
    var parts = [];
    for (var c = 0; c < data.length; c += 60)
        encodeChunk(data, table, c, c + 60, parts);
    var enc = parts.join("");
    hash = (hash + enc.length + enc.charCodeAt(5)) & 65535;
}
result = hash;
)JS", false, ">=95% non-FTL instructions (paper Table III)"});

    // S23 string-fasta: weighted random sequence emission.
    v.push_back({"S23", "string-fasta", R"JS(
function emit(codes, weights, n, out) {
    for (var i = 0; i < n; i++) {
        var r = Math.random();
        var k = 0;
        while (k < weights.length - 1 && r >= weights[k]) {
            r -= weights[k];
            k++;
        }
        out.push(codes.charAt(k));
    }
    return out.length;
}
var codes = "acgt";
var weights = [0.27, 0.12, 0.12, 0.49];
var hash = 0;
for (var f = 0; f < 70; f++) {
    var out = [];
    emit(codes, weights, 120, out);
    var s = out.join("");
    hash = (hash + s.charCodeAt(0) + s.length) & 65535;
}
result = hash;
)JS", false, ">=95% non-FTL instructions (paper Table III)"});

    // S24 string-tagcloud: object/string churn with generic property
    // access by computed names.
    v.push_back({"S24", "string-tagcloud", R"JS(
function style(weight) {
    return "font-size: " + (8 + weight * 3) + "px";
}
var tags = {};
var names = ["web", "js", "css", "html", "dom", "ajax", "json", "api"];
var hash = 0;
for (var f = 0; f < 120; f++) {
    for (var i = 0; i < names.length; i++) {
        var name = names[i];
        var cur = tags[name];
        if (cur === undefined) cur = 0;
        tags[name] = cur + 1;
    }
    var s = style(tags[names[f % 8]] % 10);
    hash = (hash + s.length + s.charCodeAt(10)) & 65535;
}
result = hash;
)JS", false, ">=95% non-FTL instructions (paper Table III)"});

    // S25 string-unpack-code: split/join/charCodeAt decompression.
    v.push_back({"S25", "string-unpack-code", R"JS(
function unpack(packed, dict) {
    var words = packed.split("|");
    var out = [];
    for (var i = 0; i < words.length; i++) {
        var w = words[i];
        switch (w.length) {
          case 0:
            break;
          case 1: {
            var k = w.charCodeAt(0) - 97;
            if (k >= 0 && k < dict.length) { out.push(dict[k]); break; }
            out.push(w);
            break;
          }
          default:
            out.push(w);
        }
    }
    return out.join(" ");
}
var dict = ["function", "return", "var", "while", "for", "if"];
var packed = "a|x|b|y|c|i|d|j|e|k|f|z";
var hash = 0;
for (var f = 0; f < 120; f++) {
    var code = unpack(packed, dict);
    hash = (hash + code.length + code.charCodeAt(3)) & 65535;
}
result = hash;
)JS", false, ">=95% non-FTL instructions (paper Table III)"});

    // S26 string-validate-input: field validation via char classes.
    v.push_back({"S26", "string-validate-input", R"JS(
function isDigit(c) { return c >= 48 && c <= 57; }
function isAlpha(c) {
    return (c >= 97 && c <= 122) || (c >= 65 && c <= 90);
}
function validateEmail(s) {
    var at = s.indexOf("@");
    if (at <= 0) return false;
    var dot = s.substring(at, s.length).indexOf(".");
    if (dot < 0) return false;
    for (var i = 0; i < at; i++) {
        var c = s.charCodeAt(i);
        if (!isAlpha(c) && !isDigit(c) && c != 46) return false;
    }
    return true;
}
var samples = ["user@host.com", "bad-email", "a.b@c.d", "@nohost",
               "name123@web.org", "x@y", "first.last@mail.net"];
var valid = 0;
for (var f = 0; f < 130; f++) {
    for (var i = 0; i < samples.length; i++) {
        if (validateEmail(samples[i])) valid++;
    }
}
result = valid;
)JS", false, ">=95% non-FTL instructions (paper Table III)"});

    return v;
}

} // namespace nomap
