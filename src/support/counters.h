#ifndef NOMAP_SUPPORT_COUNTERS_H
#define NOMAP_SUPPORT_COUNTERS_H

/**
 * @file
 * Counter arithmetic helpers shared by the metrics producers.
 */

#include <cstdint>

namespace nomap {

/**
 * a - b, clamped at zero.
 *
 * The standard guard for gauges derived as the difference of two
 * monotone counters sampled with relaxed loads (e.g. the net
 * front-end's active connections = accepted - closed): between the two
 * loads the writer can advance the subtrahend past the sampled
 * minuend, and the raw difference then wraps to ~2^64. A clamped
 * difference is momentarily stale instead of absurd. Also the right
 * spelling for derived counters that are provably non-negative under a
 * lock — the clamp documents the invariant and keeps a future
 * refactor to atomics from introducing a wrap.
 */
inline uint64_t
clampedDelta(uint64_t a, uint64_t b)
{
    return a >= b ? a - b : 0;
}

} // namespace nomap

#endif // NOMAP_SUPPORT_COUNTERS_H
