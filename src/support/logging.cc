#include "support/logging.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace nomap {

namespace {

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

} // namespace

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    return s;
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace nomap
