#include "support/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace nomap {

namespace {

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::atomic<LogLevel> logLevelValue{LogLevel::Warning};

// Guards the sink: swap and every invocation, so concurrent workers
// never interleave lines and never race a sink replacement.
std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

LogSink &
sinkSlot()
{
    static LogSink sink;
    return sink;
}

void
emit(LogLevel level, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    LogSink &sink = sinkSlot();
    if (sink) {
        sink(level, msg);
    } else {
        std::fprintf(stderr, "%s: %s\n", logLevelName(level),
                     msg.c_str());
    }
}

} // namespace

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    return s;
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    // Deliberately bypasses the sink/mutex: panic may fire while the
    // logging lock is held, and the process is about to abort anyway.
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warning: return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::Silent: return "silent";
    }
    return "?";
}

void
setLogLevel(LogLevel level)
{
    logLevelValue.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return logLevelValue.load(std::memory_order_relaxed);
}

void
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    sinkSlot() = std::move(sink);
}

void
logMessage(LogLevel level, const char *fmt, ...)
{
    if (level < logLevel() || level == LogLevel::Silent)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    emit(level, msg);
}

void
warn(const char *fmt, ...)
{
    if (LogLevel::Warning < logLevel())
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    emit(LogLevel::Warning, msg);
}

} // namespace nomap
