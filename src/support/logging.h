#ifndef NOMAP_SUPPORT_LOGGING_H
#define NOMAP_SUPPORT_LOGGING_H

/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * `fatal` reports a condition caused by the user of the library (bad
 * program source, invalid configuration) and throws FatalError so
 * embedders can recover. `panic` reports an internal invariant
 * violation (a bug in the simulator itself) and aborts.
 *
 * Diagnostic output (`warn`, `logMessage`) is thread-safe: the active
 * sink is invoked under a mutex so concurrent service workers never
 * interleave partial lines, and the severity filter is an atomic so it
 * can be adjusted while workers are running.
 */

#include <cstdarg>
#include <functional>
#include <stdexcept>
#include <string>

namespace nomap {

/** Exception thrown by fatal(): a user-level, recoverable error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a user-caused error by throwing FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal bug and abort the process. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

// ---- Leveled diagnostics -----------------------------------------------

/** Severity of a diagnostic message (ordered; Silent disables all). */
enum class LogLevel : uint8_t { Debug, Info, Warning, Error, Silent };

/** Printable level name ("debug", "info", ...). */
const char *logLevelName(LogLevel level);

/**
 * Minimum severity that is emitted. Stored in an atomic: safe to call
 * from any thread at any time. Default is Warning.
 */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/**
 * Destination for diagnostic messages. The sink is called with the
 * formatted message (no trailing newline) while an internal mutex is
 * held, so invocations are serialized: a sink needs no locking of its
 * own unless it shares state with non-logging code. Passing an empty
 * function restores the default sink (one line to stderr).
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;
void setLogSink(LogSink sink);

/** Emit a diagnostic at @p level (filtered, serialized). */
void logMessage(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Emit a warning (non-fatal); shorthand for logMessage(Warning, ...). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Internal assertion macro. Unlike NDEBUG-controlled assert(), this is
 * always on: simulator invariants must hold in release builds too.
 */
#define NOMAP_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::nomap::panic("assertion failed at %s:%d: %s",              \
                           __FILE__, __LINE__, #cond);                   \
        }                                                                 \
    } while (0)

} // namespace nomap

#endif // NOMAP_SUPPORT_LOGGING_H
