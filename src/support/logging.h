#ifndef NOMAP_SUPPORT_LOGGING_H
#define NOMAP_SUPPORT_LOGGING_H

/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * `fatal` reports a condition caused by the user of the library (bad
 * program source, invalid configuration) and throws FatalError so
 * embedders can recover. `panic` reports an internal invariant
 * violation (a bug in the simulator itself) and aborts.
 */

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace nomap {

/** Exception thrown by fatal(): a user-level, recoverable error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a user-caused error by throwing FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal bug and abort the process. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a warning on stderr (non-fatal). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Internal assertion macro. Unlike NDEBUG-controlled assert(), this is
 * always on: simulator invariants must hold in release builds too.
 */
#define NOMAP_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::nomap::panic("assertion failed at %s:%d: %s",              \
                           __FILE__, __LINE__, #cond);                   \
        }                                                                 \
    } while (0)

} // namespace nomap

#endif // NOMAP_SUPPORT_LOGGING_H
