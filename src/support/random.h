#ifndef NOMAP_SUPPORT_RANDOM_H
#define NOMAP_SUPPORT_RANDOM_H

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in the simulator and in the benchmark workloads flows
 * through Xorshift64Star so that runs are bit-identical across
 * machines and repetitions. The JS-subset builtin Math.random() is
 * backed by an instance of this generator seeded per Engine.
 */

#include <cstdint>

namespace nomap {

/** xorshift64* generator: small, fast, deterministic, decent quality. */
class Xorshift64Star
{
  public:
    explicit Xorshift64Star(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    nextBounded(uint64_t bound)
    {
        return next() % bound;
    }

    /** Re-seed the generator. */
    void
    seed(uint64_t s)
    {
        state = s ? s : 0x9e3779b97f4a7c15ull;
    }

    // Exact state snapshot/restore (no zero-coercion, unlike seed):
    // shared-heap region retries restore the generator to its value at
    // region begin so a retry draws the same sequence a first attempt
    // did.
    uint64_t rawState() const { return state; }
    void setRawState(uint64_t s) { state = s; }

  private:
    uint64_t state;
};

} // namespace nomap

#endif // NOMAP_SUPPORT_RANDOM_H
