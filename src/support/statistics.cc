#include "support/statistics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/logging.h"

namespace nomap {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        // The geometric mean is undefined for non-positive inputs;
        // log(0)/log(-x) would feed -inf/NaN into figure tables.
        // (!(x > 0.0) also catches NaN.)
        if (!(x > 0.0))
            return 0.0;
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
medianOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    std::vector<double> sorted(xs);
    std::sort(sorted.begin(), sorted.end());
    size_t mid = sorted.size() / 2;
    if (sorted.size() % 2 == 1)
        return sorted[mid];
    return (sorted[mid - 1] + sorted[mid]) / 2.0;
}

double
minOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return *std::max_element(xs.begin(), xs.end());
}

void
TextTable::header(std::vector<std::string> cells)
{
    headerCells = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(headerCells);
    for (const auto &r : rows)
        grow(r);

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            out << cells[i];
            if (i + 1 < cells.size()) {
                out << std::string(widths[i] - cells[i].size() + 2, ' ');
            }
        }
        out << '\n';
    };
    if (!headerCells.empty()) {
        emit(headerCells);
        size_t total = 0;
        for (size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        out << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows)
        emit(r);
    return out.str();
}

std::string
fmtDouble(double v, int decimals)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(decimals);
    out << v;
    return out.str();
}

std::string
fmtPercent(double ratio, int decimals)
{
    return fmtDouble(ratio * 100.0, decimals) + "%";
}

} // namespace nomap
