#ifndef NOMAP_SUPPORT_STATISTICS_H
#define NOMAP_SUPPORT_STATISTICS_H

/**
 * @file
 * Small summary-statistics helpers used by the benchmark harnesses:
 * arithmetic and geometric means, min/max, and fixed-width table
 * formatting for the figure/table reproduction output.
 */

#include <cstddef>
#include <string>
#include <vector>

namespace nomap {

/** Arithmetic mean of a vector; 0 if empty. */
double mean(const std::vector<double> &xs);

/**
 * Geometric mean of a vector of positive values; 0 if empty or if
 * any input is non-positive (where the mean is undefined).
 */
double geomean(const std::vector<double> &xs);

/**
 * True median: middle element for odd sizes, average of the two
 * middle elements for even sizes; 0 if empty. More robust than the
 * nearest-rank p50 for small benchmark repetition counts.
 */
double medianOf(const std::vector<double> &xs);

/** Minimum; 0 if empty. */
double minOf(const std::vector<double> &xs);

/** Maximum; 0 if empty. */
double maxOf(const std::vector<double> &xs);

/**
 * Fixed-width text table builder for printing paper tables/figures as
 * aligned rows on stdout.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render the table with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::string> headerCells;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with the given number of decimals. */
std::string fmtDouble(double v, int decimals = 2);

/** Format a ratio as a percentage string, e.g. 0.142 -> "14.2%". */
std::string fmtPercent(double ratio, int decimals = 1);

} // namespace nomap

#endif // NOMAP_SUPPORT_STATISTICS_H
