#include "trace/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <tuple>

namespace nomap {

namespace {

/**
 * Name tables for payload codes. The trace library sits *below* htm
 * and engine in the link graph, so it cannot include their headers;
 * instead the numeric layouts are mirrored here and pinned by
 * static_asserts next to the producing code (htm/transaction.cc,
 * engine/engine.cc) so the enums cannot drift silently.
 */
constexpr const char *kAbortCodeNames[] = {
    "None", "ExplicitCheck", "Capacity", "StickyOverflow", "Irrevocable",
};

constexpr const char *kCheckKindNames[] = {
    "Bounds", "Overflow", "Type", "Property", "Other",
};

constexpr const char *kTierNames[] = {
    "Interpreter", "Baseline", "Dfg", "Ftl",
};

const char *
nameOrUnknown(const char *const *table, size_t size, uint8_t code)
{
    return code < size ? table[code] : "?";
}

std::string
funcLabel(uint32_t func_id, const TraceNameResolver &resolver)
{
    if (resolver) {
        std::string name = resolver(func_id);
        if (!name.empty())
            return name;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "fn#%" PRIu32, func_id);
    return buf;
}

std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

/** Per-type code name (what `code` means depends on `type`). */
const char *
codeName(const TraceEvent &e)
{
    switch (e.type) {
      case TraceEventType::TxAbort:
        return nameOrUnknown(kAbortCodeNames, std::size(kAbortCodeNames),
                             e.code);
      case TraceEventType::Deopt:
        return nameOrUnknown(kCheckKindNames, std::size(kCheckKindNames),
                             e.code);
      case TraceEventType::TierUp:
        return nameOrUnknown(kTierNames, std::size(kTierNames), e.code);
      case TraceEventType::SpanBegin:
      case TraceEventType::SpanEnd:
        return spanKindName(static_cast<SpanKind>(e.code));
      default:
        return "";
    }
}

} // namespace

const char *
traceEventTypeName(TraceEventType type)
{
    switch (type) {
      case TraceEventType::TxBegin: return "TxBegin";
      case TraceEventType::TxCommit: return "TxCommit";
      case TraceEventType::TxAbort: return "TxAbort";
      case TraceEventType::Deopt: return "Deopt";
      case TraceEventType::TierUp: return "TierUp";
      case TraceEventType::PassReport: return "PassReport";
      case TraceEventType::SpanBegin: return "SpanBegin";
      case TraceEventType::SpanEnd: return "SpanEnd";
      case TraceEventType::TxFallback: return "TxFallback";
    }
    return "?";
}

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Request: return "request";
      case SpanKind::Queue: return "queue";
      case SpanKind::Execute: return "execute";
      case SpanKind::Retry: return "retry";
    }
    return "?";
}

const char *
tracePassName(TracePassId pass)
{
    switch (pass) {
      case TracePassId::Planner: return "planner";
      case TracePassId::KindInference: return "kind-inference";
      case TracePassId::CheckElim: return "check-elim";
      case TracePassId::LocalCse: return "local-cse";
      case TracePassId::Licm: return "licm";
      case TracePassId::StoreSink: return "store-sink";
      case TracePassId::Dce: return "dce";
      case TracePassId::LoopAccumulatorDce: return "loop-accumulator-dce";
      case TracePassId::EmptyLoopElim: return "empty-loop-elim";
      case TracePassId::BoundsCombine: return "bounds-combine";
      case TracePassId::SofElim: return "sof-elim";
      case TracePassId::RemoveConvertedChecks:
        return "remove-converted-checks";
      case TracePassId::Adaptive: return "adaptive-revision";
    }
    return "?";
}

TraceBuffer::TraceBuffer(size_t capacity) : cap(capacity)
{
    store.reserve(capacity);
}

void
TraceBuffer::clear()
{
    store.clear();
    emittedCount = 0;
    droppedCount = 0;
}

std::vector<TraceEvent>
TraceBuffer::drain()
{
    std::vector<TraceEvent> out = std::move(store);
    store.clear();
    store.reserve(cap);
    return out;
}

std::string
chromeTraceJson(const std::vector<TraceEvent> &events,
                const TraceNameResolver &resolver)
{
    // Object form ({"traceEvents": [...]}) — both Perfetto and
    // chrome://tracing load it, and it leaves room for metadata keys.
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &e : events) {
        std::string name;
        const char *ph = "i";
        std::string args;
        switch (e.type) {
          case TraceEventType::TxBegin:
            ph = "B";
            name = "tx " + funcLabel(e.funcId, resolver);
            appendf(args, "\"smp_pc\":%" PRIu32, e.pc);
            break;
          case TraceEventType::TxCommit:
            ph = "E";
            name = "tx " + funcLabel(e.funcId, resolver);
            appendf(args,
                    "\"outcome\":\"commit\",\"write_footprint_bytes\":%" PRIu64
                    ",\"max_ways_used\":%" PRIu32,
                    e.bytes, e.ways);
            break;
          case TraceEventType::TxAbort:
            ph = "E";
            name = "tx " + funcLabel(e.funcId, resolver);
            appendf(args,
                    "\"outcome\":\"abort\",\"abort_code\":\"%s\""
                    ",\"write_footprint_bytes\":%" PRIu64
                    ",\"max_ways_used\":%" PRIu32,
                    codeName(e), e.bytes, e.ways);
            break;
          case TraceEventType::Deopt:
            name = "deopt " + funcLabel(e.funcId, resolver);
            appendf(args, "\"check_kind\":\"%s\",\"smp_pc\":%" PRIu32,
                    codeName(e), e.pc);
            break;
          case TraceEventType::TierUp:
            name = "tier-up " + funcLabel(e.funcId, resolver);
            appendf(args, "\"tier\":\"%s\"", codeName(e));
            break;
          case TraceEventType::PassReport:
            name = std::string("pass ") +
                   tracePassName(static_cast<TracePassId>(e.aux));
            appendf(args,
                    "\"checks_removed\":%" PRIu64 ",\"ops_removed\":%" PRIu32
                    ",\"loop_pc\":%" PRIu32,
                    e.bytes, e.ways, e.pc);
            name += " " + funcLabel(e.funcId, resolver);
            break;
          case TraceEventType::SpanBegin:
          case TraceEventType::SpanEnd:
            ph = e.type == TraceEventType::SpanBegin ? "B" : "E";
            name = codeName(e);
            appendf(args, "\"attempt\":%u,\"wall_micros\":%" PRIu64,
                    unsigned(e.aux), e.bytes);
            break;
          case TraceEventType::TxFallback:
            name = "tx-fallback " + funcLabel(e.funcId, resolver);
            appendf(args,
                    "\"htm_attempts\":%u,\"write_footprint_bytes\":%" PRIu64,
                    unsigned(e.aux), e.bytes);
            break;
        }
        if (!first)
            out += ',';
        first = false;
        appendf(out,
                "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%" PRIu64
                ",\"pid\":1,\"tid\":%" PRIu32 ",\"args\":{%s}}",
                escapeJson(name).c_str(), ph, e.vcycles, e.tid, args.c_str());
    }
    out += "],\"displayTimeUnit\":\"ns\"}";
    return out;
}

std::string
abortAttributionReport(const std::vector<TraceEvent> &events,
                       size_t top_n,
                       const TraceNameResolver &resolver)
{
    struct Site {
        uint64_t count = 0;
        uint64_t maxBytes = 0;
        uint32_t maxWays = 0;
    };
    // Ordered map keys give the deterministic tie-break for free.
    std::map<std::tuple<uint32_t, uint32_t, uint8_t>, Site> sites;
    uint64_t total = 0;
    for (const TraceEvent &e : events) {
        if (e.type != TraceEventType::TxAbort)
            continue;
        Site &s = sites[{e.funcId, e.pc, e.code}];
        ++s.count;
        s.maxBytes = std::max(s.maxBytes, e.bytes);
        s.maxWays = std::max(s.maxWays, e.ways);
        ++total;
    }

    std::vector<std::pair<std::tuple<uint32_t, uint32_t, uint8_t>, Site>>
        ranked(sites.begin(), sites.end());
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.second.count > b.second.count;
                     });
    if (ranked.size() > top_n)
        ranked.resize(top_n);

    std::string out;
    appendf(out,
            "Abort attribution: %zu of %zu site(s), %" PRIu64
            " abort(s) total\n",
            ranked.size(), sites.size(), total);
    appendf(out, "%4s  %8s  %-15s  %-20s  %8s  %10s  %4s\n", "#", "aborts",
            "code", "function", "entry-pc", "max-bytes", "ways");
    size_t rank = 1;
    for (const auto &[key, site] : ranked) {
        const auto &[func_id, pc, code] = key;
        appendf(out,
                "%4zu  %8" PRIu64 "  %-15s  %-20s  %8" PRIu32 "  %10" PRIu64
                "  %4" PRIu32 "\n",
                rank++, site.count,
                nameOrUnknown(kAbortCodeNames, std::size(kAbortCodeNames),
                              code),
                funcLabel(func_id, resolver).c_str(), pc, site.maxBytes,
                site.maxWays);
    }
    return out;
}

std::string
traceText(const std::vector<TraceEvent> &events)
{
    std::string out;
    for (const TraceEvent &e : events) {
        appendf(out, "[%10" PRIu64 "] %-10s", e.vcycles,
                traceEventTypeName(e.type));
        if (e.type == TraceEventType::PassReport)
            appendf(out, " pass=%s",
                    tracePassName(static_cast<TracePassId>(e.aux)));
        else if (const char *cn = codeName(e); *cn)
            appendf(out, " code=%s", cn);
        appendf(out,
                " fn=%" PRIu32 " pc=%" PRIu32 " bytes=%" PRIu64
                " ways=%" PRIu32 " aux=%u tid=%" PRIu32 "\n",
                e.funcId, e.pc, e.bytes, e.ways, unsigned(e.aux), e.tid);
    }
    return out;
}

} // namespace nomap
