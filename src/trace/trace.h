#ifndef NOMAP_TRACE_TRACE_H
#define NOMAP_TRACE_TRACE_H

/**
 * @file
 * Low-overhead structured event tracing with deterministic timestamps.
 *
 * The simulator's aggregate counters say *how many* transactions
 * aborted; this layer says *which* ones, *where*, and *why* — the
 * attribution signal behind the paper's Table IV characterization and
 * the <50-deopts claim. Three design rules:
 *
 *  1. **Zero cost when disabled.** Every producer guards with
 *     `buf && buf->enabled()`; `enabled()` is an inlinable load of the
 *     capacity field, and a null buffer is the common case. No trace
 *     site sits on the per-instruction hot path — events fire on
 *     transaction boundaries, deopts, tier-ups, compiles, and request
 *     edges only.
 *
 *  2. **Deterministic timestamps.** Events are stamped with *virtual
 *     cycles* from the engine's Accounting (via the TraceClock
 *     interface), never wall clock. The same program under the same
 *     config produces a bit-identical event stream on every run and
 *     every machine, which is what lets the golden-file trace test
 *     pin the exporter output exactly. The virtual clock is not
 *     strictly monotonic — accounting refunds on deopt/abort can step
 *     it back by a few cycles — but it is reproducible, which is the
 *     property the tests rely on.
 *
 *  3. **Fixed memory.** TraceBuffer is a fixed-capacity ring that
 *     drops the *newest* events once full (the prefix of a trace is
 *     the interesting part for attribution) and counts the drops, so
 *     a runaway workload can neither exhaust memory nor silently
 *     truncate: the drop counters surface in the service metrics.
 *
 * Two exporters render a drained event stream:
 *  - chromeTraceJson(): Chrome `trace_event` JSON (array-of-objects
 *    form), loadable in Perfetto / chrome://tracing. Transactions and
 *    request spans become duration ("B"/"E") events; deopts, tier-ups,
 *    and pass reports become instants. `ts` carries virtual
 *    microseconds (1 vcycle = 1 µs), `tid` the request lane.
 *  - abortAttributionReport(): a text table of the top-N abort sites,
 *    keyed by (function, transaction-entry pc, abort code), with
 *    footprint maxima per site — the capacity-tuning signal.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace nomap {

/** What happened (the event taxonomy; see DESIGN.md §7). */
enum class TraceEventType : uint8_t {
    TxBegin,    ///< Outermost XBegin (htm/transaction.cc).
    TxCommit,   ///< Outermost XEnd committed.
    TxAbort,    ///< Transaction aborted; code = AbortCode.
    Deopt,      ///< OSR exit through a stack map; code = CheckKind.
    TierUp,     ///< Tiering decision; code = destination Tier.
    PassReport, ///< Optimization-pass delta; aux = PassId.
    SpanBegin,  ///< Request-scoped span opens; code = SpanKind.
    SpanEnd,    ///< Request-scoped span closes; code = SpanKind.
    /** A shared-heap region exhausted its HTM retry budget and ran on
     *  the software fallback path (stm/shared_heap.cc). Appended last:
     *  exporter output for the earlier types is pinned by goldens. */
    TxFallback,
};

/** Printable event-type name. */
const char *traceEventTypeName(TraceEventType type);

/** Request-scoped span kinds emitted by the service layer. */
enum class SpanKind : uint8_t {
    Request, ///< Whole request: submit to response.
    Queue,   ///< Time spent queued (instant; wall micros in payload).
    Execute, ///< One execution attempt on an isolate.
    Retry,   ///< A failed attempt that was retried (instant).
};

/** Printable span-kind name. */
const char *spanKindName(SpanKind kind);

/**
 * Identifies which optimization pass a PassReport event describes.
 * Lives here (not in passes/) because the trace layer is below every
 * producer in the link graph; the pass driver in ftl/compile.cc maps
 * each pass invocation to its id.
 */
enum class TracePassId : uint16_t {
    Planner, ///< nomap/planner.cc transaction placement (per loop).
    KindInference,
    CheckElim,
    LocalCse,
    Licm,
    StoreSink,
    Dce,
    LoopAccumulatorDce,
    EmptyLoopElim,
    BoundsCombine,
    SofElim,
    RemoveConvertedChecks,
    /** Not a pass: an adaptive plan revision (engine/engine.cc).
     *  bytes = capacity-override budget, ways = new scope level,
     *  pc = 0 (function-wide) or the blacklisted site. */
    Adaptive,
};

/** Printable pass name. */
const char *tracePassName(TracePassId pass);

/**
 * One fixed-size trace record. The meaning of the payload fields
 * depends on `type`:
 *
 *   TxBegin     funcId/pc = owning function + entry SMP pc
 *   TxCommit    bytes = write footprint, ways = max ways used
 *   TxAbort     code = AbortCode, bytes/ways as TxCommit (recorded
 *               *before* rollback — aborted footprints count)
 *   Deopt       code = CheckKind, funcId/pc = function + SMP pc
 *   TierUp      code = destination Tier, funcId
 *   PassReport  aux = PassId, bytes = checks removed by the pass (or
 *               converted by the planner), ways = dead ops removed
 *               (planner: tile interval), pc = loop header pc
 *   Span*       code = SpanKind, aux = attempt, bytes = wall micros
 *   TxFallback  aux = HTM attempts burned before falling back,
 *               bytes = write footprint of the fallback run,
 *               tid = session lane (engine-thread slot + 1)
 */
struct TraceEvent {
    /** Virtual-cycle timestamp (deterministic; see file comment). */
    uint64_t vcycles = 0;
    TraceEventType type = TraceEventType::TxBegin;
    /** AbortCode / CheckKind / Tier / SpanKind, by type. */
    uint8_t code = 0;
    /** PassId or attempt ordinal, by type. */
    uint16_t aux = 0;
    /** Attributed function (IrFunction::funcId; 0 = <main>/unknown). */
    uint32_t funcId = 0;
    /** Bytecode pc: transaction-entry SMP, deopt SMP, loop header. */
    uint32_t pc = 0;
    /** Byte-sized payload (footprint bytes, micros, checks removed). */
    uint64_t bytes = 0;
    /** Ways-sized payload (max ways used, dead ops removed). */
    uint32_t ways = 0;
    /** Exporter lane (request id); 0 = engine-local events. */
    uint32_t tid = 0;

    bool operator==(const TraceEvent &) const = default;
};

/**
 * Receives every transaction-boundary event (TxBegin / TxCommit /
 * TxAbort) as it happens, independently of whether a TraceBuffer is
 * attached or enabled. This is the feed the adaptive planner's
 * controller consumes: unlike the ring buffer — which is sized for
 * post-hoc attribution and drops the newest events once full — a sink
 * sees the complete stream, and it works with tracing disabled
 * entirely. The interface lives here (not in htm/ or nomap/) because
 * trace sits below both in the link graph. Implementations must not
 * re-enter the transaction manager.
 */
class TxTelemetrySink
{
  public:
    virtual ~TxTelemetrySink() = default;

    /** One TxBegin/TxCommit/TxAbort, same payload as the traced form. */
    virtual void onTxEvent(const TraceEvent &event) = 0;
};

/**
 * Deterministic timestamp source. Implemented by the engine's
 * Accounting (virtual cycles charged so far, including pending
 * batched instruction units); the trace layer itself never reads wall
 * clock.
 */
class TraceClock
{
  public:
    virtual ~TraceClock() = default;

    /** Current virtual time, in cycles. */
    virtual uint64_t virtualCycles() const = 0;
};

/** A TraceClock pinned to a constant (tests, detached exporters). */
class FixedTraceClock final : public TraceClock
{
  public:
    explicit FixedTraceClock(uint64_t cycles = 0) : now(cycles) {}
    uint64_t virtualCycles() const override { return now; }
    void set(uint64_t cycles) { now = cycles; }

  private:
    uint64_t now;
};

/**
 * Fixed-capacity event ring. Not internally synchronized: one buffer
 * belongs to one Engine (single-threaded by construction); the
 * service drains it between requests under its own locking.
 */
class TraceBuffer
{
  public:
    /** @param capacity Max events held; 0 = tracing disabled. */
    explicit TraceBuffer(size_t capacity = 0);

    /**
     * The producer-side guard. Inlinable so a disabled buffer costs
     * one load + branch at each (already cold) trace site.
     */
    bool enabled() const { return cap != 0; }

    /**
     * Append @p event if there is room; count a drop otherwise.
     * Events beyond capacity are dropped (keep-oldest policy): the
     * head of a trace carries the attribution story, and keeping it
     * makes truncated traces stable prefixes of full ones.
     */
    void
    emit(const TraceEvent &event)
    {
        if (store.size() < cap) {
            store.push_back(event);
            ++emittedCount;
        } else {
            ++droppedCount;
        }
    }

    /** Events currently held (oldest first). */
    const std::vector<TraceEvent> &events() const { return store; }

    /** Events accepted since construction/clear. */
    uint64_t emitted() const { return emittedCount; }

    /** Events rejected because the buffer was full. */
    uint64_t dropped() const { return droppedCount; }

    size_t capacity() const { return cap; }

    /** Forget all events and zero the emit/drop counters. */
    void clear();

    /** Move the held events out (counters keep their totals). */
    std::vector<TraceEvent> drain();

  private:
    size_t cap;
    std::vector<TraceEvent> store;
    uint64_t emittedCount = 0;
    uint64_t droppedCount = 0;
};

/**
 * Resolves a funcId to a human-readable name for the exporters.
 * Return "" to fall back to "fn#<id>".
 */
using TraceNameResolver = std::function<std::string(uint32_t funcId)>;

/**
 * Render @p events as Chrome trace_event JSON (array form), loadable
 * in Perfetto / chrome://tracing. Deterministic: depends only on the
 * event stream and @p resolver.
 */
std::string chromeTraceJson(const std::vector<TraceEvent> &events,
                            const TraceNameResolver &resolver = {});

/**
 * Render the top-@p top_n abort sites as a text report: one line per
 * (function, entry pc, abort code) site, ordered by abort count
 * descending (ties: function id, pc, code ascending — total order, so
 * the report is deterministic).
 */
std::string
abortAttributionReport(const std::vector<TraceEvent> &events,
                       size_t top_n = 10,
                       const TraceNameResolver &resolver = {});

/**
 * One-line-per-event text dump (stable field order), the form the
 * golden trace test pins.
 */
std::string traceText(const std::vector<TraceEvent> &events);

} // namespace nomap

#endif // NOMAP_TRACE_TRACE_H
