#include "vm/builtins.h"

#include <cmath>
#include <unordered_map>

#include "support/logging.h"

namespace nomap {

bool
resolveBuiltin(const std::string &object, const std::string &member,
               BuiltinId *id_out)
{
    static const std::unordered_map<std::string, BuiltinId> math = {
        {"abs", BuiltinId::MathAbs},     {"floor", BuiltinId::MathFloor},
        {"ceil", BuiltinId::MathCeil},   {"sqrt", BuiltinId::MathSqrt},
        {"sin", BuiltinId::MathSin},     {"cos", BuiltinId::MathCos},
        {"tan", BuiltinId::MathTan},     {"atan", BuiltinId::MathAtan},
        {"atan2", BuiltinId::MathAtan2}, {"exp", BuiltinId::MathExp},
        {"log", BuiltinId::MathLog},     {"pow", BuiltinId::MathPow},
        {"min", BuiltinId::MathMin},     {"max", BuiltinId::MathMax},
        {"random", BuiltinId::MathRandom},
        {"round", BuiltinId::MathRound},
    };
    if (object == "Math") {
        auto it = math.find(member);
        if (it == math.end())
            return false;
        *id_out = it->second;
        return true;
    }
    if (object == "String" && member == "fromCharCode") {
        *id_out = BuiltinId::StringFromCharCode;
        return true;
    }
    return false;
}

bool
resolveGlobalBuiltin(const std::string &name, BuiltinId *id_out)
{
    if (name == "print") {
        *id_out = BuiltinId::Print;
        return true;
    }
    if (name == "parseInt") {
        *id_out = BuiltinId::ParseInt;
        return true;
    }
    if (name == "parseFloat") {
        *id_out = BuiltinId::ParseFloat;
        return true;
    }
    if (name == "isNaN") {
        *id_out = BuiltinId::IsNaN;
        return true;
    }
    return false;
}

const char *
builtinName(BuiltinId id)
{
    switch (id) {
      case BuiltinId::MathAbs: return "Math.abs";
      case BuiltinId::MathFloor: return "Math.floor";
      case BuiltinId::MathCeil: return "Math.ceil";
      case BuiltinId::MathSqrt: return "Math.sqrt";
      case BuiltinId::MathSin: return "Math.sin";
      case BuiltinId::MathCos: return "Math.cos";
      case BuiltinId::MathTan: return "Math.tan";
      case BuiltinId::MathAtan: return "Math.atan";
      case BuiltinId::MathAtan2: return "Math.atan2";
      case BuiltinId::MathExp: return "Math.exp";
      case BuiltinId::MathLog: return "Math.log";
      case BuiltinId::MathPow: return "Math.pow";
      case BuiltinId::MathMin: return "Math.min";
      case BuiltinId::MathMax: return "Math.max";
      case BuiltinId::MathRandom: return "Math.random";
      case BuiltinId::MathRound: return "Math.round";
      case BuiltinId::StringFromCharCode: return "String.fromCharCode";
      case BuiltinId::Print: return "print";
      case BuiltinId::ParseInt: return "parseInt";
      case BuiltinId::ParseFloat: return "parseFloat";
      case BuiltinId::IsNaN: return "isNaN";
      case BuiltinId::NumBuiltins: break;
    }
    return "?";
}

Builtins::Builtins(Runtime &runtime, uint64_t rng_seed)
    : rt(runtime), rngState(rng_seed)
{
}

Value
Builtins::call(BuiltinId id, const Value *args, uint32_t nargs)
{
    auto num = [&](uint32_t i) {
        return i < nargs ? rt.toNumber(args[i]) : std::nan("");
    };
    switch (id) {
      case BuiltinId::MathAbs:
        return Value::number(std::fabs(num(0)));
      case BuiltinId::MathFloor:
        return Value::number(std::floor(num(0)));
      case BuiltinId::MathCeil:
        return Value::number(std::ceil(num(0)));
      case BuiltinId::MathSqrt:
        return Value::boxDouble(std::sqrt(num(0)));
      case BuiltinId::MathSin:
        return Value::boxDouble(std::sin(num(0)));
      case BuiltinId::MathCos:
        return Value::boxDouble(std::cos(num(0)));
      case BuiltinId::MathTan:
        return Value::boxDouble(std::tan(num(0)));
      case BuiltinId::MathAtan:
        return Value::boxDouble(std::atan(num(0)));
      case BuiltinId::MathAtan2:
        return Value::boxDouble(std::atan2(num(0), num(1)));
      case BuiltinId::MathExp:
        return Value::boxDouble(std::exp(num(0)));
      case BuiltinId::MathLog:
        return Value::boxDouble(std::log(num(0)));
      case BuiltinId::MathPow:
        return Value::number(std::pow(num(0), num(1)));
      case BuiltinId::MathMin: {
        double best = std::numeric_limits<double>::infinity();
        for (uint32_t i = 0; i < nargs; ++i)
            best = std::fmin(best, rt.toNumber(args[i]));
        return Value::number(best);
      }
      case BuiltinId::MathMax: {
        double best = -std::numeric_limits<double>::infinity();
        for (uint32_t i = 0; i < nargs; ++i)
            best = std::fmax(best, rt.toNumber(args[i]));
        return Value::number(best);
      }
      case BuiltinId::MathRandom:
        return Value::boxDouble(rngState.nextDouble());
      case BuiltinId::MathRound:
        return Value::number(std::floor(num(0) + 0.5));
      case BuiltinId::StringFromCharCode: {
        std::string s;
        for (uint32_t i = 0; i < nargs; ++i) {
            s.push_back(static_cast<char>(
                static_cast<int>(rt.toNumber(args[i])) & 0xff));
        }
        return Value::string(rt.heap().stringTable().intern(s));
      }
      case BuiltinId::Print: {
        std::string line;
        for (uint32_t i = 0; i < nargs; ++i) {
            if (i)
                line += " ";
            line += rt.toString(args[i]);
        }
        line += "\n";
        if (printSink)
            printSink(line);
        else
            printed += line;
        return Value::undefined();
      }
      case BuiltinId::ParseInt: {
        if (nargs == 0)
            return Value::boxDouble(std::nan(""));
        std::string s = rt.toString(args[0]);
        int base = nargs > 1 ? static_cast<int>(rt.toNumber(args[1])) : 10;
        char *end = nullptr;
        long long v = std::strtoll(s.c_str(), &end, base);
        if (end == s.c_str())
            return Value::boxDouble(std::nan(""));
        return Value::number(static_cast<double>(v));
      }
      case BuiltinId::ParseFloat: {
        if (nargs == 0)
            return Value::boxDouble(std::nan(""));
        std::string s = rt.toString(args[0]);
        char *end = nullptr;
        double v = std::strtod(s.c_str(), &end);
        if (end == s.c_str())
            return Value::boxDouble(std::nan(""));
        return Value::number(v);
      }
      case BuiltinId::IsNaN: {
        double d = num(0);
        return Value::boolean(d != d);
      }
      case BuiltinId::NumBuiltins:
        break;
    }
    panic("bad builtin id");
}

Value
Builtins::callMethod(Value receiver, uint32_t name_id, const Value *args,
                     uint32_t nargs)
{
    const std::string &name = rt.heap().stringTable().get(name_id);
    if (receiver.isString())
        return stringMethod(receiver, name, args, nargs);
    if (receiver.isArray())
        return arrayMethod(receiver, name, args, nargs);
    return Value::undefined();
}

Value
Builtins::stringMethod(Value receiver, const std::string &name,
                       const Value *args, uint32_t nargs)
{
    const std::string &s = rt.heap().stringTable().get(receiver.payload());
    StringTable &st = rt.heap().stringTable();

    if (name == "charCodeAt") {
        int64_t i =
            nargs ? static_cast<int64_t>(rt.toNumber(args[0])) : 0;
        if (i < 0 || i >= static_cast<int64_t>(s.size()))
            return Value::boxDouble(std::nan(""));
        return Value::int32(static_cast<unsigned char>(s[i]));
    }
    if (name == "charAt") {
        int64_t i =
            nargs ? static_cast<int64_t>(rt.toNumber(args[0])) : 0;
        if (i < 0 || i >= static_cast<int64_t>(s.size()))
            return Value::string(st.intern(""));
        return Value::string(st.intern(std::string(1, s[i])));
    }
    if (name == "substring") {
        int64_t a = nargs > 0
                        ? static_cast<int64_t>(rt.toNumber(args[0]))
                        : 0;
        int64_t b = nargs > 1
                        ? static_cast<int64_t>(rt.toNumber(args[1]))
                        : static_cast<int64_t>(s.size());
        a = std::max<int64_t>(0,
                std::min<int64_t>(a, static_cast<int64_t>(s.size())));
        b = std::max<int64_t>(0,
                std::min<int64_t>(b, static_cast<int64_t>(s.size())));
        if (a > b)
            std::swap(a, b);
        return Value::string(st.intern(s.substr(a, b - a)));
    }
    if (name == "indexOf") {
        if (!nargs || !args[0].isString())
            return Value::int32(-1);
        const std::string &needle = st.get(args[0].payload());
        size_t pos = s.find(needle);
        return Value::int32(pos == std::string::npos
                                ? -1
                                : static_cast<int32_t>(pos));
    }
    if (name == "toUpperCase" || name == "toLowerCase") {
        std::string out = s;
        for (char &c : out) {
            c = name[2] == 'U'
                    ? static_cast<char>(
                          std::toupper(static_cast<unsigned char>(c)))
                    : static_cast<char>(
                          std::tolower(static_cast<unsigned char>(c)));
        }
        return Value::string(st.intern(out));
    }
    if (name == "split") {
        Value arr_v = rt.heap().allocArray(0);
        uint32_t arr_id = arr_v.payload();
        std::string sep = nargs ? rt.toString(args[0]) : "";
        if (sep.empty()) {
            for (char c : s) {
                rt.heap().arrayPush(
                    arr_id, Value::string(st.intern(std::string(1, c))));
            }
        } else {
            size_t start = 0;
            for (;;) {
                size_t pos = s.find(sep, start);
                if (pos == std::string::npos) {
                    rt.heap().arrayPush(
                        arr_id,
                        Value::string(st.intern(s.substr(start))));
                    break;
                }
                rt.heap().arrayPush(
                    arr_id, Value::string(
                                st.intern(s.substr(start, pos - start))));
                start = pos + sep.size();
            }
        }
        return arr_v;
    }
    return Value::undefined();
}

Value
Builtins::arrayMethod(Value receiver, const std::string &name,
                      const Value *args, uint32_t nargs)
{
    uint32_t arr_id = receiver.payload();
    if (name == "push") {
        uint32_t len = 0;
        for (uint32_t i = 0; i < nargs; ++i)
            len = rt.heap().arrayPush(arr_id, args[i]);
        return Value::int32(static_cast<int32_t>(len));
    }
    if (name == "pop")
        return rt.heap().arrayPop(arr_id);
    if (name == "join") {
        std::string sep = nargs ? rt.toString(args[0]) : ",";
        const JsArray &arr = rt.heap().array(arr_id);
        std::string out;
        for (uint32_t i = 0; i < arr.length(); ++i) {
            if (i)
                out += sep;
            Value elem = arr.storage[i];
            if (!elem.isUndefined() && !elem.isNull())
                out += rt.toString(elem);
        }
        return Value::string(rt.heap().stringTable().intern(out));
    }
    if (name == "indexOf") {
        const JsArray &arr = rt.heap().array(arr_id);
        if (!nargs)
            return Value::int32(-1);
        for (uint32_t i = 0; i < arr.length(); ++i) {
            if (rt.strictEquals(arr.storage[i], args[0]))
                return Value::int32(static_cast<int32_t>(i));
        }
        return Value::int32(-1);
    }
    return Value::undefined();
}

} // namespace nomap
