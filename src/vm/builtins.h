#ifndef NOMAP_VM_BUILTINS_H
#define NOMAP_VM_BUILTINS_H

/**
 * @file
 * Builtin (native) functions and methods.
 *
 * Free-standing builtins (Math.*, String.fromCharCode, print, ...) are
 * resolved to BuiltinId at bytecode-compile time and invoked through
 * Builtins::call. Methods on receivers (str.charCodeAt, arr.push, ...)
 * are dispatched at run time on the receiver's kind through
 * Builtins::callMethod.
 *
 * Math.random() is backed by the deterministic per-engine RNG so runs
 * are reproducible.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/random.h"
#include "vm/runtime.h"

namespace nomap {

/** Identifiers for compile-time-resolved builtins. */
enum class BuiltinId : uint8_t {
    MathAbs, MathFloor, MathCeil, MathSqrt, MathSin, MathCos, MathTan,
    MathAtan, MathAtan2, MathExp, MathLog, MathPow, MathMin, MathMax,
    MathRandom, MathRound,
    StringFromCharCode,
    Print,
    ParseInt, ParseFloat, IsNaN,
    NumBuiltins,
};

/**
 * Resolve "Object.member" (e.g. Math.sqrt) to a builtin id.
 * @return true and sets @p id_out when recognized.
 */
bool resolveBuiltin(const std::string &object, const std::string &member,
                    BuiltinId *id_out);

/** Resolve a bare global function name (print, parseInt, ...). */
bool resolveGlobalBuiltin(const std::string &name, BuiltinId *id_out);

/** Printable builtin name (diagnostics). */
const char *builtinName(BuiltinId id);

/** Executes builtins and builtin methods. */
class Builtins
{
  public:
    Builtins(Runtime &runtime, uint64_t rng_seed = 0x5eed);

    /** Invoke a compile-time-resolved builtin. */
    Value call(BuiltinId id, const Value *args, uint32_t nargs);

    /**
     * Invoke a method on @p receiver by interned name.
     * Unknown methods return undefined (sloppy).
     */
    Value callMethod(Value receiver, uint32_t name_id, const Value *args,
                     uint32_t nargs);

    /** Where print() output goes; default accumulates in a buffer. */
    void setPrintSink(std::function<void(const std::string &)> sink)
    {
        printSink = std::move(sink);
    }

    /** Accumulated print() output when no sink is installed. */
    const std::string &printedOutput() const { return printed; }

    /** Drop accumulated print() output (per-request stats reset). */
    void clearPrinted() { printed.clear(); }

    Xorshift64Star &rng() { return rngState; }

  private:
    Value stringMethod(Value receiver, const std::string &name,
                       const Value *args, uint32_t nargs);
    Value arrayMethod(Value receiver, const std::string &name,
                      const Value *args, uint32_t nargs);

    Runtime &rt;
    Xorshift64Star rngState;
    std::function<void(const std::string &)> printSink;
    std::string printed;
};

} // namespace nomap

#endif // NOMAP_VM_BUILTINS_H
