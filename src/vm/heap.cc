#include "vm/heap.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "support/logging.h"

namespace nomap {

Heap::Heap(ShapeTable &shapes_, StringTable &strings_)
    : shapes(shapes_), strings(strings_)
{
    globalsBase = allocAddr(8ull * 4096); // Room for 4096 globals.
}

Addr
Heap::allocAddr(uint64_t bytes)
{
    // Line-align every allocation so distinct allocations never share
    // a cache line (keeps footprint accounting conservative and easy
    // to reason about).
    Addr base = nextAddr;
    uint64_t rounded = (bytes + kLineSize - 1) & ~uint64_t(kLineSize - 1);
    nextAddr += rounded ? rounded : kLineSize;
    return base;
}

Value
Heap::allocObject()
{
    auto obj = std::make_unique<JsObject>();
    obj->shape = shapes.rootShape();
    obj->baseAddr = allocAddr(8ull * 16); // Room for 16 inline slots.
    uint32_t id = static_cast<uint32_t>(objects.size());
    objects.push_back(std::move(obj));
    ++statsData.objectsAllocated;
    return Value::object(id);
}

Value
Heap::allocArray(uint32_t length)
{
    auto arr = std::make_unique<JsArray>();
    arr->storage.assign(length, Value::undefined());
    arr->baseAddr = allocAddr(8ull * (length ? length : 4));
    uint32_t id = static_cast<uint32_t>(arrays.size());
    arrays.push_back(std::move(arr));
    ++statsData.arraysAllocated;
    return Value::array(id);
}

void
Heap::recordTxWrite(Addr addr)
{
    if (addr == 0)
        return;
    // Every tracked write lands in the open region's footprint too:
    // builtin-driven mutations (push/pop, property adds) reach the
    // heap without passing through ExecEnv::memAccess, so this funnel
    // is what makes the region write set complete.
    if (sessionFp)
        sessionFp->noteWrite(addr);
    if (!inTx())
        return;
    if (!htm->recordWrite(addr)) {
        // Capacity abort: memory is already rolled back (recordWrite
        // invoked our txRollback through the client interface).
        throw TxAbortUnwind{AbortCode::Capacity};
    }
}

// ---- Undo logging -------------------------------------------------------

void
Heap::pushUndo(const UndoEntry &e)
{
    // undoEntriesLogged counts only per-tx entries: it predates the
    // region log, and keeping it that way leaves every existing
    // differential invariant (and the K=1 session-vs-isolate
    // comparison) untouched.
    if (logging) {
        undoLog.push_back(e);
        ++statsData.undoEntriesLogged;
    }
    if (sessionLogging)
        sessionLog.push_back(e);
}

void
Heap::logObjectSlot(uint32_t obj_id, uint32_t slot)
{
    if (!logging && !sessionLogging)
        return;
    UndoEntry e;
    e.kind = UndoKind::ObjectSlot;
    e.id = obj_id;
    e.index = slot;
    e.oldValue = object(obj_id).slots[slot];
    pushUndo(e);
}

void
Heap::logArrayElem(uint32_t arr_id, uint32_t index)
{
    if (!logging && !sessionLogging)
        return;
    UndoEntry e;
    e.kind = UndoKind::ArrayElem;
    e.id = arr_id;
    e.index = index;
    e.oldValue = array(arr_id).storage[index];
    pushUndo(e);
}

void
Heap::logArrayResize(uint32_t arr_id)
{
    if (!logging && !sessionLogging)
        return;
    const JsArray &arr = array(arr_id);
    UndoEntry e;
    e.kind = UndoKind::ArrayResize;
    e.id = arr_id;
    e.oldLength = arr.length();
    e.oldHasHoles = arr.hasHoles;
    e.oldBaseAddr = arr.baseAddr;
    pushUndo(e);
}

void
Heap::logGlobal(uint32_t index)
{
    if (!logging && !sessionLogging)
        return;
    UndoEntry e;
    e.kind = UndoKind::GlobalVar;
    e.id = index;
    e.oldValue = globals[index];
    pushUndo(e);
}

void
Heap::txCheckpoint()
{
    NOMAP_ASSERT(!logging);
    undoLog.clear();
    logging = true;
}

void
Heap::applyUndo(const UndoEntry &e)
{
    switch (e.kind) {
      case UndoKind::ObjectSlot:
        object(e.id).slots[e.index] = e.oldValue;
        break;
      case UndoKind::ObjectShape: {
        JsObject &obj = object(e.id);
        obj.shape = e.oldShape;
        obj.slots.resize(shapes.slotCount(e.oldShape));
        break;
      }
      case UndoKind::ArrayElem:
        array(e.id).storage[e.index] = e.oldValue;
        break;
      case UndoKind::ArrayResize: {
        JsArray &arr = array(e.id);
        arr.storage.resize(e.oldLength);
        arr.hasHoles = e.oldHasHoles;
        arr.baseAddr = e.oldBaseAddr;
        break;
      }
      case UndoKind::GlobalVar:
        globals[e.id] = e.oldValue;
        break;
    }
}

void
Heap::txRollback()
{
    NOMAP_ASSERT(logging);
    for (auto it = undoLog.rbegin(); it != undoLog.rend(); ++it)
        applyUndo(*it);
    undoLog.clear();
    logging = false;
    ++statsData.rollbacks;
}

void
Heap::txDiscardLog()
{
    NOMAP_ASSERT(logging);
    undoLog.clear();
    logging = false;
}

// ---- Shared-heap regions ------------------------------------------------

void
Heap::sessionBegin(RegionFootprint *fp)
{
    NOMAP_ASSERT(!sessionLogging);
    sessionLog.clear();
    sessionLogging = true;
    sessionFp = fp;
}

void
Heap::sessionCommit()
{
    NOMAP_ASSERT(sessionLogging);
    NOMAP_ASSERT(!logging);
    sessionLog.clear();
    sessionLogging = false;
    sessionFp = nullptr;
}

void
Heap::sessionAbort(const HeapMark &m)
{
    NOMAP_ASSERT(sessionLogging);
    NOMAP_ASSERT(!logging);
    // Reverse-replay the region log. Entries for objects/arrays/
    // globals the region itself allocated are applied too (they still
    // exist at this point); the truncation below then discards them
    // wholesale. HTM transactions that aborted mid-region already
    // restored their locations through txRollback, so replaying their
    // region-log entries is idempotent.
    for (auto it = sessionLog.rbegin(); it != sessionLog.rend(); ++it)
        applyUndo(*it);
    // Unwind the allocators so a retry replays the exact allocation
    // sequence — same ids, same abstract addresses, same counters.
    // The shape and string tables stay warm on purpose: transitions
    // and interning are deterministic cache-style lookups, so a retry
    // re-derives identical ids from the committed state.
    objects.resize(m.objects);
    arrays.resize(m.arrays);
    globals.resize(m.globals);
    for (auto it = globalNames.begin(); it != globalNames.end();) {
        if (it->second >= m.globals)
            it = globalNames.erase(it);
        else
            ++it;
    }
    nextAddr = m.nextAddr;
    statsData.objectsAllocated = m.objectsAllocated;
    statsData.arraysAllocated = m.arraysAllocated;
    statsData.undoEntriesLogged = m.undoEntriesLogged;
    sessionLog.clear();
    sessionLogging = false;
    sessionFp = nullptr;
    ++statsData.regionRollbacks;
}

// ---- Object properties ----------------------------------------------------

Value
Heap::getProperty(uint32_t obj_id, uint32_t name_id, Addr *addr_out) const
{
    const JsObject &obj = object(obj_id);
    int32_t slot = shapes.lookup(obj.shape, name_id);
    if (slot < 0) {
        if (addr_out)
            *addr_out = 0;
        return Value::undefined();
    }
    if (addr_out)
        *addr_out = slotAddr(obj_id, static_cast<uint32_t>(slot));
    return obj.slots[static_cast<uint32_t>(slot)];
}

void
Heap::setProperty(uint32_t obj_id, uint32_t name_id, Value v,
                  Addr *addr_out)
{
    JsObject &obj = object(obj_id);
    int32_t slot = shapes.lookup(obj.shape, name_id);
    if (slot < 0) {
        // Shape transition: add the property.
        if (logging || sessionLogging) {
            UndoEntry e;
            e.kind = UndoKind::ObjectShape;
            e.id = obj_id;
            e.oldShape = obj.shape;
            pushUndo(e);
        }
        uint32_t new_slot = 0;
        obj.shape = shapes.transition(obj.shape, name_id, &new_slot);
        obj.slots.resize(shapes.slotCount(obj.shape), Value::undefined());
        obj.slots[new_slot] = v;
        recordTxWrite(slotAddr(obj_id, new_slot));
        if (addr_out)
            *addr_out = slotAddr(obj_id, new_slot);
        return;
    }
    logObjectSlot(obj_id, static_cast<uint32_t>(slot));
    obj.slots[static_cast<uint32_t>(slot)] = v;
    recordTxWrite(slotAddr(obj_id, static_cast<uint32_t>(slot)));
    if (addr_out)
        *addr_out = slotAddr(obj_id, static_cast<uint32_t>(slot));
}

void
Heap::setSlotTracked(uint32_t obj_id, uint32_t slot, Value v)
{
    logObjectSlot(obj_id, slot);
    object(obj_id).slots[slot] = v;
    recordTxWrite(slotAddr(obj_id, slot));
}

// ---- Array elements --------------------------------------------------------

Value
Heap::getElement(uint32_t arr_id, int64_t index, Addr *addr_out) const
{
    const JsArray &arr = array(arr_id);
    if (index < 0 || index >= static_cast<int64_t>(arr.length())) {
        if (addr_out)
            *addr_out = 0;
        return Value::undefined();
    }
    if (addr_out)
        *addr_out = elementAddr(arr_id, static_cast<uint32_t>(index));
    return arr.storage[static_cast<size_t>(index)];
}

void
Heap::setElement(uint32_t arr_id, int64_t index, Value v, Addr *addr_out)
{
    NOMAP_ASSERT(index >= 0);
    JsArray &arr = array(arr_id);
    if (index >= static_cast<int64_t>(arr.length())) {
        logArrayResize(arr_id);
        bool creates_hole = index > static_cast<int64_t>(arr.length());
        arr.storage.resize(static_cast<size_t>(index) + 1,
                           Value::undefined());
        if (creates_hole)
            arr.hasHoles = true;
        // Elongation reallocates the backing store: fresh addresses.
        arr.baseAddr = allocAddr(8ull * arr.storage.size());
    } else {
        logArrayElem(arr_id, static_cast<uint32_t>(index));
    }
    arr.storage[static_cast<size_t>(index)] = v;
    recordTxWrite(elementAddr(arr_id, static_cast<uint32_t>(index)));
    if (addr_out)
        *addr_out = elementAddr(arr_id, static_cast<uint32_t>(index));
}

void
Heap::setElementFastTracked(uint32_t arr_id, uint32_t index, Value v)
{
    logArrayElem(arr_id, index);
    array(arr_id).storage[index] = v;
    recordTxWrite(elementAddr(arr_id, index));
}

uint32_t
Heap::arrayPush(uint32_t arr_id, Value v)
{
    JsArray &arr = array(arr_id);
    logArrayResize(arr_id);
    arr.storage.push_back(v);
    recordTxWrite(elementAddr(arr_id, arr.length() - 1));
    return arr.length();
}

Value
Heap::arrayPop(uint32_t arr_id)
{
    JsArray &arr = array(arr_id);
    if (arr.storage.empty())
        return Value::undefined();
    // Log the element before the resize: rollback replays in reverse,
    // so the resize entry regrows the array first and the element
    // entry then restores the popped value.
    logArrayElem(arr_id, arr.length() - 1);
    logArrayResize(arr_id);
    Value v = arr.storage.back();
    arr.storage.pop_back();
    recordTxWrite(arr.baseAddr + 8ull * arr.length());
    return v;
}

// ---- Globals ----------------------------------------------------------------

uint32_t
Heap::globalIndex(const std::string &name)
{
    auto it = globalNames.find(name);
    if (it != globalNames.end())
        return it->second;
    uint32_t idx = static_cast<uint32_t>(globals.size());
    globals.push_back(Value::undefined());
    globalNames.emplace(name, idx);
    return idx;
}

int32_t
Heap::findGlobal(const std::string &name) const
{
    auto it = globalNames.find(name);
    return it == globalNames.end() ? -1
                                   : static_cast<int32_t>(it->second);
}

void
Heap::setGlobalTracked(uint32_t index, Value v)
{
    logGlobal(index);
    globals[index] = v;
    recordTxWrite(globalAddr(index));
}

// ---- Display -----------------------------------------------------------------

std::string
Heap::valueToDisplayString(Value v) const
{
    switch (v.kind()) {
      case ValueKind::Int32:
        return std::to_string(v.asInt32());
      case ValueKind::Double: {
        double d = v.asBoxedDouble();
        if (d != d)
            return "NaN";
        if (std::isinf(d))
            return d > 0 ? "Infinity" : "-Infinity";
        // JS prints integral values without an exponent up to 1e21.
        if (d == std::floor(d) && std::fabs(d) < 1e21) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.0f", d);
            return buf;
        }
        // Shortest round-trip representation.
        for (int prec = 1; prec <= 17; ++prec) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
            if (std::strtod(buf, nullptr) == d)
                return buf;
        }
        return "0";
      }
      case ValueKind::Boolean:
        return v.asBoolean() ? "true" : "false";
      case ValueKind::Undefined:
        return "undefined";
      case ValueKind::Null:
        return "null";
      case ValueKind::String:
        return strings.get(v.payload());
      case ValueKind::Object:
        return "[object Object]";
      case ValueKind::Array: {
        const JsArray &arr = array(v.payload());
        std::string out;
        for (uint32_t i = 0; i < arr.length(); ++i) {
            if (i)
                out += ",";
            Value elem = arr.storage[i];
            if (!elem.isUndefined())
                out += valueToDisplayString(elem);
        }
        return out;
      }
      case ValueKind::Function:
        return "[function]";
      case ValueKind::NativeFunction:
        return "[native function]";
    }
    return "?";
}

} // namespace nomap
