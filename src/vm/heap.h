#ifndef NOMAP_VM_HEAP_H
#define NOMAP_VM_HEAP_H

/**
 * @file
 * The VM heap: objects, arrays, and globals.
 *
 * Every allocation receives an *abstract address* from a bump
 * allocator so the cache and HTM simulators can reason about line
 * granularity and set conflicts. Array storage gets a fresh address
 * region when it is reallocated by elongation, mirroring real
 * allocator behaviour.
 *
 * The heap implements RollbackClient: while a hardware transaction is
 * open it records a logical undo entry for every mutation, and
 * txRollback() restores the pre-transaction state exactly. This is
 * what makes a NoMap transactional abort safe: the Baseline tier
 * re-executes the aborted region against unmodified memory.
 *
 * No garbage collector is provided (benchmark programs run in a fresh
 * heap per Engine; JSC's GC is orthogonal to the SMP mechanism under
 * study).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "htm/region.h"
#include "htm/transaction.h"
#include "memsim/addr.h"
#include "support/logging.h"
#include "vm/shape.h"
#include "vm/string_table.h"
#include "vm/value.h"

namespace nomap {

/** An ordinary JavaScript object: shape id + property slots. */
struct JsObject {
    uint32_t shape = 0;
    std::vector<Value> slots;
    Addr baseAddr = 0; ///< Address of the slot storage.
};

/**
 * A JavaScript array. `storage` is contiguous; reads past `length`
 * yield undefined, writes past `length` elongate (possibly creating
 * holes, which are stored as undefined and flagged).
 */
struct JsArray {
    std::vector<Value> storage;
    bool hasHoles = false;
    Addr baseAddr = 0; ///< Address of element 0 (moves on realloc).

    uint32_t length() const
    {
        return static_cast<uint32_t>(storage.size());
    }
};

/** Heap statistics (allocation counts, undo-log high-water mark). */
struct HeapStats {
    uint64_t objectsAllocated = 0;
    uint64_t arraysAllocated = 0;
    uint64_t undoEntriesLogged = 0;
    uint64_t rollbacks = 0;
    /** Shared-heap region aborts rolled back (stm/shared_heap.cc). */
    uint64_t regionRollbacks = 0;
};

/**
 * Snapshot of the heap's allocator state at a shared-heap region
 * begin (Heap::mark()). Region rollback restores mutations through
 * the region undo log AND truncates everything the aborted attempt
 * allocated — ids, addresses, globals — so a retry replays the exact
 * allocation sequence and lands on the same abstract addresses
 * (bit-identical cache behavior; the storm differential pins this).
 */
struct HeapMark {
    size_t objects = 0;
    size_t arrays = 0;
    size_t globals = 0;
    Addr nextAddr = 0;
    uint64_t objectsAllocated = 0;
    uint64_t arraysAllocated = 0;
    uint64_t undoEntriesLogged = 0;
};

/**
 * The heap. Also owns the global-variable table, since globals are
 * memory that transactions must roll back too.
 */
class Heap : public RollbackClient
{
  public:
    /**
     * @param shapes Shape table shared with the compiler tiers.
     * @param strings String table for property names.
     */
    Heap(ShapeTable &shapes, StringTable &strings);

    // ---- Allocation ---------------------------------------------------
    /** Allocate an empty object; returns its Value. */
    Value allocObject();

    /** Allocate an array of @p length undefined elements. */
    Value allocArray(uint32_t length = 0);

    // Defined in the header: these sit under every executor memory
    // op (tens of millions of calls per benchmark pass), so they must
    // inline into the dispatch loops.
    JsObject &
    object(uint32_t id)
    {
        NOMAP_ASSERT(id < objects.size());
        return *objects[id];
    }

    const JsObject &
    object(uint32_t id) const
    {
        NOMAP_ASSERT(id < objects.size());
        return *objects[id];
    }

    JsArray &
    array(uint32_t id)
    {
        NOMAP_ASSERT(id < arrays.size());
        return *arrays[id];
    }

    const JsArray &
    array(uint32_t id) const
    {
        NOMAP_ASSERT(id < arrays.size());
        return *arrays[id];
    }

    // ---- Object properties (all transactional-aware) ------------------
    /**
     * Read property @p name_id. Returns undefined if absent.
     * @param addr_out If non-null, receives the slot address touched
     *        (0 when the property is absent).
     */
    Value getProperty(uint32_t obj_id, uint32_t name_id,
                      Addr *addr_out = nullptr) const;

    /**
     * Write property @p name_id, adding it (with a shape transition)
     * if absent. @param addr_out as in getProperty.
     */
    void setProperty(uint32_t obj_id, uint32_t name_id, Value v,
                     Addr *addr_out = nullptr);

    /** Direct slot read (FTL fast path after a shape check). */
    Value
    getSlot(uint32_t obj_id, uint32_t slot) const
    {
        return object(obj_id).slots[slot];
    }

    /**
     * Direct slot write (FTL fast path after a shape check). Outside
     * a transaction neither the undo log nor the write set needs to
     * see the store, so it inlines to a plain assignment; the tracked
     * path (log + store + recordTxWrite, original order) is out of
     * line.
     */
    void
    setSlot(uint32_t obj_id, uint32_t slot, Value v)
    {
        if (logging || sessionLogging || inTx()) {
            setSlotTracked(obj_id, slot, v);
            return;
        }
        object(obj_id).slots[slot] = v;
    }

    /** Address of an object slot (for the cache model). */
    Addr
    slotAddr(uint32_t obj_id, uint32_t slot) const
    {
        return object(obj_id).baseAddr + 8ull * slot;
    }

    // ---- Array elements ------------------------------------------------
    /**
     * Read element @p index with full JS semantics: out-of-bounds and
     * holes yield undefined. Never fails.
     */
    Value getElement(uint32_t arr_id, int64_t index,
                     Addr *addr_out = nullptr) const;

    /**
     * Write element @p index, elongating the array (creating holes)
     * when index >= length.
     */
    void setElement(uint32_t arr_id, int64_t index, Value v,
                    Addr *addr_out = nullptr);

    /** In-bounds fast-path read (FTL after a bounds check). */
    Value
    getElementFast(uint32_t arr_id, uint32_t index) const
    {
        return array(arr_id).storage[index];
    }

    /** In-bounds fast-path write (FTL after a bounds check); inline
     *  non-transactional store as in setSlot. */
    void
    setElementFast(uint32_t arr_id, uint32_t index, Value v)
    {
        if (logging || sessionLogging || inTx()) {
            setElementFastTracked(arr_id, index, v);
            return;
        }
        array(arr_id).storage[index] = v;
    }

    /** Address of array element (for the cache model). */
    Addr
    elementAddr(uint32_t arr_id, uint32_t index) const
    {
        return array(arr_id).baseAddr + 8ull * index;
    }

    /** array.push(v): append, returns new length. */
    uint32_t arrayPush(uint32_t arr_id, Value v);

    /** array.pop(): remove and return last element (undefined if empty). */
    Value arrayPop(uint32_t arr_id);

    // ---- Globals --------------------------------------------------------
    /** Index of global @p name (creating it, initially undefined). */
    uint32_t globalIndex(const std::string &name);

    /** Number of globals defined so far. */
    uint32_t globalCount() const
    {
        return static_cast<uint32_t>(globals.size());
    }

    Value
    getGlobal(uint32_t index) const
    {
        NOMAP_ASSERT(index < globals.size());
        return globals[index];
    }

    void
    setGlobal(uint32_t index, Value v)
    {
        NOMAP_ASSERT(index < globals.size());
        if (logging || sessionLogging || inTx()) {
            setGlobalTracked(index, v);
            return;
        }
        globals[index] = v;
    }

    Addr
    globalAddr(uint32_t index) const
    {
        return globalsBase + 8ull * index;
    }

    /** Look up a global index without creating it; -1 if absent. */
    int32_t findGlobal(const std::string &name) const;

    /**
     * Name of global @p index ("" if out of range). Linear scan over
     * the name map: meant for snapshot/capture paths (program cache),
     * not execution.
     */
    std::string
    globalName(uint32_t index) const
    {
        for (const auto &entry : globalNames) {
            if (entry.second == index)
                return entry.first;
        }
        return std::string();
    }

    // ---- RollbackClient -------------------------------------------------
    void txCheckpoint() override;
    void txRollback() override;
    void txDiscardLog() override;

    /** Attach the HTM manager so writes inside transactions log undo. */
    void setTransactionManager(TransactionManager *tm) { htm = tm; }

    // ---- Shared-heap regions (stm/shared_heap.cc) -----------------------
    // A region is one whole guest run executed against this heap by a
    // SharedHeapSession. While a region is open the heap keeps a
    // second, region-scoped undo log (independent of the per-tx log
    // the HTM manager drives) and reports every tracked write to the
    // region's footprint; sessionAbort() restores the exact pre-region
    // state, including allocator ids/addresses and globals, so a retry
    // is bit-identical to a first run from the committed state.

    /** Snapshot allocator state for a possible sessionAbort(). */
    HeapMark
    mark() const
    {
        HeapMark m;
        m.objects = objects.size();
        m.arrays = arrays.size();
        m.globals = globals.size();
        m.nextAddr = nextAddr;
        m.objectsAllocated = statsData.objectsAllocated;
        m.arraysAllocated = statsData.arraysAllocated;
        m.undoEntriesLogged = statsData.undoEntriesLogged;
        return m;
    }

    /** Open a region: start region-undo logging, route tracked writes
     *  to @p fp (may be null for a fallback run with no footprint). */
    void sessionBegin(RegionFootprint *fp);

    /** Close the region keeping its effects; drops the region log. */
    void sessionCommit();

    /** Abort the region: replay the region undo log in reverse, then
     *  truncate everything allocated since @p m. */
    void sessionAbort(const HeapMark &m);

    /** Is a shared-heap region currently open? */
    bool sessionActive() const { return sessionLogging; }

    /** Report one modeled memory access to the open region's
     *  footprint (called from ExecEnv::memAccess). */
    void
    noteSessionAccess(Addr addr, bool is_write)
    {
        if (!sessionFp)
            return;
        if (is_write)
            sessionFp->noteWrite(addr);
        else
            sessionFp->noteRead(addr);
    }

    ShapeTable &shapeTable() { return shapes; }
    StringTable &stringTable() { return strings; }
    const StringTable &stringTable() const { return strings; }
    const HeapStats &stats() const { return statsData; }

    /** Render a value for host consumption (tests, print builtin). */
    std::string valueToDisplayString(Value v) const;

  private:
    bool inTx() const { return htm && htm->inTransaction(); }

    // Out-of-line halves of the inline write fast paths: undo-log the
    // old value, store, and record the transactional write.
    void setSlotTracked(uint32_t obj_id, uint32_t slot, Value v);
    void setElementFastTracked(uint32_t arr_id, uint32_t index,
                               Value v);
    void setGlobalTracked(uint32_t index, Value v);

    Addr allocAddr(uint64_t bytes);

    /**
     * Register a transactional store with the HTM write set. Throws
     * TxAbortUnwind if the write overflows transaction capacity (the
     * manager has already aborted and rolled this heap back).
     */
    void recordTxWrite(Addr addr);

    // ---- Undo log -------------------------------------------------------
    enum class UndoKind : uint8_t {
        ObjectSlot,   ///< Restore object slot value.
        ObjectShape,  ///< Restore shape + pop appended slot.
        ArrayElem,    ///< Restore array element value.
        ArrayResize,  ///< Restore array length/holes/address.
        GlobalVar,    ///< Restore global value.
    };

    struct UndoEntry {
        UndoKind kind;
        uint32_t id = 0;      ///< Object/array/global id.
        uint32_t index = 0;   ///< Slot or element index.
        Value oldValue;       ///< Previous value (or shape id bits).
        uint32_t oldShape = 0;
        uint32_t oldLength = 0;
        bool oldHasHoles = false;
        Addr oldBaseAddr = 0;
    };

    void logObjectSlot(uint32_t obj_id, uint32_t slot);
    void logArrayElem(uint32_t arr_id, uint32_t index);
    void logArrayResize(uint32_t arr_id);
    void logGlobal(uint32_t index);

    /** Append @p e to whichever undo logs are open. */
    void pushUndo(const UndoEntry &e);

    /** Replay one undo entry (shared by txRollback/sessionAbort). */
    void applyUndo(const UndoEntry &e);

    ShapeTable &shapes;
    StringTable &strings;
    TransactionManager *htm = nullptr;

    std::vector<std::unique_ptr<JsObject>> objects;
    std::vector<std::unique_ptr<JsArray>> arrays;
    std::vector<Value> globals;
    std::unordered_map<std::string, uint32_t> globalNames;
    Addr globalsBase = 0;

    Addr nextAddr = 0x10000; ///< Bump pointer; 0 stays "no address".
    std::vector<UndoEntry> undoLog;
    bool logging = false;

    // Region-scoped undo state (independent of the per-tx log above:
    // an HTM transaction may commit inside a region that later aborts).
    std::vector<UndoEntry> sessionLog;
    bool sessionLogging = false;
    RegionFootprint *sessionFp = nullptr;

    HeapStats statsData;
};

} // namespace nomap

#endif // NOMAP_VM_HEAP_H
