#include "vm/runtime.h"

#include <cmath>
#include <cstdlib>

#include "support/logging.h"

namespace nomap {

Runtime::Runtime(Heap &heap)
    : heapRef(heap),
      lengthNameId(heap.stringTable().intern("length"))
{
}

std::string
Runtime::toString(Value v) const
{
    return heapRef.valueToDisplayString(v);
}

uint32_t
Runtime::toUint32(Value v) const
{
    return static_cast<uint32_t>(toInt32(v));
}

Value
Runtime::typeofValue(Value v)
{
    const char *name;
    switch (v.kind()) {
      case ValueKind::Int32:
      case ValueKind::Double: name = "number"; break;
      case ValueKind::Boolean: name = "boolean"; break;
      case ValueKind::Undefined: name = "undefined"; break;
      case ValueKind::Null: name = "object"; break; // JS quirk.
      case ValueKind::String: name = "string"; break;
      case ValueKind::Function:
      case ValueKind::NativeFunction: name = "function"; break;
      default: name = "object"; break;
    }
    return Value::string(heapRef.stringTable().intern(name));
}

Value
Runtime::genericAdd(Value a, Value b)
{
    if (a.isNumber() && b.isNumber())
        return Value::number(a.asNumber() + b.asNumber());
    if (a.isString() || b.isString()) {
        std::string s = toString(a) + toString(b);
        return Value::string(heapRef.stringTable().intern(s));
    }
    return Value::number(toNumber(a) + toNumber(b));
}

Value
Runtime::genericSub(Value a, Value b) const
{
    return Value::number(toNumber(a) - toNumber(b));
}

Value
Runtime::genericMul(Value a, Value b) const
{
    return Value::number(toNumber(a) * toNumber(b));
}

Value
Runtime::genericDiv(Value a, Value b) const
{
    return Value::number(toNumber(a) / toNumber(b));
}

Value
Runtime::genericMod(Value a, Value b) const
{
    return Value::number(std::fmod(toNumber(a), toNumber(b)));
}

Value
Runtime::genericBitAnd(Value a, Value b) const
{
    return Value::int32(toInt32(a) & toInt32(b));
}

Value
Runtime::genericBitOr(Value a, Value b) const
{
    return Value::int32(toInt32(a) | toInt32(b));
}

Value
Runtime::genericBitXor(Value a, Value b) const
{
    return Value::int32(toInt32(a) ^ toInt32(b));
}

Value
Runtime::genericShl(Value a, Value b) const
{
    return Value::int32(toInt32(a) << (toUint32(b) & 31));
}

Value
Runtime::genericShr(Value a, Value b) const
{
    return Value::int32(toInt32(a) >> (toUint32(b) & 31));
}

Value
Runtime::genericUShr(Value a, Value b) const
{
    uint32_t r = toUint32(a) >> (toUint32(b) & 31);
    return Value::number(static_cast<double>(r));
}

Value
Runtime::genericNeg(Value a) const
{
    if (a.isInt32() && a.asInt32() != 0 &&
        a.asInt32() != INT32_MIN) {
        return Value::int32(-a.asInt32());
    }
    return Value::boxDouble(-toNumber(a));
}

Value
Runtime::genericBitNot(Value a) const
{
    return Value::int32(~toInt32(a));
}

Value
Runtime::genericLt(Value a, Value b) const
{
    if (a.isString() && b.isString()) {
        return Value::boolean(heapRef.stringTable().get(a.payload()) <
                              heapRef.stringTable().get(b.payload()));
    }
    return Value::boolean(toNumber(a) < toNumber(b));
}

Value
Runtime::genericLe(Value a, Value b) const
{
    if (a.isString() && b.isString()) {
        return Value::boolean(heapRef.stringTable().get(a.payload()) <=
                              heapRef.stringTable().get(b.payload()));
    }
    return Value::boolean(toNumber(a) <= toNumber(b));
}

Value
Runtime::genericGt(Value a, Value b) const
{
    if (a.isString() && b.isString()) {
        return Value::boolean(heapRef.stringTable().get(a.payload()) >
                              heapRef.stringTable().get(b.payload()));
    }
    return Value::boolean(toNumber(a) > toNumber(b));
}

Value
Runtime::genericGe(Value a, Value b) const
{
    if (a.isString() && b.isString()) {
        return Value::boolean(heapRef.stringTable().get(a.payload()) >=
                              heapRef.stringTable().get(b.payload()));
    }
    return Value::boolean(toNumber(a) >= toNumber(b));
}

bool
Runtime::looseEquals(Value a, Value b) const
{
    if (a.isNumber() && b.isNumber())
        return a.asNumber() == b.asNumber();
    if ((a.isNull() || a.isUndefined()) &&
        (b.isNull() || b.isUndefined())) {
        return true;
    }
    if (a.isNumber() && b.isString())
        return a.asNumber() == toNumber(b);
    if (a.isString() && b.isNumber())
        return toNumber(a) == b.asNumber();
    if (a.isBoolean() || b.isBoolean()) {
        if (a.kind() != b.kind())
            return toNumber(a) == toNumber(b);
    }
    return strictEquals(a, b);
}

bool
Runtime::strictEquals(Value a, Value b) const
{
    if (a.isNumber() && b.isNumber())
        return a.asNumber() == b.asNumber();
    if (a.kind() != b.kind())
        return false;
    return a == b; // Identity: strings interned, objects by id.
}

Value
Runtime::applyBinary(BinaryOp op, Value a, Value b)
{
    switch (op) {
      case BinaryOp::Add: return genericAdd(a, b);
      case BinaryOp::Sub: return genericSub(a, b);
      case BinaryOp::Mul: return genericMul(a, b);
      case BinaryOp::Div: return genericDiv(a, b);
      case BinaryOp::Mod: return genericMod(a, b);
      case BinaryOp::BitAnd: return genericBitAnd(a, b);
      case BinaryOp::BitOr: return genericBitOr(a, b);
      case BinaryOp::BitXor: return genericBitXor(a, b);
      case BinaryOp::Shl: return genericShl(a, b);
      case BinaryOp::Shr: return genericShr(a, b);
      case BinaryOp::UShr: return genericUShr(a, b);
      case BinaryOp::Lt: return genericLt(a, b);
      case BinaryOp::Le: return genericLe(a, b);
      case BinaryOp::Gt: return genericGt(a, b);
      case BinaryOp::Ge: return genericGe(a, b);
      case BinaryOp::Eq: return Value::boolean(looseEquals(a, b));
      case BinaryOp::NotEq: return Value::boolean(!looseEquals(a, b));
      case BinaryOp::StrictEq: return Value::boolean(strictEquals(a, b));
      case BinaryOp::StrictNotEq:
        return Value::boolean(!strictEquals(a, b));
    }
    panic("bad binary op");
}

Value
Runtime::applyUnary(UnaryOp op, Value a)
{
    switch (op) {
      case UnaryOp::Neg: return genericNeg(a);
      case UnaryOp::Plus: return Value::number(toNumber(a));
      case UnaryOp::Not: return Value::boolean(!toBoolean(a));
      case UnaryOp::BitNot: return genericBitNot(a);
      case UnaryOp::Typeof: return typeofValue(a);
    }
    panic("bad unary op");
}

Value
Runtime::getPropertyGeneric(Value base, uint32_t name_id, Addr *addr_out)
{
    if (addr_out)
        *addr_out = 0;
    if (base.isObject())
        return heapRef.getProperty(base.payload(), name_id, addr_out);
    if (base.isArray()) {
        if (name_id == lengthNameId) {
            return Value::int32(static_cast<int32_t>(
                heapRef.array(base.payload()).length()));
        }
        return Value::undefined();
    }
    if (base.isString()) {
        if (name_id == lengthNameId) {
            return Value::int32(static_cast<int32_t>(
                heapRef.stringTable().get(base.payload()).size()));
        }
        return Value::undefined();
    }
    return Value::undefined();
}

void
Runtime::setPropertyGeneric(Value base, uint32_t name_id, Value v,
                            Addr *addr_out)
{
    if (addr_out)
        *addr_out = 0;
    if (base.isObject()) {
        heapRef.setProperty(base.payload(), name_id, v, addr_out);
        return;
    }
    // Stores to non-objects are silently ignored (sloppy-mode JS).
}

Value
Runtime::getIndexGeneric(Value base, Value index, Addr *addr_out)
{
    if (addr_out)
        *addr_out = 0;
    if (base.isArray()) {
        if (index.isInt32()) {
            return heapRef.getElement(base.payload(), index.asInt32(),
                                      addr_out);
        }
        double d = toNumber(index);
        int64_t i = static_cast<int64_t>(d);
        if (static_cast<double>(i) != d)
            return Value::undefined();
        return heapRef.getElement(base.payload(), i, addr_out);
    }
    if (base.isString()) {
        const std::string &s = heapRef.stringTable().get(base.payload());
        int64_t i = static_cast<int64_t>(toNumber(index));
        if (i < 0 || i >= static_cast<int64_t>(s.size()))
            return Value::undefined();
        std::string c(1, s[static_cast<size_t>(i)]);
        return Value::string(heapRef.stringTable().intern(c));
    }
    if (base.isObject()) {
        // obj[k] where k stringifies to a property name.
        uint32_t name = heapRef.stringTable().intern(toString(index));
        return heapRef.getProperty(base.payload(), name, addr_out);
    }
    return Value::undefined();
}

void
Runtime::setIndexGeneric(Value base, Value index, Value v, Addr *addr_out)
{
    if (addr_out)
        *addr_out = 0;
    if (base.isArray()) {
        double d = toNumber(index);
        int64_t i = static_cast<int64_t>(d);
        if (static_cast<double>(i) != d || i < 0)
            return; // Non-integer indices ignored in the subset.
        heapRef.setElement(base.payload(), i, v, addr_out);
        return;
    }
    if (base.isObject()) {
        uint32_t name = heapRef.stringTable().intern(toString(index));
        heapRef.setProperty(base.payload(), name, v, addr_out);
        return;
    }
}

} // namespace nomap
