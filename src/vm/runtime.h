#ifndef NOMAP_VM_RUNTIME_H
#define NOMAP_VM_RUNTIME_H

/**
 * @file
 * Generic runtime operations.
 *
 * These implement the full corner-case semantics of the JS subset:
 * the "runtime calls" that Baseline-tier code uses for every operation
 * (paper Figure 4b), and that FTL-tier code avoids by speculating and
 * checking. toNumber/genericAdd/etc. never fail: like JavaScript, they
 * handle every input combination.
 */

#include <cmath>
#include <cstdlib>
#include <string>

#include "js/ast.h"
#include "vm/heap.h"
#include "vm/value.h"

namespace nomap {

/** Stateless helpers bound to a Heap (for string/array access). */
class Runtime
{
  public:
    explicit Runtime(Heap &heap);

    // ---- Conversions ----------------------------------------------------
    // toNumber/toBoolean/toInt32 are defined in the header: they sit
    // under the interpreter's comparison and arithmetic ops (tens of
    // millions of calls per benchmark pass) and must inline into the
    // dispatch loops.

    /** ToNumber: booleans/null/strings convert; objects/undefined → NaN. */
    double
    toNumber(Value v) const
    {
        switch (v.kind()) {
          case ValueKind::Int32:
            return static_cast<double>(v.asInt32());
          case ValueKind::Double:
            return v.asBoxedDouble();
          case ValueKind::Boolean:
            return v.asBoolean() ? 1.0 : 0.0;
          case ValueKind::Null:
            return 0.0;
          case ValueKind::String: {
            const std::string &s =
                heapRef.stringTable().get(v.payload());
            if (s.empty())
                return 0.0;
            char *end = nullptr;
            double d = std::strtod(s.c_str(), &end);
            // Trailing non-space characters make the conversion fail.
            while (end && *end == ' ')
                ++end;
            if (!end || *end != '\0')
                return std::nan("");
            return d;
          }
          case ValueKind::Undefined:
          case ValueKind::Object:
          case ValueKind::Array:
          case ValueKind::Function:
          case ValueKind::NativeFunction:
          default:
            return std::nan("");
        }
    }

    /** ToBoolean (JS truthiness). */
    bool
    toBoolean(Value v) const
    {
        switch (v.kind()) {
          case ValueKind::Int32:
            return v.asInt32() != 0;
          case ValueKind::Double: {
            double d = v.asBoxedDouble();
            return d != 0.0 && d == d;
          }
          case ValueKind::Boolean:
            return v.asBoolean();
          case ValueKind::Undefined:
          case ValueKind::Null:
            return false;
          case ValueKind::String:
            return !heapRef.stringTable().get(v.payload()).empty();
          default:
            return true; // Objects, arrays, functions are truthy.
        }
    }

    /** ToString for concatenation and display. */
    std::string toString(Value v) const;

    /** ToInt32 (modular wrap of the number value, per ECMA-262). */
    int32_t
    toInt32(Value v) const
    {
        if (v.isInt32())
            return v.asInt32();
        double d = toNumber(v);
        if (d != d || std::isinf(d))
            return 0;
        // ECMA-262 modular conversion.
        double m = std::fmod(std::trunc(d), 4294967296.0);
        if (m < 0)
            m += 4294967296.0;
        uint32_t u = static_cast<uint32_t>(m);
        return static_cast<int32_t>(u);
    }

    /** ToUint32. */
    uint32_t toUint32(Value v) const;

    /** typeof operator result (interned string Value). */
    Value typeofValue(Value v);

    // ---- Generic operators ------------------------------------------------
    /** JS '+': numeric add or string concatenation. */
    Value genericAdd(Value a, Value b);

    Value genericSub(Value a, Value b) const;
    Value genericMul(Value a, Value b) const;
    Value genericDiv(Value a, Value b) const;
    Value genericMod(Value a, Value b) const;

    Value genericBitAnd(Value a, Value b) const;
    Value genericBitOr(Value a, Value b) const;
    Value genericBitXor(Value a, Value b) const;
    Value genericShl(Value a, Value b) const;
    Value genericShr(Value a, Value b) const;
    Value genericUShr(Value a, Value b) const;

    Value genericNeg(Value a) const;
    Value genericBitNot(Value a) const;

    /** Relational compare (numbers or strings; mixed -> numeric). */
    Value genericLt(Value a, Value b) const;
    Value genericLe(Value a, Value b) const;
    Value genericGt(Value a, Value b) const;
    Value genericGe(Value a, Value b) const;

    /** Loose equality (numeric coercion between number kinds only). */
    bool looseEquals(Value a, Value b) const;

    /** Strict equality (===). */
    bool strictEquals(Value a, Value b) const;

    /** Dispatch a BinaryOp generically. */
    Value applyBinary(BinaryOp op, Value a, Value b);

    /** Dispatch a UnaryOp generically. */
    Value applyUnary(UnaryOp op, Value a);

    // ---- Property access with full semantics ------------------------------
    /**
     * Generic property load: objects by shape lookup; arrays and
     * strings expose 'length'; everything else yields undefined.
     */
    Value getPropertyGeneric(Value base, uint32_t name_id,
                             Addr *addr_out = nullptr);

    /** Generic property store; non-objects are ignored (no throw). */
    void setPropertyGeneric(Value base, uint32_t name_id, Value v,
                            Addr *addr_out = nullptr);

    /**
     * Generic indexed load (paper: loadArrayValue). Arrays: bounds-
     * and hole-safe; strings: one-character string; else undefined.
     */
    Value getIndexGeneric(Value base, Value index,
                          Addr *addr_out = nullptr);

    /** Generic indexed store; arrays elongate as needed. */
    void setIndexGeneric(Value base, Value index, Value v,
                         Addr *addr_out = nullptr);

    Heap &heap() { return heapRef; }

  private:
    Heap &heapRef;
    uint32_t lengthNameId;
};

} // namespace nomap

#endif // NOMAP_VM_RUNTIME_H
