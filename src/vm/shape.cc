#include "vm/shape.h"

#include "support/logging.h"

namespace nomap {

ShapeTable::ShapeTable()
{
    Shape root;
    root.id = 0;
    root.slotCount = 0;
    shapes.push_back(std::move(root));
}

int32_t
ShapeTable::lookup(uint32_t shape_id, uint32_t name_id) const
{
    NOMAP_ASSERT(shape_id < shapes.size());
    uint32_t cur = shape_id;
    while (cur != kInvalidShape) {
        const Shape &shape = shapes[cur];
        if (cur != 0 && shape.addedName == name_id)
            return static_cast<int32_t>(shape.addedSlot);
        cur = shape.parent;
    }
    return -1;
}

uint32_t
ShapeTable::transition(uint32_t shape_id, uint32_t name_id,
                       uint32_t *slot_out)
{
    NOMAP_ASSERT(shape_id < shapes.size());
    NOMAP_ASSERT(lookup(shape_id, name_id) < 0);

    auto it = shapes[shape_id].transitions.find(name_id);
    if (it != shapes[shape_id].transitions.end()) {
        const Shape &child = shapes[it->second];
        if (slot_out)
            *slot_out = child.addedSlot;
        return child.id;
    }

    Shape child;
    child.id = static_cast<uint32_t>(shapes.size());
    child.parent = shape_id;
    child.addedName = name_id;
    child.addedSlot = shapes[shape_id].slotCount;
    child.slotCount = shapes[shape_id].slotCount + 1;
    uint32_t child_id = child.id;
    if (slot_out)
        *slot_out = child.addedSlot;
    shapes.push_back(std::move(child));
    shapes[shape_id].transitions.emplace(name_id, child_id);
    return child_id;
}

uint32_t
ShapeTable::slotCount(uint32_t shape_id) const
{
    NOMAP_ASSERT(shape_id < shapes.size());
    return shapes[shape_id].slotCount;
}

void
ShapeTable::truncate(size_t n)
{
    NOMAP_ASSERT(n >= 1); // Never drop the root shape.
    if (n >= shapes.size())
        return;
    shapes.resize(n);
    // Children always have larger ids than their parents (they are
    // created later), so only surviving shapes can hold edges into the
    // dropped range.
    for (Shape &shape : shapes) {
        for (auto it = shape.transitions.begin();
             it != shape.transitions.end();) {
            if (it->second >= n)
                it = shape.transitions.erase(it);
            else
                ++it;
        }
    }
}

} // namespace nomap
