#ifndef NOMAP_VM_SHAPE_H
#define NOMAP_VM_SHAPE_H

/**
 * @file
 * Hidden classes ("shapes", JavaScriptCore calls them Structures).
 *
 * A Shape maps property names to slot offsets. Objects that acquire
 * the same properties in the same order share a Shape, so the FTL
 * tier's *property checks* reduce to a single shape-id compare — the
 * exact check kind Figure 3 of the paper counts as "Property".
 * Shapes are arranged in a transition tree rooted at the empty shape.
 */

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace nomap {

/** Invalid shape sentinel. */
constexpr uint32_t kInvalidShape = 0xffffffffu;

/** One node in the shape transition tree. */
struct Shape {
    uint32_t id = 0;
    uint32_t parent = kInvalidShape;
    /** Property name (string id) added by this shape; empty on root. */
    uint32_t addedName = 0;
    /** Slot index assigned to addedName. */
    uint32_t addedSlot = 0;
    /** Number of slots objects with this shape have. */
    uint32_t slotCount = 0;
    /** name id -> child shape id for property additions. */
    std::unordered_map<uint32_t, uint32_t> transitions;
};

/** Owns all shapes; provides the transition machinery. */
class ShapeTable
{
  public:
    ShapeTable();

    /** The empty root shape (every new object starts here). */
    uint32_t rootShape() const { return 0; }

    /**
     * Slot offset of property @p name_id in shape @p shape_id, or -1
     * if the shape has no such property.
     */
    int32_t lookup(uint32_t shape_id, uint32_t name_id) const;

    /**
     * Shape reached by adding property @p name_id to @p shape_id
     * (creating the transition if needed). Outputs the new slot.
     */
    uint32_t transition(uint32_t shape_id, uint32_t name_id,
                        uint32_t *slot_out);

    /** Slot count for a shape. */
    uint32_t slotCount(uint32_t shape_id) const;

    size_t size() const { return shapes.size(); }

    /**
     * Drop every shape with id >= @p n, and the transition edges that
     * lead to them. Used by shared-heap sessions to roll back shapes
     * created by an aborted region attempt: shape ids are assigned in
     * creation order, so truncating to the attempt-start size removes
     * exactly that attempt's shapes, and a retry re-derives them with
     * identical ids. Only valid when no live object references a
     * dropped shape (the session truncates the heap to the same mark).
     */
    void truncate(size_t n);

  private:
    std::vector<Shape> shapes;
};

} // namespace nomap

#endif // NOMAP_VM_SHAPE_H
