#include "vm/string_table.h"

#include "support/logging.h"

namespace nomap {

StringTable::StringTable()
{
    // Id 0 is always the empty string.
    intern("");
}

uint32_t
StringTable::intern(const std::string &s)
{
    auto it = ids.find(s);
    if (it != ids.end())
        return it->second;
    uint32_t id = static_cast<uint32_t>(strings.size());
    strings.push_back(s);
    ids.emplace(s, id);
    return id;
}

const std::string &
StringTable::get(uint32_t id) const
{
    NOMAP_ASSERT(id < strings.size());
    return strings[id];
}

bool
StringTable::isInterned(const std::string &s) const
{
    return ids.count(s) > 0;
}

void
StringTable::truncate(size_t n)
{
    while (strings.size() > n) {
        ids.erase(strings.back());
        strings.pop_back();
    }
}

} // namespace nomap
