#ifndef NOMAP_VM_STRING_TABLE_H
#define NOMAP_VM_STRING_TABLE_H

/**
 * @file
 * Interned, immutable string storage. Value::string payloads index
 * into this table, so string identity compares are integer compares
 * and strings never participate in transactional rollback.
 */

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

namespace nomap {

/** Owns every distinct string the VM has seen. */
class StringTable
{
  public:
    StringTable();

    /** Intern @p s, returning its stable id. */
    uint32_t intern(const std::string &s);

    /**
     * Look up the text for an id. The reference stays valid across
     * later intern() calls (storage is a deque, which never moves
     * existing elements) — builtins hold these references while
     * interning results.
     */
    const std::string &get(uint32_t id) const;

    /** True if the string is already interned (test helper). */
    bool isInterned(const std::string &s) const;

    size_t size() const { return strings.size(); }

    /**
     * Drop every string with id >= @p n. Used by shared-heap sessions
     * to roll back strings interned by an aborted region attempt, so a
     * retry re-interns them with identical ids. Invalidates get()
     * references to the dropped strings only; callers must not hold
     * such references across a region abort (nothing does — builtins
     * hold them only within one guest run).
     */
    void truncate(size_t n);

  private:
    std::deque<std::string> strings;
    std::unordered_map<std::string, uint32_t> ids;
};

} // namespace nomap

#endif // NOMAP_VM_STRING_TABLE_H
