#include "vm/value.h"

#include "support/logging.h"

namespace nomap {

uint16_t
valueKindMask(ValueKind kind)
{
    switch (kind) {
      case ValueKind::Int32: return kMaskInt32;
      case ValueKind::Double: return kMaskDouble;
      case ValueKind::Boolean: return kMaskBoolean;
      case ValueKind::Undefined: return kMaskUndefined;
      case ValueKind::Null: return kMaskNull;
      case ValueKind::Object: return kMaskObject;
      case ValueKind::Array: return kMaskArray;
      case ValueKind::String: return kMaskString;
      case ValueKind::Function: return kMaskFunction;
      case ValueKind::NativeFunction: return kMaskNative;
    }
    return 0;
}

ValueKind
Value::kind() const
{
    if (isInt32())
        return ValueKind::Int32;
    if (isBoxedDouble())
        return ValueKind::Double;
    if (isBoolean())
        return ValueKind::Boolean;
    if (isUndefined())
        return ValueKind::Undefined;
    if (isNull())
        return ValueKind::Null;
    if (isObject())
        return ValueKind::Object;
    if (isArray())
        return ValueKind::Array;
    if (isString())
        return ValueKind::String;
    if (isFunction())
        return ValueKind::Function;
    if (isNativeFunction())
        return ValueKind::NativeFunction;
    panic("corrupt value bits");
}

} // namespace nomap
