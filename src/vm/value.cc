#include "vm/value.h"

#include "support/logging.h"

namespace nomap {

void
corruptValuePanic()
{
    panic("corrupt value bits");
}

} // namespace nomap
