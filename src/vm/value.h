#ifndef NOMAP_VM_VALUE_H
#define NOMAP_VM_VALUE_H

/**
 * @file
 * NaN-boxed JavaScript value.
 *
 * All values fit in 64 bits, as in JavaScriptCore. Non-double values
 * live in the negative quiet-NaN space: the top 16 bits select a tag
 * that no canonicalized double can produce (the VM canonicalizes every
 * NaN result to 0x7FF8000000000000 before boxing, so tag patterns are
 * unreachable as doubles).
 *
 * JavaScript numbers are doubles by default; the VM keeps a separate
 * Int32 representation as the fast path, exactly the optimization
 * whose overflow checks the paper's SOF mechanism targets.
 */

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>

namespace nomap {

/** Runtime kind of a boxed value. */
enum class ValueKind : uint8_t {
    Int32,
    Double,
    Boolean,
    Undefined,
    Null,
    Object,
    Array,
    String,
    Function,       ///< User function (index into the code cache).
    NativeFunction, ///< Builtin (index into the builtin registry).
};

/** Out-of-line cold path for Value::kind() on corrupt bits. */
[[noreturn]] void corruptValuePanic();

/** Bitmask form of ValueKind used by type-feedback profiles. */
enum ValueKindMask : uint16_t {
    kMaskInt32 = 1 << 0,
    kMaskDouble = 1 << 1,
    kMaskBoolean = 1 << 2,
    kMaskUndefined = 1 << 3,
    kMaskNull = 1 << 4,
    kMaskObject = 1 << 5,
    kMaskArray = 1 << 6,
    kMaskString = 1 << 7,
    kMaskFunction = 1 << 8,
    kMaskNative = 1 << 9,
};

/**
 * Convert a kind to its profile mask bit. The mask enumerators are in
 * ValueKind order (static_asserts below), so this is a single shift —
 * it runs once per profiled op in the warm-up tiers.
 */
inline uint16_t
valueKindMask(ValueKind kind)
{
    return static_cast<uint16_t>(1u << static_cast<unsigned>(kind));
}

/** A NaN-boxed value. Trivially copyable; 8 bytes. */
class Value
{
  public:
    /** Default-constructed values are undefined. */
    Value() : bits(kUndefinedBits) {}

    // ---- Constructors -------------------------------------------------
    static Value
    int32(int32_t v)
    {
        return Value((kTagInt32 << 48) |
                     static_cast<uint32_t>(v));
    }

    static Value
    number(double v)
    {
        // Prefer the int32 representation when exact (excluding -0).
        int32_t as_int = static_cast<int32_t>(v);
        if (static_cast<double>(as_int) == v &&
            !(v == 0.0 && std::signbit(v))) {
            return int32(as_int);
        }
        return boxDouble(v);
    }

    static Value
    boxDouble(double v)
    {
        if (v != v)
            return Value(kCanonicalNan);
        uint64_t b;
        std::memcpy(&b, &v, sizeof(b));
        return Value(b);
    }

    static Value
    boolean(bool v)
    {
        return Value(v ? kTrueBits : kFalseBits);
    }

    static Value undefined() { return Value(kUndefinedBits); }
    static Value null() { return Value(kNullBits); }

    static Value
    object(uint32_t heap_id)
    {
        return Value((kTagObject << 48) | heap_id);
    }

    static Value
    array(uint32_t heap_id)
    {
        return Value((kTagArray << 48) | heap_id);
    }

    static Value
    string(uint32_t string_id)
    {
        return Value((kTagString << 48) | string_id);
    }

    static Value
    function(uint32_t func_id)
    {
        return Value((kTagFunction << 48) | func_id);
    }

    static Value
    nativeFunction(uint32_t builtin_id)
    {
        return Value((kTagNative << 48) | builtin_id);
    }

    // ---- Predicates ---------------------------------------------------
    bool isInt32() const { return tag() == kTagInt32; }
    bool isBoxedDouble() const { return tag() < kTagInt32; }
    bool isNumber() const { return isInt32() || isBoxedDouble(); }
    bool
    isBoolean() const
    {
        return bits == kTrueBits || bits == kFalseBits;
    }
    bool isUndefined() const { return bits == kUndefinedBits; }
    bool isNull() const { return bits == kNullBits; }
    bool isObject() const { return tag() == kTagObject; }
    bool isArray() const { return tag() == kTagArray; }
    bool isString() const { return tag() == kTagString; }
    bool isFunction() const { return tag() == kTagFunction; }
    bool isNativeFunction() const { return tag() == kTagNative; }

    /**
     * Runtime kind. Inline: executor type checks and feedback
     * profiling call this per op, so it must compile down to a tag
     * dispatch, not a call.
     */
    ValueKind
    kind() const
    {
        uint64_t t = tag();
        if (t < kTagInt32)
            return ValueKind::Double;
        switch (t) {
          case kTagInt32: return ValueKind::Int32;
          case kTagObject: return ValueKind::Object;
          case kTagArray: return ValueKind::Array;
          case kTagString: return ValueKind::String;
          case kTagFunction: return ValueKind::Function;
          case kTagNative: return ValueKind::NativeFunction;
          case kTagSpecial:
            switch (bits & 0xffffffffu) {
              case 0: return ValueKind::Undefined;
              case 1: return ValueKind::Null;
              case 2:
              case 3: return ValueKind::Boolean;
            }
            break;
        }
        corruptValuePanic();
    }

    // ---- Accessors (caller must check the predicate first) -----------
    int32_t
    asInt32() const
    {
        return static_cast<int32_t>(bits & 0xffffffffu);
    }

    double
    asBoxedDouble() const
    {
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    /** Numeric value of an Int32 or boxed double. */
    double
    asNumber() const
    {
        return isInt32() ? static_cast<double>(asInt32())
                         : asBoxedDouble();
    }

    bool asBoolean() const { return bits == kTrueBits; }
    uint32_t payload() const
    {
        return static_cast<uint32_t>(bits & 0xffffffffu);
    }

    uint64_t rawBits() const { return bits; }

    bool operator==(const Value &other) const
    {
        return bits == other.bits;
    }
    bool operator!=(const Value &other) const
    {
        return bits != other.bits;
    }

  private:
    explicit Value(uint64_t b) : bits(b) {}

    uint64_t tag() const { return bits >> 48; }

    static constexpr uint64_t kCanonicalNan = 0x7ff8000000000000ull;
    static constexpr uint64_t kTagInt32 = 0xfff1;
    static constexpr uint64_t kTagObject = 0xfff2;
    static constexpr uint64_t kTagArray = 0xfff3;
    static constexpr uint64_t kTagString = 0xfff4;
    static constexpr uint64_t kTagFunction = 0xfff5;
    static constexpr uint64_t kTagNative = 0xfff6;
    static constexpr uint64_t kTagSpecial = 0xfff7;
    static constexpr uint64_t kUndefinedBits = (kTagSpecial << 48) | 0;
    static constexpr uint64_t kNullBits = (kTagSpecial << 48) | 1;
    static constexpr uint64_t kFalseBits = (kTagSpecial << 48) | 2;
    static constexpr uint64_t kTrueBits = (kTagSpecial << 48) | 3;

    uint64_t bits;
};

static_assert(sizeof(Value) == 8, "Value must stay NaN-box sized");

// valueKindMask's shift relies on the mask bits tracking ValueKind's
// enumerator order.
static_assert(kMaskInt32 == 1u << static_cast<unsigned>(ValueKind::Int32));
static_assert(kMaskDouble ==
              1u << static_cast<unsigned>(ValueKind::Double));
static_assert(kMaskBoolean ==
              1u << static_cast<unsigned>(ValueKind::Boolean));
static_assert(kMaskUndefined ==
              1u << static_cast<unsigned>(ValueKind::Undefined));
static_assert(kMaskNull == 1u << static_cast<unsigned>(ValueKind::Null));
static_assert(kMaskObject ==
              1u << static_cast<unsigned>(ValueKind::Object));
static_assert(kMaskArray ==
              1u << static_cast<unsigned>(ValueKind::Array));
static_assert(kMaskString ==
              1u << static_cast<unsigned>(ValueKind::String));
static_assert(kMaskFunction ==
              1u << static_cast<unsigned>(ValueKind::Function));
static_assert(kMaskNative ==
              1u << static_cast<unsigned>(ValueKind::NativeFunction));

} // namespace nomap

#endif // NOMAP_VM_VALUE_H
