/**
 * @file
 * Differential test for the batched (per-basic-block) accounting fast
 * path: for every suite program and every architecture, an Engine run
 * with default batched charging must produce ExecutionStats
 * bit-identical to the per-operation reference mode
 * (EngineConfig::perOpAccounting). This is the invariant that lets
 * the executors charge a block's static cost in one call.
 */

#include <gtest/gtest.h>

#include "bytecode/compiler.h"
#include "bytecode/opcode.h"
#include "engine/engine.h"
#include "inject/fault_plan.h"
#include "suites/suite.h"

namespace nomap {
namespace {

ExecutionStats
runStats(const std::string &source, Architecture arch, bool per_op)
{
    EngineConfig config;
    config.arch = arch;
    config.perOpAccounting = per_op;
    Engine engine(config);
    return engine.run(source).stats;
}

void
expectBitIdentical(const ExecutionStats &batched,
                   const ExecutionStats &per_op)
{
    for (size_t b = 0;
         b < static_cast<size_t>(InstrBucket::NumBuckets); ++b) {
        EXPECT_EQ(batched.instr[b], per_op.instr[b])
            << "instr bucket " << b;
    }
    for (size_t k = 0; k < static_cast<size_t>(CheckKind::NumKinds);
         ++k) {
        EXPECT_EQ(batched.checks[k], per_op.checks[k])
            << "check kind " << checkKindName(static_cast<CheckKind>(k));
    }
    // Exact equality on the doubles, not near-equality: instruction
    // cycles accumulate as integer units and meet floating point in
    // one flush, so the two modes must agree bit for bit.
    EXPECT_EQ(batched.cyclesTm, per_op.cyclesTm);
    EXPECT_EQ(batched.cyclesNonTm, per_op.cyclesNonTm);
    EXPECT_EQ(batched.ftlFunctionCalls, per_op.ftlFunctionCalls);
    EXPECT_EQ(batched.deopts, per_op.deopts);
    EXPECT_EQ(batched.baselineCompiles, per_op.baselineCompiles);
    EXPECT_EQ(batched.dfgCompiles, per_op.dfgCompiles);
    EXPECT_EQ(batched.ftlCompiles, per_op.ftlCompiles);
    EXPECT_EQ(batched.ftlRecompiles, per_op.ftlRecompiles);
    EXPECT_EQ(batched.txCommits, per_op.txCommits);
    EXPECT_EQ(batched.txAborts, per_op.txAborts);
    EXPECT_EQ(batched.txAbortsCapacity, per_op.txAbortsCapacity);
    EXPECT_EQ(batched.txAbortsCheck, per_op.txAbortsCheck);
    EXPECT_EQ(batched.txAbortsSof, per_op.txAbortsSof);
    EXPECT_EQ(batched.avgWriteFootprintBytes,
              per_op.avgWriteFootprintBytes);
    EXPECT_EQ(batched.maxWriteFootprintBytes,
              per_op.maxWriteFootprintBytes);
    EXPECT_EQ(batched.maxWriteWaysUsed, per_op.maxWriteWaysUsed);
}

void
compareSuite(const std::vector<BenchmarkSpec> &suite, Architecture arch)
{
    for (const BenchmarkSpec &spec : suite) {
        SCOPED_TRACE(spec.id + " on " + architectureName(arch));
        expectBitIdentical(runStats(spec.source, arch, false),
                           runStats(spec.source, arch, true));
    }
}

class AccountingDiff : public ::testing::TestWithParam<Architecture>
{
};

TEST_P(AccountingDiff, SunSpiderStatsMatchPerOpReference)
{
    compareSuite(sunspiderSuite(), GetParam());
}

TEST_P(AccountingDiff, KrakenStatsMatchPerOpReference)
{
    compareSuite(krakenSuite(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, AccountingDiff,
    ::testing::Values(Architecture::Base, Architecture::NoMapS,
                      Architecture::NoMapB, Architecture::NoMap,
                      Architecture::NoMapBC, Architecture::NoMapRTM),
    [](const ::testing::TestParamInfo<Architecture> &info) {
        return std::string(architectureName(info.param));
    });

// Quickening interacts with the charge plan: in-place rewrites and
// superinstruction fusion happen AFTER computeChargePlan ran at
// compile time, so batched-segment refunds on deopt/abort stay an
// exact inverse only if the plan is invariant under the rewrites
// (computeChargePlan classifies ops through genericOpcodeOf). Verify
// by recomputing the plan from live, quickened+fused code and
// comparing it to the stored plan.
TEST(AccountingChargePlan, InvariantUnderQuickening)
{
    EngineConfig config;
    config.arch = Architecture::NoMap;
    Engine engine(config);
    engine.run(sunspiderSuite()[0].source);
    const CompiledProgram *prog = engine.program();
    ASSERT_NE(prog, nullptr);
    bool any_quickened = false;
    for (const auto &fnp : prog->functions) {
        const BytecodeFunction &fn = *fnp;
        SCOPED_TRACE(fn.name);
        for (const BytecodeInstr &instr : fn.code)
            any_quickened = any_quickened || isQuickened(instr.op);
        BytecodeFunction copy = fn;
        copy.computeChargePlan();
        EXPECT_EQ(copy.runLen, fn.runLen);
        EXPECT_EQ(copy.runExtra, fn.runExtra);
    }
    // Guard against vacuity: the run above must actually have
    // rewritten something.
    EXPECT_TRUE(any_quickened);
}

// Region entry audit for the template-JIT tier: the compiled tier
// (and the FTL executor's vm_seg_entry) charges chargeFrom[t] when
// control enters flat index t via a Jump/Branch. That is only exact
// if every such target *begins* a charge segment — otherwise the
// suffix [t..end] would be charged on top of a segment already
// charged in full at its head. computeChargePlan guarantees this by
// ending segments at block ends, and blocks end before every target;
// the observable consequence is that the record preceding any target
// closes its segment (its chargeFrom is exactly its own cost). Audit
// that invariant over every FTL flat stream the suites compile,
// including streams whose bytecode was quickened into
// superinstructions before tier-up.
TEST(AccountingChargePlan, FlatJumpTargetsBeginSegments)
{
    size_t targets_audited = 0;
    for (const BenchmarkSpec &spec : sunspiderSuite()) {
        EngineConfig config;
        config.arch = Architecture::NoMap;
        Engine engine(config);
        engine.run(spec.source);
        const CompiledProgram *prog = engine.program();
        ASSERT_NE(prog, nullptr);
        for (const auto &fnp : prog->functions) {
            const IrFunction *ir = engine.ftlIr(fnp->name);
            if (!ir || ir->flat.empty())
                continue;
            SCOPED_TRACE(spec.id + ":" + fnp->name);
            std::vector<bool> target(ir->flat.size(), false);
            for (const ExecInstr &e : ir->flat) {
                if (e.op == IrOp::Jump) {
                    target[e.imm] = true;
                } else if (e.op == IrOp::Branch) {
                    target[e.imm] = true;
                    target[e.imm2] = true;
                }
            }
            for (size_t t = 1; t < ir->flat.size(); ++t) {
                if (!target[t])
                    continue;
                ++targets_audited;
                const ExecInstr &prev = ir->flat[t - 1];
                EXPECT_EQ(prev.chargeFrom, prev.ownScaled)
                    << "flat " << t - 1
                    << " does not close its segment before the jump "
                       "target at "
                    << t;
            }
        }
    }
    EXPECT_GT(targets_audited, 0u);
}

// OSR exits leave the FTL/JIT region mid-block: the check refunds the
// charged-but-unexecuted suffix of its segment (an exact inverse) and
// Baseline re-enters at the deopt SMP, charging its own plan from
// that mid-block pc — on bytecode that quickening may have rewritten
// into superinstructions after the plan was computed. If either side
// of that handoff were off by even one unit, batched and per-op
// accounting would disagree. Force deopts at such mid-block entry
// points with occurrence-counted check faults and require bit
// identity, on every architecture.
TEST(AccountingChargePlan, OsrMidBlockRefundsExactly)
{
    const Architecture archs[] = {
        Architecture::Base,   Architecture::NoMapS,
        Architecture::NoMapB, Architecture::NoMap,
        Architecture::NoMapBC, Architecture::NoMapRTM};
    const char *plans[] = {"check.any@3", "check.bounds@5"};
    uint64_t total_deopts = 0;
    for (const char *text : plans) {
        FaultPlan plan = FaultPlan::parse(text);
        for (Architecture arch : archs) {
            for (const BenchmarkSpec &spec :
                 {sunspiderSuite()[0], sunspiderSuite()[1]}) {
                SCOPED_TRACE(spec.id + " on " +
                             architectureName(arch) + " under " +
                             text);
                ExecutionStats stats[2];
                for (int per_op = 0; per_op < 2; ++per_op) {
                    EngineConfig config;
                    config.arch = arch;
                    config.perOpAccounting = per_op != 0;
                    Engine engine(config);
                    engine.armFaultPlan(&plan);
                    stats[per_op] = engine.run(spec.source).stats;
                }
                expectBitIdentical(stats[0], stats[1]);
                total_deopts += stats[0].deopts;
            }
        }
    }
    // Vacuity guard: the plans really did force OSR exits somewhere
    // in the sweep (unconverted checks deopt to their SMP).
    EXPECT_GT(total_deopts, 0u);
}

// Plan revisions land at FTL-call boundaries, where batched
// accounting may hold pending, not-yet-flushed instruction units; a
// revision (recompile) must neither drop nor double-charge them, and
// the abort-side refunds around the storm stay an exact inverse. The
// recursive storm also pins the activeRuns/pendingRecompile contract:
// a revision decided while an outer activation of the same function
// is still executing its (old) FTL code must be deferred to the
// outermost return — applying it immediately would free IR mid-run
// (ASan config catches the use-after-free this test was built
// against).
TEST(AccountingRevisionBoundary, AdaptiveReplanIsExactlyAccounted)
{
    const std::string src = R"JS(
var N = 16384;
var A = [];
for (var i = 0; i < N; i++) A[i] = i % 17;
function storm(a, n, depth) {
    var s = 0;
    for (var j = 0; j < n; j++) {
        a[j] = (a[j] + j) % 1021;
        s = (s + a[j]) % 65536;
    }
    if (depth > 0) s = (s + storm(a, n, depth - 1)) % 65536;
    return s;
}
var out = 0;
for (var r = 0; r < 10; r++) out = (out + storm(A, N, 2)) % 65536;
result = out;
)JS";

    // Unfaulted Base reference for the semantics check.
    EngineConfig base;
    base.arch = Architecture::Base;
    Engine ref(base);
    const std::string want = ref.run(src).resultString;

    FaultPlan squeeze = FaultPlan::parse("htm.ways@1");
    for (bool adaptive : {false, true}) {
        SCOPED_TRACE(adaptive ? "adaptive replanning"
                              : "static escalation");
        ExecutionStats stats[2];
        for (int per_op = 0; per_op < 2; ++per_op) {
            EngineConfig config;
            config.arch = Architecture::NoMap;
            config.adaptive = adaptive;
            config.perOpAccounting = per_op != 0;
            // Tier up fast so most storm calls run FTL transactions.
            config.baselineThreshold = 2;
            config.dfgThreshold = 4;
            config.ftlThreshold = 8;
            Engine engine(config);
            engine.armFaultPlan(&squeeze);
            EngineResult r = engine.run(src);
            EXPECT_EQ(r.resultString, want);
            stats[per_op] = r.stats;

            // Vacuity guards: the storm really did force mid-run
            // replanning (with the recursion live), and no deferred
            // recompile is left owing at the end.
            EXPECT_GE(r.stats.txAborts, 2u);
            EXPECT_GE(r.stats.ftlRecompiles, 1u);
            if (adaptive) {
                ASSERT_NE(engine.adaptive(), nullptr);
                EXPECT_GE(engine.adaptive()->revisionsDecided(), 1u);
            }
            const FunctionState *state =
                engine.functionState("storm");
            ASSERT_NE(state, nullptr);
            EXPECT_FALSE(state->pendingRecompile);
        }
        expectBitIdentical(stats[0], stats[1]);
    }
}

} // namespace
} // namespace nomap
