/**
 * @file
 * Differential test for the batched (per-basic-block) accounting fast
 * path: for every suite program and every architecture, an Engine run
 * with default batched charging must produce ExecutionStats
 * bit-identical to the per-operation reference mode
 * (EngineConfig::perOpAccounting). This is the invariant that lets
 * the executors charge a block's static cost in one call.
 */

#include <gtest/gtest.h>

#include "bytecode/compiler.h"
#include "bytecode/opcode.h"
#include "engine/engine.h"
#include "suites/suite.h"

namespace nomap {
namespace {

ExecutionStats
runStats(const std::string &source, Architecture arch, bool per_op)
{
    EngineConfig config;
    config.arch = arch;
    config.perOpAccounting = per_op;
    Engine engine(config);
    return engine.run(source).stats;
}

void
expectBitIdentical(const ExecutionStats &batched,
                   const ExecutionStats &per_op)
{
    for (size_t b = 0;
         b < static_cast<size_t>(InstrBucket::NumBuckets); ++b) {
        EXPECT_EQ(batched.instr[b], per_op.instr[b])
            << "instr bucket " << b;
    }
    for (size_t k = 0; k < static_cast<size_t>(CheckKind::NumKinds);
         ++k) {
        EXPECT_EQ(batched.checks[k], per_op.checks[k])
            << "check kind " << checkKindName(static_cast<CheckKind>(k));
    }
    // Exact equality on the doubles, not near-equality: instruction
    // cycles accumulate as integer units and meet floating point in
    // one flush, so the two modes must agree bit for bit.
    EXPECT_EQ(batched.cyclesTm, per_op.cyclesTm);
    EXPECT_EQ(batched.cyclesNonTm, per_op.cyclesNonTm);
    EXPECT_EQ(batched.ftlFunctionCalls, per_op.ftlFunctionCalls);
    EXPECT_EQ(batched.deopts, per_op.deopts);
    EXPECT_EQ(batched.baselineCompiles, per_op.baselineCompiles);
    EXPECT_EQ(batched.dfgCompiles, per_op.dfgCompiles);
    EXPECT_EQ(batched.ftlCompiles, per_op.ftlCompiles);
    EXPECT_EQ(batched.ftlRecompiles, per_op.ftlRecompiles);
    EXPECT_EQ(batched.txCommits, per_op.txCommits);
    EXPECT_EQ(batched.txAborts, per_op.txAborts);
    EXPECT_EQ(batched.txAbortsCapacity, per_op.txAbortsCapacity);
    EXPECT_EQ(batched.txAbortsCheck, per_op.txAbortsCheck);
    EXPECT_EQ(batched.txAbortsSof, per_op.txAbortsSof);
    EXPECT_EQ(batched.avgWriteFootprintBytes,
              per_op.avgWriteFootprintBytes);
    EXPECT_EQ(batched.maxWriteFootprintBytes,
              per_op.maxWriteFootprintBytes);
    EXPECT_EQ(batched.maxWriteWaysUsed, per_op.maxWriteWaysUsed);
}

void
compareSuite(const std::vector<BenchmarkSpec> &suite, Architecture arch)
{
    for (const BenchmarkSpec &spec : suite) {
        SCOPED_TRACE(spec.id + " on " + architectureName(arch));
        expectBitIdentical(runStats(spec.source, arch, false),
                           runStats(spec.source, arch, true));
    }
}

class AccountingDiff : public ::testing::TestWithParam<Architecture>
{
};

TEST_P(AccountingDiff, SunSpiderStatsMatchPerOpReference)
{
    compareSuite(sunspiderSuite(), GetParam());
}

TEST_P(AccountingDiff, KrakenStatsMatchPerOpReference)
{
    compareSuite(krakenSuite(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, AccountingDiff,
    ::testing::Values(Architecture::Base, Architecture::NoMapS,
                      Architecture::NoMapB, Architecture::NoMap,
                      Architecture::NoMapBC, Architecture::NoMapRTM),
    [](const ::testing::TestParamInfo<Architecture> &info) {
        return std::string(architectureName(info.param));
    });

// Quickening interacts with the charge plan: in-place rewrites and
// superinstruction fusion happen AFTER computeChargePlan ran at
// compile time, so batched-segment refunds on deopt/abort stay an
// exact inverse only if the plan is invariant under the rewrites
// (computeChargePlan classifies ops through genericOpcodeOf). Verify
// by recomputing the plan from live, quickened+fused code and
// comparing it to the stored plan.
TEST(AccountingChargePlan, InvariantUnderQuickening)
{
    EngineConfig config;
    config.arch = Architecture::NoMap;
    Engine engine(config);
    engine.run(sunspiderSuite()[0].source);
    const CompiledProgram *prog = engine.program();
    ASSERT_NE(prog, nullptr);
    bool any_quickened = false;
    for (const auto &fnp : prog->functions) {
        const BytecodeFunction &fn = *fnp;
        SCOPED_TRACE(fn.name);
        for (const BytecodeInstr &instr : fn.code)
            any_quickened = any_quickened || isQuickened(instr.op);
        BytecodeFunction copy = fn;
        copy.computeChargePlan();
        EXPECT_EQ(copy.runLen, fn.runLen);
        EXPECT_EQ(copy.runExtra, fn.runExtra);
    }
    // Guard against vacuity: the run above must actually have
    // rewritten something.
    EXPECT_TRUE(any_quickened);
}

} // namespace
} // namespace nomap
