#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "htm/capacity_model.h"
#include "inject/fault_plan.h"
#include "memsim/footprint.h"
#include "nomap/adaptive.h"
#include "suites/suite.h"
#include "trace/trace.h"

namespace nomap {
namespace {

/**
 * The adaptive-planning property suite (DESIGN.md §10).
 *
 * Three layers of assurance:
 *
 *  1. **Controller properties** — the AdaptiveController is a pure
 *     state machine over the transaction telemetry stream. Synthetic
 *     streams drive every decision rule directly: the shrink ladder
 *     is monotone under sustained capacity aborts, the learned budget
 *     halves until the floor and then gives up, re-widening needs a
 *     full stability window and is bounded by its budget, site
 *     blacklists are per-pc, and vetoed decisions roll back and are
 *     re-decided. Replaying any recorded stream into a fresh
 *     controller reproduces the identical revision log.
 *
 *  2. **Differential vs static** — on unfaulted paper-suite runs the
 *     controller provably does nothing (every state change needs a
 *     TxAbort), so `--adaptive` must be bit-identical to static
 *     planning across all six architectures: result, print output,
 *     heap state, every ExecutionStats counter, and the full trace
 *     event stream.
 *
 *  3. **Capacity-model contracts** — golden footprint/ways/overflow
 *     tables for both CapacityModel kinds under deterministic insert
 *     streams (regenerate with NOMAP_UPDATE_GOLDEN=1), plus the
 *     cross-parameterization invariant: a transaction that fits a
 *     smaller model of a kind must fit a larger one.
 */

// ---- Golden-file helpers (same convention as test_metrics_golden) -----

std::string
goldenPath(const char *name)
{
    return std::string(NOMAP_GOLDEN_DIR) + "/" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool
updateMode()
{
    const char *v = std::getenv("NOMAP_UPDATE_GOLDEN");
    return v && *v && std::string(v) != "0";
}

void
checkAgainstGolden(const char *name, const std::string &actual)
{
    std::string path = goldenPath(name);
    if (updateMode()) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << path;
        out << actual;
        return;
    }
    std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden " << path
        << " — bootstrap with NOMAP_UPDATE_GOLDEN=1";
    EXPECT_EQ(actual, expected)
        << "capacity-model contract drifted from " << path
        << "; if intentional, regenerate with NOMAP_UPDATE_GOLDEN=1 "
           "and review the diff";
}

// ---- Synthetic telemetry ----------------------------------------------

/** Monotone virtual clock for hand-built event streams. */
struct SynthClock {
    uint64_t now = 1000;
    uint64_t
    tick()
    {
        now += 10;
        return now;
    }
};

TraceEvent
txBegin(uint32_t fn, uint32_t pc, uint64_t vc)
{
    TraceEvent e;
    e.type = TraceEventType::TxBegin;
    e.funcId = fn;
    e.pc = pc;
    e.vcycles = vc;
    return e;
}

TraceEvent
txCommit(uint32_t fn, uint32_t pc, uint64_t bytes, uint64_t vc)
{
    TraceEvent e;
    e.type = TraceEventType::TxCommit;
    e.funcId = fn;
    e.pc = pc;
    e.bytes = bytes;
    e.vcycles = vc;
    return e;
}

TraceEvent
txAbort(uint32_t fn, uint32_t pc, AbortCode code, uint64_t bytes,
        uint64_t vc)
{
    TraceEvent e;
    e.type = TraceEventType::TxAbort;
    e.funcId = fn;
    e.pc = pc;
    e.code = static_cast<uint8_t>(code);
    e.bytes = bytes;
    e.vcycles = vc;
    return e;
}

/**
 * Feed one event and, like an engine whose FTL-call boundary comes
 * immediately after, apply (drain) any decision it produced. Returns
 * the applied revision, if any.
 */
std::optional<PlanRevision>
feed(AdaptiveController &ctl, const TraceEvent &e)
{
    ctl.onTxEvent(e);
    if (ctl.hasPending(e.funcId))
        return ctl.takePending(e.funcId);
    return std::nullopt;
}

/** One full abort: begin + abort, draining any resulting decision. */
std::optional<PlanRevision>
oneAbort(AdaptiveController &ctl, SynthClock &clk, uint32_t fn,
         uint32_t pc, AbortCode code, uint64_t bytes)
{
    feed(ctl, txBegin(fn, pc, clk.tick()));
    return feed(ctl, txAbort(fn, pc, code, bytes, clk.tick()));
}

/** One clean commit, draining any resulting (re-widen) decision. */
std::optional<PlanRevision>
oneCommit(AdaptiveController &ctl, SynthClock &clk, uint32_t fn,
          uint32_t pc, uint64_t bytes)
{
    feed(ctl, txBegin(fn, pc, clk.tick()));
    return feed(ctl, txCommit(fn, pc, bytes, clk.tick()));
}

// ---- 1. Controller properties -----------------------------------------

TEST(AdaptiveController, ShrinkLadderIsMonotoneAndTerminates)
{
    AdaptiveConfig cfg;
    cfg.modelCapacityBytes = 256 * 1024;
    AdaptiveController ctl(cfg);
    SynthClock clk;

    // Sustained capacity aborts at a 32 KB footprint. Every decision
    // needs capacityShrinkStreak (2) consecutive aborts.
    std::vector<PlanRevision> revs;
    for (int i = 0; i < 40 && revs.size() < 8; ++i) {
        auto rev = oneAbort(ctl, clk, 1, 4, AbortCode::Capacity, 32768);
        if (rev)
            revs.push_back(*rev);
    }

    // Ladder: jump to tiled with the learned budget (half the minimum
    // abort footprint), halve to the floor, then give up (level 3).
    ASSERT_EQ(revs.size(), 6u);
    EXPECT_EQ(revs[0].cause, RevisionCause::Shrink);
    EXPECT_EQ(revs[0].scopeLevel, 2u);
    EXPECT_EQ(revs[0].capacityOverrideBytes, 16384u);
    const uint64_t expect_override[] = {16384, 8192, 4096, 2048, 1024};
    for (size_t i = 1; i < 5; ++i) {
        EXPECT_EQ(revs[i].cause, RevisionCause::Tighten) << i;
        EXPECT_EQ(revs[i].scopeLevel, 2u) << i;
        EXPECT_EQ(revs[i].capacityOverrideBytes, expect_override[i])
            << i;
    }
    EXPECT_EQ(revs[5].cause, RevisionCause::Shrink);
    EXPECT_EQ(revs[5].scopeLevel, 3u);
    EXPECT_EQ(revs[5].capacityOverrideBytes, 0u);

    // Monotone: levels never decrease, non-zero overrides never grow.
    for (size_t i = 1; i < revs.size(); ++i) {
        EXPECT_GE(revs[i].scopeLevel, revs[i - 1].scopeLevel);
        if (revs[i].capacityOverrideBytes &&
            revs[i - 1].capacityOverrideBytes) {
            EXPECT_LE(revs[i].capacityOverrideBytes,
                      revs[i - 1].capacityOverrideBytes);
        }
    }

    // At level 3 the ladder terminates: no further decisions, ever.
    uint64_t decided = ctl.revisionsDecided();
    for (int i = 0; i < 20; ++i)
        oneAbort(ctl, clk, 1, 4, AbortCode::Capacity, 32768);
    EXPECT_EQ(ctl.revisionsDecided(), decided);

    auto snap = ctl.functionSnapshot(1);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->level, 3u);
    EXPECT_EQ(snap->minAbortFootprintBytes, 32768u);
    EXPECT_FALSE(snap->pinnedOff);
}

TEST(AdaptiveController, ShrinkNeedsConsecutiveAborts)
{
    AdaptiveController ctl;
    SynthClock clk;

    // Alternate abort / clean commit: the streak never reaches 2, so
    // the controller must hold its fire (hysteresis).
    for (int i = 0; i < 30; ++i) {
        EXPECT_FALSE(
            oneAbort(ctl, clk, 1, 4, AbortCode::Capacity, 32768));
        EXPECT_FALSE(oneCommit(ctl, clk, 1, 4, 1024));
    }
    EXPECT_EQ(ctl.revisionsDecided(), 0u);
}

TEST(AdaptiveController, SofAbortsCountTowardTheCapacityLadder)
{
    AdaptiveController ctl;
    SynthClock clk;
    EXPECT_FALSE(
        oneAbort(ctl, clk, 1, 4, AbortCode::StickyOverflow, 40960));
    auto rev =
        oneAbort(ctl, clk, 1, 4, AbortCode::StickyOverflow, 40960);
    ASSERT_TRUE(rev.has_value());
    EXPECT_EQ(rev->cause, RevisionCause::Shrink);
    EXPECT_EQ(rev->scopeLevel, 2u);
    EXPECT_EQ(rev->capacityOverrideBytes, 20480u);
}

TEST(AdaptiveController, RewidenNeedsFullStabilityWindowAndIsBounded)
{
    AdaptiveConfig cfg;
    cfg.modelCapacityBytes = 256 * 1024;
    AdaptiveController ctl(cfg);
    SynthClock clk;

    // Shrink once: tiled scope, learned budget 16 KB.
    oneAbort(ctl, clk, 1, 4, AbortCode::Capacity, 32768);
    auto rev = oneAbort(ctl, clk, 1, 4, AbortCode::Capacity, 32768);
    ASSERT_TRUE(rev.has_value());
    ASSERT_EQ(rev->capacityOverrideBytes, 16384u);

    // 63 clean commits: window not elapsed, no decision.
    for (int i = 0; i < 63; ++i)
        EXPECT_FALSE(oneCommit(ctl, clk, 1, 4, 1024)) << i;

    // The 64th commit re-widens: budget doubles toward capacity.
    auto w1 = oneCommit(ctl, clk, 1, 4, 1024);
    ASSERT_TRUE(w1.has_value());
    EXPECT_EQ(w1->cause, RevisionCause::Rewiden);
    EXPECT_EQ(w1->scopeLevel, 2u);
    EXPECT_EQ(w1->capacityOverrideBytes, 32768u);

    // Next two windows: 64 KB, then the doubled value crosses half
    // the model capacity and the override clears to the default.
    std::vector<PlanRevision> widens;
    for (int i = 0; i < 200; ++i) {
        auto w = oneCommit(ctl, clk, 1, 4, 1024);
        if (w)
            widens.push_back(*w);
    }
    ASSERT_EQ(widens.size(), 2u);
    EXPECT_EQ(widens[0].capacityOverrideBytes, 65536u);
    EXPECT_EQ(widens[1].capacityOverrideBytes, 0u);
    EXPECT_EQ(widens[1].scopeLevel, 2u);

    // rewidenBudget (3) exhausted: stability alone never re-widens
    // again — the level stays where the last step left it.
    uint64_t decided = ctl.revisionsDecided();
    for (int i = 0; i < 300; ++i)
        EXPECT_FALSE(oneCommit(ctl, clk, 1, 4, 1024));
    EXPECT_EQ(ctl.revisionsDecided(), decided);
    auto snap = ctl.functionSnapshot(1);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->rewidens, 3u);
    EXPECT_EQ(snap->level, 2u);
}

TEST(AdaptiveController, RewidenWithUnknownCapacityClearsOverride)
{
    // modelCapacityBytes == 0 (unknown geometry): one stability
    // window takes the learned budget straight back to the default.
    AdaptiveController ctl; // default cfg: modelCapacityBytes = 0
    SynthClock clk;
    oneAbort(ctl, clk, 1, 4, AbortCode::Capacity, 32768);
    ASSERT_TRUE(oneAbort(ctl, clk, 1, 4, AbortCode::Capacity, 32768));
    std::optional<PlanRevision> w;
    for (int i = 0; i < 64 && !w; ++i)
        w = oneCommit(ctl, clk, 1, 4, 1024);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->cause, RevisionCause::Rewiden);
    EXPECT_EQ(w->capacityOverrideBytes, 0u);
    EXPECT_EQ(w->scopeLevel, 2u);
}

TEST(AdaptiveController, BlacklistIsPerSite)
{
    AdaptiveController ctl; // siteBlacklistStreak = 8
    SynthClock clk;

    // Interleave explicit aborts at pc 7 with clean commits at pc 9:
    // commits at a *different* site must not break pc 7's streak.
    std::optional<PlanRevision> rev;
    int aborts_needed = 0;
    for (int i = 0; i < 8; ++i) {
        ++aborts_needed;
        rev = oneAbort(ctl, clk, 1, 7, AbortCode::ExplicitCheck, 512);
        if (rev)
            break;
        oneCommit(ctl, clk, 1, 9, 1024);
    }
    ASSERT_TRUE(rev.has_value());
    EXPECT_EQ(aborts_needed, 8);
    EXPECT_EQ(rev->cause, RevisionCause::Blacklist);
    EXPECT_EQ(rev->scopeLevel, 0u) << "blacklist keeps the scope";
    ASSERT_TRUE(rev->hasAddedBlacklistPc);
    EXPECT_EQ(rev->addedBlacklistPc, 7u);
    EXPECT_EQ(rev->blacklistPcs, std::vector<uint32_t>{7});

    // The sibling site earns its own blacklist independently; the
    // cumulative pc list stays sorted.
    for (int i = 0; i < 8; ++i)
        rev = oneAbort(ctl, clk, 1, 9, AbortCode::Irrevocable, 512);
    ASSERT_TRUE(rev.has_value());
    EXPECT_EQ(rev->cause, RevisionCause::Blacklist);
    EXPECT_EQ(rev->blacklistPcs, (std::vector<uint32_t>{7, 9}));

    // A commit at a site resets that site's streak.
    for (int i = 0; i < 7; ++i)
        EXPECT_FALSE(
            oneAbort(ctl, clk, 1, 11, AbortCode::ExplicitCheck, 512));
    oneCommit(ctl, clk, 1, 11, 1024);
    for (int i = 0; i < 7; ++i)
        EXPECT_FALSE(
            oneAbort(ctl, clk, 1, 11, AbortCode::ExplicitCheck, 512));
}

TEST(AdaptiveController, FunctionsAreIndependent)
{
    AdaptiveController ctl;
    SynthClock clk;
    // Storm function 1; function 2 stays clean.
    oneAbort(ctl, clk, 1, 4, AbortCode::Capacity, 32768);
    oneCommit(ctl, clk, 2, 6, 1024);
    oneAbort(ctl, clk, 1, 4, AbortCode::Capacity, 32768);
    auto s1 = ctl.functionSnapshot(1);
    auto s2 = ctl.functionSnapshot(2);
    ASSERT_TRUE(s1 && s2);
    EXPECT_EQ(s1->revisions, 1u);
    EXPECT_EQ(s2->revisions, 0u);
    EXPECT_EQ(s2->level, 0u);
    EXPECT_EQ(s2->capacityOverrideBytes, 0u);
}

TEST(AdaptiveController, VetoRollsBackAndRedecides)
{
    AdaptiveController ctl;
    SynthClock clk;
    oneAbort(ctl, clk, 1, 4, AbortCode::Capacity, 32768);
    auto rev = oneAbort(ctl, clk, 1, 4, AbortCode::Capacity, 32768);
    ASSERT_TRUE(rev.has_value());

    // Veto the application (what the adaptive.decision fault site
    // does): the controller's assumed state rolls back...
    ctl.noteVetoed(*rev);
    auto snap = ctl.functionSnapshot(1);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->level, rev->prevScopeLevel);
    EXPECT_EQ(snap->capacityOverrideBytes,
              rev->prevCapacityOverrideBytes);

    // ...and once the abort streak rebuilds it re-decides the same
    // thing (same cause/level/override — only time and ordinal move).
    oneAbort(ctl, clk, 1, 4, AbortCode::Capacity, 32768);
    auto again = oneAbort(ctl, clk, 1, 4, AbortCode::Capacity, 32768);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->cause, rev->cause);
    EXPECT_EQ(again->scopeLevel, rev->scopeLevel);
    EXPECT_EQ(again->capacityOverrideBytes,
              rev->capacityOverrideBytes);
    EXPECT_EQ(again->blacklistPcs, rev->blacklistPcs);

    // Vetoed blacklists un-add the pc.
    for (int i = 0; i < 8; ++i)
        rev = oneAbort(ctl, clk, 1, 7, AbortCode::ExplicitCheck, 512);
    ASSERT_TRUE(rev && rev->hasAddedBlacklistPc);
    ctl.noteVetoed(*rev);
    snap = ctl.functionSnapshot(1);
    ASSERT_TRUE(snap.has_value());
    EXPECT_TRUE(snap->blacklistPcs.empty());
}

TEST(AdaptiveController, ForcedBlacklistPinsTheFunctionOff)
{
    AdaptiveController ctl;
    SynthClock clk;
    ctl.noteForcedBlacklist(1);
    auto snap = ctl.functionSnapshot(1);
    ASSERT_TRUE(snap.has_value());
    EXPECT_TRUE(snap->pinnedOff);
    EXPECT_EQ(snap->level, 3u);

    // Pinned functions never propose again, whatever the telemetry.
    for (int i = 0; i < 30; ++i) {
        EXPECT_FALSE(
            oneAbort(ctl, clk, 1, 4, AbortCode::Capacity, 32768));
        EXPECT_FALSE(
            oneAbort(ctl, clk, 1, 7, AbortCode::ExplicitCheck, 512));
    }
    for (int i = 0; i < 200; ++i)
        EXPECT_FALSE(oneCommit(ctl, clk, 1, 4, 1024));
    EXPECT_EQ(ctl.revisionsDecided(), 0u);
}

/** Tiny deterministic PRNG (no libc rand: must be cross-platform). */
struct XorShift64 {
    uint64_t s;
    explicit XorShift64(uint64_t seed) : s(seed ? seed : 0x9e3779b9) {}
    uint64_t
    next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
};

/** A mixed pseudo-random (but fully deterministic) telemetry stream. */
std::vector<TraceEvent>
syntheticStream(uint64_t seed, int n)
{
    XorShift64 rng(seed);
    SynthClock clk;
    std::vector<TraceEvent> out;
    for (int i = 0; i < n; ++i) {
        uint32_t fn = 1 + static_cast<uint32_t>(rng.next() % 3);
        uint32_t pc = 4 + 2 * static_cast<uint32_t>(rng.next() % 4);
        out.push_back(txBegin(fn, pc, clk.tick()));
        uint64_t roll = rng.next() % 100;
        uint64_t bytes = 1024 + (rng.next() % 64) * 1024;
        if (roll < 40) {
            AbortCode code = roll < 20 ? AbortCode::Capacity
                             : roll < 30
                                 ? AbortCode::ExplicitCheck
                                 : AbortCode::StickyOverflow;
            out.push_back(txAbort(fn, pc, code, bytes, clk.tick()));
        } else {
            out.push_back(txCommit(fn, pc, bytes, clk.tick()));
        }
    }
    return out;
}

TEST(AdaptiveController, ReplayingAStreamReproducesTheRevisionLog)
{
    for (uint64_t seed : {7ull, 1234ull, 0xdecafbadull}) {
        std::vector<TraceEvent> stream = syntheticStream(seed, 4000);
        AdaptiveConfig cfg;
        cfg.modelCapacityBytes = 256 * 1024;

        AdaptiveController a(cfg), b(cfg);
        for (const TraceEvent &e : stream)
            feed(a, e);
        for (const TraceEvent &e : stream)
            feed(b, e);

        ASSERT_GT(a.revisionsDecided(), 0u) << "stream too tame";
        ASSERT_EQ(a.revisionsDecided(), b.revisionsDecided());
        for (size_t i = 0; i < a.revisionLog().size(); ++i) {
            EXPECT_TRUE(
                a.revisionLog()[i].sameDecision(b.revisionLog()[i]))
                << "seed " << seed << " revision " << i;
        }
    }
}

// ---- 2. Engine-level: replay determinism and the differential ---------

/** Storm workload: ~128 KB of contiguous writes per call (under an
 *  htm.ways@1 squeeze every nominal-geometry transaction
 *  capacity-aborts; see bench/abort_storm.cc for the full story). */
std::string
stormProgram(int rounds)
{
    std::string src = R"JS(
var N = 16384;
var A = [];
for (var i = 0; i < N; i++) A[i] = i % 17;
function storm(a, n) {
    var s = 0;
    for (var j = 0; j < n; j++) {
        a[j] = (a[j] + j) % 1021;
        s = (s + a[j]) % 65536;
    }
    return s;
}
var out = 0;
for (var r = 0; r < )JS";
    src += std::to_string(rounds);
    src += R"JS(; r++) out = (out + storm(A, N)) % 65536;
result = out;
)JS";
    return src;
}

EngineConfig
stormConfig(bool adaptive, size_t trace_capacity = 0)
{
    EngineConfig config;
    config.arch = Architecture::NoMap;
    config.adaptive = adaptive;
    config.traceCapacity = trace_capacity;
    // Tier up fast so the run is mostly FTL transactions.
    config.baselineThreshold = 2;
    config.dfgThreshold = 4;
    config.ftlThreshold = 8;
    return config;
}

TEST(AdaptiveEngine, RecordedRunReplaysToTheIdenticalRevisionLog)
{
    // A live adaptive run under an abort storm, with tracing on: the
    // trace stream is a complete transcript (Tx* telemetry plus one
    // PassReport per applied revision marking the engine's
    // application points). Replaying it into a fresh controller —
    // draining pending decisions exactly at the application marks —
    // must reproduce the identical revision log.
    FaultPlan squeeze = FaultPlan::parse("htm.ways@1");
    Engine engine(stormConfig(true, 1 << 16));
    engine.armFaultPlan(&squeeze);
    engine.run(stormProgram(40));

    ASSERT_NE(engine.adaptive(), nullptr);
    ASSERT_NE(engine.trace(), nullptr);
    ASSERT_EQ(engine.trace()->dropped(), 0u)
        << "trace capacity too small for a faithful transcript";
    const std::vector<TraceEvent> &events = engine.trace()->events();
    const std::vector<PlanRevision> &live =
        engine.adaptive()->revisionLog();
    ASSERT_GT(live.size(), 0u);

    AdaptiveController replay(engine.adaptive()->config());
    for (const TraceEvent &e : events) {
        switch (e.type) {
          case TraceEventType::TxBegin:
          case TraceEventType::TxCommit:
          case TraceEventType::TxAbort:
            replay.onTxEvent(e);
            break;
          case TraceEventType::PassReport:
            if (e.aux ==
                static_cast<uint16_t>(TracePassId::Adaptive)) {
                EXPECT_TRUE(replay.takePending(e.funcId).has_value())
                    << "application mark with no pending decision";
            }
            break;
          default:
            break;
        }
    }

    ASSERT_EQ(replay.revisionsDecided(), live.size());
    for (size_t i = 0; i < live.size(); ++i) {
        EXPECT_TRUE(replay.revisionLog()[i].sameDecision(live[i]))
            << "revision " << i;
    }
}

struct Observation {
    std::string resultString;
    std::string printed;
    std::string heap;
    ExecutionStats stats;
    uint64_t revisions = 0;
};

std::string
heapFingerprint(Engine &engine)
{
    Heap &heap = engine.heap();
    std::string out;
    for (uint32_t i = 0; i < heap.globalCount(); ++i) {
        out += heap.globalName(i);
        out += '=';
        out += heap.valueToDisplayString(heap.getGlobal(i));
        out += '\n';
    }
    return out;
}

Observation
runOnce(Architecture arch, bool adaptive, const std::string &src)
{
    EngineConfig config;
    config.arch = arch;
    config.adaptive = adaptive;
    Engine engine(config);
    EngineResult r = engine.run(src);
    Observation obs;
    obs.resultString = r.resultString;
    obs.printed = r.printed;
    obs.heap = heapFingerprint(engine);
    obs.stats = r.stats;
    if (engine.adaptive())
        obs.revisions = engine.adaptive()->revisionsDecided();
    return obs;
}

/** Every ExecutionStats field, bit for bit (doubles compared exactly:
 *  identical event streams must produce identical arithmetic). */
void
expectStatsBitIdentical(const ExecutionStats &a,
                        const ExecutionStats &b,
                        const std::string &what)
{
    for (size_t i = 0;
         i < static_cast<size_t>(InstrBucket::NumBuckets); ++i)
        EXPECT_EQ(a.instr[i], b.instr[i]) << what << " instr[" << i
                                          << "]";
    for (size_t i = 0; i < static_cast<size_t>(CheckKind::NumKinds);
         ++i)
        EXPECT_EQ(a.checks[i], b.checks[i])
            << what << " checks[" << i << "]";
    EXPECT_EQ(a.cyclesTm, b.cyclesTm) << what;
    EXPECT_EQ(a.cyclesNonTm, b.cyclesNonTm) << what;
    EXPECT_EQ(a.ftlFunctionCalls, b.ftlFunctionCalls) << what;
    EXPECT_EQ(a.deopts, b.deopts) << what;
    EXPECT_EQ(a.baselineCompiles, b.baselineCompiles) << what;
    EXPECT_EQ(a.dfgCompiles, b.dfgCompiles) << what;
    EXPECT_EQ(a.ftlCompiles, b.ftlCompiles) << what;
    EXPECT_EQ(a.ftlRecompiles, b.ftlRecompiles) << what;
    EXPECT_EQ(a.txCommits, b.txCommits) << what;
    EXPECT_EQ(a.txAborts, b.txAborts) << what;
    EXPECT_EQ(a.txAbortsCapacity, b.txAbortsCapacity) << what;
    EXPECT_EQ(a.txAbortsCheck, b.txAbortsCheck) << what;
    EXPECT_EQ(a.txAbortsSof, b.txAbortsSof) << what;
    EXPECT_EQ(a.avgWriteFootprintBytes, b.avgWriteFootprintBytes)
        << what;
    EXPECT_EQ(a.maxWriteFootprintBytes, b.maxWriteFootprintBytes)
        << what;
    EXPECT_EQ(a.maxWriteWaysUsed, b.maxWriteWaysUsed) << what;
}

const Architecture kAllArchs[] = {
    Architecture::Base,    Architecture::NoMapS,
    Architecture::NoMapB,  Architecture::NoMap,
    Architecture::NoMapBC, Architecture::NoMapRTM,
};

TEST(AdaptiveEngine, UnfaultedSuitesAreBitIdenticalToStatic)
{
    // The differential: with no faults there are no aborts, so the
    // controller must decide nothing and --adaptive must be
    // indistinguishable from static planning — results, print
    // output, heap state, and every counter — on every benchmark of
    // both paper suites, across all six architectures.
    for (Architecture arch : kAllArchs) {
        for (const auto *suite :
             {&sunspiderSuite(), &krakenSuite()}) {
            for (const BenchmarkSpec &bench : *suite) {
                std::string what = std::string(architectureName(arch)) +
                                   " " + bench.id;
                Observation s = runOnce(arch, false, bench.source);
                Observation a = runOnce(arch, true, bench.source);
                EXPECT_EQ(a.revisions, 0u) << what;
                EXPECT_EQ(a.resultString, s.resultString) << what;
                EXPECT_EQ(a.printed, s.printed) << what;
                EXPECT_EQ(a.heap, s.heap) << what;
                expectStatsBitIdentical(a.stats, s.stats, what);
            }
        }
    }
}

TEST(AdaptiveEngine, UnfaultedTraceStreamsAreIdenticalToStatic)
{
    // Same differential, one level deeper: the full trace event
    // stream (every begin/commit/tier-up/pass report with its
    // virtual-cycle timestamp) must match event for event. A few
    // representative benchmarks per suite keep the runtime sane.
    std::vector<const BenchmarkSpec *> picks;
    for (size_t i = 0; i < 3; ++i) {
        picks.push_back(&sunspiderSuite()[i]);
        picks.push_back(&krakenSuite()[i]);
    }
    for (Architecture arch : kAllArchs) {
        for (const BenchmarkSpec *bench : picks) {
            std::string what = std::string(architectureName(arch)) +
                               " " + bench->id;
            std::vector<TraceEvent> streams[2];
            for (int adaptive = 0; adaptive < 2; ++adaptive) {
                EngineConfig config;
                config.arch = arch;
                config.adaptive = adaptive != 0;
                config.traceCapacity = 1 << 15;
                Engine engine(config);
                engine.run(bench->source);
                streams[adaptive] = engine.trace()->events();
            }
            EXPECT_EQ(streams[0].size(), streams[1].size()) << what;
            EXPECT_TRUE(streams[0] == streams[1]) << what;
            EXPECT_EQ(traceText(streams[0]), traceText(streams[1]))
                << what;
        }
    }
}

TEST(AdaptiveEngine, StormConvergesWhereStaticGivesUp)
{
    // Under the one-way squeeze, static escalation ladders to level 3
    // and stops committing; the adaptive engine learns the squeezed
    // capacity from abort footprints and keeps transacting. Same
    // final result as the unfaulted Base reference in all cases.
    const std::string src = stormProgram(40);
    Observation ref = runOnce(Architecture::Base, false, src);

    FaultPlan squeeze = FaultPlan::parse("htm.ways@1");

    Engine sEngine(stormConfig(false));
    sEngine.armFaultPlan(&squeeze);
    EngineResult sr = sEngine.run(src);
    const HtmStats &sh = sEngine.htm().stats();

    Engine aEngine(stormConfig(true));
    aEngine.armFaultPlan(&squeeze);
    EngineResult ar = aEngine.run(src);
    const HtmStats &ah = aEngine.htm().stats();

    EXPECT_EQ(sr.resultString, ref.resultString);
    EXPECT_EQ(ar.resultString, ref.resultString);

    // Static: the whole-function ladder ends untransactional.
    const FunctionState *sstate = sEngine.functionState("storm");
    ASSERT_NE(sstate, nullptr);
    EXPECT_EQ(sstate->txScopeLevel, 3u);

    // Adaptive: strictly more commits, and a converged plan — the
    // tiled scope with a learned budget that fits one-way hardware.
    EXPECT_GT(ah.commits, sh.commits);
    EXPECT_GT(ah.commits, 0u);
    const FunctionState *astate = aEngine.functionState("storm");
    ASSERT_NE(astate, nullptr);
    EXPECT_EQ(astate->txScopeLevel, 2u);
    EXPECT_GE(astate->capacityOverrideBytes, 1024u);
    EXPECT_LE(astate->capacityOverrideBytes,
              aEngine.htm().writeCapacityBytes());

    // Convergence, from the controller's own frozen counters: the
    // abort rate after the last revision is strictly below the rate
    // before the first (which was all aborts).
    ASSERT_NE(aEngine.adaptive(), nullptr);
    const std::vector<PlanRevision> &log =
        aEngine.adaptive()->revisionLog();
    ASSERT_GT(log.size(), 0u);
    auto snap =
        aEngine.adaptive()->functionSnapshot(log.front().funcId);
    ASSERT_TRUE(snap.has_value());
    uint64_t before_aborts = snap->abortsBeforeFirstRevision;
    uint64_t before_commits = snap->commitsBeforeFirstRevision;
    uint64_t after_aborts = snap->aborts - snap->abortsAtLastRevision;
    uint64_t after_commits =
        snap->commits - snap->commitsAtLastRevision;
    ASSERT_GT(before_aborts, 0u);
    ASSERT_GT(after_commits, 0u);
    double before_rate =
        static_cast<double>(before_aborts) /
        static_cast<double>(before_aborts + before_commits);
    double after_rate =
        static_cast<double>(after_aborts) /
        static_cast<double>(after_aborts + after_commits);
    EXPECT_LT(after_rate, before_rate);
    EXPECT_EQ(after_aborts, 0u) << "converged plan still aborting";
}

TEST(AdaptiveEngine, LimitedSetModelPreservesSemantics)
{
    // The swappable geometry changes *when* transactions abort, never
    // what programs compute. The limited-set model is far smaller
    // than the cache-backed one, so the storm aborts even unfaulted;
    // results must still match Base, with and without adaptation.
    const std::string src = stormProgram(12);
    Observation ref = runOnce(Architecture::Base, false, src);
    for (Architecture arch :
         {Architecture::NoMap, Architecture::NoMapRTM}) {
        for (int adaptive = 0; adaptive < 2; ++adaptive) {
            EngineConfig config = stormConfig(adaptive != 0);
            config.arch = arch;
            config.capacityModel = CapacityModelKind::LimitedSet;
            Engine engine(config);
            EngineResult r = engine.run(src);
            EXPECT_EQ(r.resultString, ref.resultString)
                << architectureName(arch) << " adaptive=" << adaptive;
        }
    }
}

// ---- 3. Capacity-model goldens and cross-model invariants -------------

struct StreamSpec {
    const char *name;
    uint64_t (*addr)(uint64_t i);
};

const StreamSpec kStreams[] = {
    // Contiguous lines: the storm workload's shape.
    {"seq", [](uint64_t i) { return i * kLineSize; }},
    // Page-strided: pathological for set-associative geometry (every
    // address lands in one of 8 sets under 512-set/64-line shapes).
    {"stride4k", [](uint64_t i) { return i * 4096; }},
    // Pseudo-random lines from a fixed xorshift walk.
    {"xorshift",
     [](uint64_t i) {
         uint64_t s = i + 0x9e3779b97f4a7c15ull;
         s ^= s << 13;
         s ^= s >> 7;
         s ^= s << 17;
         return (s % 65536) * kLineSize;
     }},
};

/** Insert @p stream until overflow (or @p limit); one golden row. */
std::string
modelRow(CapacityModel &model, const char *kind_name,
         const char *geom_name, const char *squeeze_name,
         const StreamSpec &stream, uint64_t limit)
{
    uint64_t accepted = 0;
    bool overflowed = false;
    for (uint64_t i = 0; i < limit; ++i) {
        if (!model.insert(stream.addr(i))) {
            overflowed = true;
            break;
        }
        ++accepted;
    }
    std::ostringstream row;
    row << "model=" << kind_name << " geom=" << geom_name
        << " squeeze=" << squeeze_name << " stream=" << stream.name
        << " cap=" << model.capacityBytes()
        << " ways=" << model.numWays() << " accepted=" << accepted
        << " footprint=" << model.footprintBytes()
        << " maxWays=" << model.maxWaysUsed() << " overflow="
        << (overflowed ? std::to_string(accepted) : "none") << "\n";
    model.clear();
    return row.str();
}

TEST(CapacityModelGolden, FootprintWaysOverflowTables)
{
    // Pins both models' observable geometry — capacity, ways,
    // accepted-line counts, footprints, and overflow points — under
    // the paper's two write geometries (ROT 256K/8, RTM 32K/8), both
    // nominal and squeezed to one way. Regenerate deliberately with
    // NOMAP_UPDATE_GOLDEN=1 and review the diff.
    struct Geom {
        const char *name;
        uint32_t bytes;
        uint32_t ways;
    };
    const Geom geoms[] = {{"rot", 256 * 1024, 8}, {"rtm", 32 * 1024, 8}};
    const CapacityModelKind kinds[] = {CapacityModelKind::WaysAssoc,
                                       CapacityModelKind::LimitedSet};

    std::string table =
        "# capacity-model contract: write-set geometry under "
        "deterministic insert streams\n";
    for (CapacityModelKind kind : kinds) {
        for (const Geom &g : geoms) {
            for (bool squeezed : {false, true}) {
                for (const StreamSpec &stream : kStreams) {
                    auto model = makeWriteCapacityModel(kind, g.bytes,
                                                        g.ways);
                    if (squeezed)
                        model->squeezeWays(1);
                    table += modelRow(*model,
                                      capacityModelKindName(kind),
                                      g.name,
                                      squeezed ? "ways1" : "-",
                                      stream, 8192);
                }
            }
        }
    }

    // Read-set companions: the ways-assoc read set overflows like a
    // cache; the bloom signature records lines but never overflows.
    table += "# read-set models\n";
    for (CapacityModelKind kind : kinds) {
        auto model = makeReadCapacityModel(kind, 256 * 1024, 8);
        table += modelRow(*model, capacityModelKindName(kind),
                          "read-rot", "-", kStreams[2], 8192);
    }
    checkAgainstGolden("capacity_models.golden.txt", table);
}

TEST(CapacityModelProperty, FittingASmallerModelImpliesTheLarger)
{
    // The cross-model invariant the adaptive controller's learned
    // budgets lean on: any insert sequence accepted by a smaller
    // parameterization of a kind is accepted by a larger one.
    const CapacityModelKind kinds[] = {CapacityModelKind::WaysAssoc,
                                       CapacityModelKind::LimitedSet};
    for (CapacityModelKind kind : kinds) {
        for (const StreamSpec &stream : kStreams) {
            auto small = makeWriteCapacityModel(kind, 32 * 1024, 8);
            auto large = makeWriteCapacityModel(kind, 256 * 1024, 8);
            ASSERT_LT(small->capacityBytes(), large->capacityBytes());
            for (uint64_t i = 0; i < 8192; ++i) {
                uint64_t addr = stream.addr(i);
                if (!small->insert(addr))
                    break;
                EXPECT_TRUE(large->insert(addr))
                    << capacityModelKindName(kind) << " "
                    << stream.name << " line " << i
                    << ": fits 32K but not 256K";
            }
        }
    }
}

TEST(CapacityModelProperty, SqueezeShrinksMonotonically)
{
    for (CapacityModelKind kind :
         {CapacityModelKind::WaysAssoc, CapacityModelKind::LimitedSet}) {
        auto model = makeWriteCapacityModel(kind, 256 * 1024, 8);
        uint64_t nominal = model->capacityBytes();
        model->squeezeWays(2);
        uint64_t squeezed = model->capacityBytes();
        EXPECT_LT(squeezed, nominal) << capacityModelKindName(kind);
        // A later, larger squeeze value never re-grows the set.
        model->squeezeWays(4);
        EXPECT_EQ(model->capacityBytes(), squeezed)
            << capacityModelKindName(kind);
        model->squeezeWays(1);
        EXPECT_LT(model->capacityBytes(), squeezed)
            << capacityModelKindName(kind);

        // And a squeezed model accepts a subset of the nominal one.
        auto fresh = makeWriteCapacityModel(kind, 256 * 1024, 8);
        auto tight = makeWriteCapacityModel(kind, 256 * 1024, 8);
        tight->squeezeWays(1);
        for (uint64_t i = 0; i < 8192; ++i) {
            if (!tight->insert(i * kLineSize))
                break;
            EXPECT_TRUE(fresh->insert(i * kLineSize))
                << capacityModelKindName(kind) << " line " << i;
        }
    }
}

} // namespace
} // namespace nomap
