#include <gtest/gtest.h>

#include "bytecode/compiler.h"
#include "js/parser.h"
#include "support/logging.h"

namespace nomap {
namespace {

class BytecodeTest : public ::testing::Test
{
  protected:
    BytecodeTest() : heap(shapes, strings) {}

    CompiledProgram
    compileSrc(const std::string &src)
    {
        Program ast = parseProgram(src);
        return compile(ast, heap);
    }

    static uint32_t
    countOp(const BytecodeFunction &fn, Opcode op)
    {
        uint32_t n = 0;
        for (const BytecodeInstr &instr : fn.code)
            n += instr.op == op;
        return n;
    }

    ShapeTable shapes;
    StringTable strings;
    Heap heap;
};

TEST_F(BytecodeTest, MainIsFunctionZero)
{
    CompiledProgram p = compileSrc("var x = 1;");
    ASSERT_GE(p.functions.size(), 1u);
    EXPECT_EQ(p.main().name, "<main>");
    EXPECT_EQ(p.main().funcId, 0u);
}

TEST_F(BytecodeTest, TopLevelVarsAreGlobals)
{
    compileSrc("var x = 1; var y = 2;");
    EXPECT_GE(heap.findGlobal("x"), 0);
    EXPECT_GE(heap.findGlobal("y"), 0);
}

TEST_F(BytecodeTest, FunctionLocalsAreRegisters)
{
    CompiledProgram p =
        compileSrc("function f(a, b) { var c = a + b; return c; }");
    const BytecodeFunction &fn = *p.functions[1];
    EXPECT_EQ(fn.numParams, 2u);
    EXPECT_EQ(fn.numLocals, 3u); // a, b, c.
    EXPECT_GE(fn.numRegs, fn.numLocals);
    // Locals never touch the global table.
    EXPECT_EQ(countOp(fn, Opcode::LoadGlobal), 0u);
    EXPECT_EQ(countOp(fn, Opcode::StoreGlobal), 0u);
    EXPECT_LT(heap.findGlobal("c"), 0);
}

TEST_F(BytecodeTest, VarHoisting)
{
    // `v` is used before its declaration statement: still a local.
    CompiledProgram p = compileSrc(
        "function f() { v = 3; var v; return v; }");
    EXPECT_EQ(p.functions[1]->numLocals, 1u);
    EXPECT_LT(heap.findGlobal("v"), 0);
}

TEST_F(BytecodeTest, LoopHeadersGetIds)
{
    CompiledProgram p = compileSrc(
        "function f(n) { for (var i = 0; i < n; i++) {"
        " for (var j = 0; j < n; j++) {} } while (n) n--; }");
    const BytecodeFunction &fn = *p.functions[1];
    EXPECT_EQ(fn.numLoops, 3u);
    EXPECT_EQ(countOp(fn, Opcode::LoopHeader), 3u);
}

TEST_F(BytecodeTest, BuiltinsResolveAtCompileTime)
{
    CompiledProgram p = compileSrc(
        "function f(x) { return Math.sqrt(x) + Math.floor(x); }");
    EXPECT_EQ(countOp(*p.functions[1], Opcode::CallNative), 2u);
    EXPECT_EQ(countOp(*p.functions[1], Opcode::CallMethod), 0u);
}

TEST_F(BytecodeTest, MethodCallsStayDynamic)
{
    CompiledProgram p =
        compileSrc("function f(s) { return s.charCodeAt(0); }");
    EXPECT_EQ(countOp(*p.functions[1], Opcode::CallMethod), 1u);
}

TEST_F(BytecodeTest, UnknownCalleeIsError)
{
    EXPECT_THROW(compileSrc("nope();"), FatalError);
}

TEST_F(BytecodeTest, DuplicateFunctionIsError)
{
    EXPECT_THROW(compileSrc("function f() {} function f() {}"),
                 FatalError);
}

TEST_F(BytecodeTest, BreakOutsideLoopIsError)
{
    EXPECT_THROW(compileSrc("break;"), FatalError);
}

TEST_F(BytecodeTest, CallsResolveToFunctionIds)
{
    CompiledProgram p = compileSrc(
        "function g() { return 1; } function f() { return g(); }"
        "f();");
    int32_t g = p.findFunction("g");
    ASSERT_GE(g, 0);
    const BytecodeFunction &fn =
        *p.functions[static_cast<size_t>(p.findFunction("f"))];
    bool found = false;
    for (const BytecodeInstr &instr : fn.code) {
        if (instr.op == Opcode::Call)
            found = instr.imm == static_cast<uint32_t>(g);
    }
    EXPECT_TRUE(found);
}

TEST_F(BytecodeTest, ForwardReferenceWorks)
{
    // f calls g which is declared later.
    CompiledProgram p = compileSrc(
        "function f() { return g(); } function g() { return 2; }");
    EXPECT_GE(p.findFunction("g"), 0);
}

TEST_F(BytecodeTest, ConstantsDeduplicated)
{
    CompiledProgram p = compileSrc(
        "function f() { return 7 + 7 + 7; }");
    EXPECT_EQ(p.functions[1]->constants.size(), 1u);
}

TEST_F(BytecodeTest, ObjectLiteralDescriptors)
{
    CompiledProgram p = compileSrc(
        "function f() { return {alpha: 1, beta: 2}; }");
    const BytecodeFunction &fn = *p.functions[1];
    ASSERT_EQ(fn.objectDescs.size(), 1u);
    ASSERT_EQ(fn.objectDescs[0].nameIds.size(), 2u);
    EXPECT_EQ(strings.get(fn.objectDescs[0].nameIds[0]), "alpha");
    EXPECT_EQ(strings.get(fn.objectDescs[0].nameIds[1]), "beta");
}

TEST_F(BytecodeTest, ProfileSizedToCode)
{
    CompiledProgram p = compileSrc(
        "function f(a) { for (var i = 0; i < a; i++) {} }");
    const BytecodeFunction &fn = *p.functions[1];
    EXPECT_EQ(fn.profile.arith.size(), fn.code.size());
    EXPECT_EQ(fn.profile.loops.size(), fn.numLoops);
}

TEST_F(BytecodeTest, SwitchCompilesToStrictEqChain)
{
    CompiledProgram p = compileSrc(
        "function f(n) { switch (n) { case 1: return 10;"
        " case 2: return 20; default: return 0; } }");
    const BytecodeFunction &fn = *p.functions[1];
    uint32_t eq_tests = 0;
    for (const BytecodeInstr &instr : fn.code) {
        if (instr.op == Opcode::Binary &&
            static_cast<BinaryOp>(instr.imm) == BinaryOp::StrictEq) {
            ++eq_tests;
        }
    }
    EXPECT_EQ(eq_tests, 2u); // One per non-default clause.
}

TEST_F(BytecodeTest, MathConstantsFoldToLiterals)
{
    CompiledProgram p =
        compileSrc("function f() { return Math.PI + Math.E; }");
    const BytecodeFunction &fn = *p.functions[1];
    EXPECT_EQ(countOp(fn, Opcode::GetProp), 0u);
    EXPECT_EQ(countOp(fn, Opcode::LoadGlobal), 0u);
    bool has_pi = false;
    for (const Value &v : fn.constants) {
        has_pi |= v.isBoxedDouble() &&
                  v.asBoxedDouble() > 3.14 && v.asBoxedDouble() < 3.15;
    }
    EXPECT_TRUE(has_pi);
}

TEST_F(BytecodeTest, DisassembleMentionsOps)
{
    CompiledProgram p = compileSrc("function f(a) { return a + 1; }");
    std::string dis = p.functions[1]->disassemble();
    EXPECT_NE(dis.find("Binary"), std::string::npos);
    EXPECT_NE(dis.find("Return"), std::string::npos);
}

} // namespace
} // namespace nomap
