#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/accounting.h"
#include "engine/engine.h"
#include "inject/fault_plan.h"
#include "ir/ir.h"
#include "service/engine_pool.h"
#include "testing/program_generator.h"

namespace nomap {
namespace {

/**
 * Chaos harness: composes deterministic FaultPlans (src/inject/) with
 * generated and hand-written programs across all six architectures,
 * and asserts the system's core robustness property — an injected
 * abort, forced check failure, OSR exit, squeezed cache, failed
 * compile, or cancellation may change *how* a program executes
 * (aborts, deopts, recompiles) but never *what* it computes. Every
 * faulted run is compared bit-for-bit against the unfaulted Base run:
 * result string, print() output, and the full heap-visible global
 * state.
 *
 * Each comparison is one (program, plan, architecture) combo; the
 * census test at the end asserts the suite covers at least 200.
 *
 * Tests run in definition order (the census must come last), so keep
 * every test in the `Chaos` suite and don't shuffle.
 */

int g_combos = 0;

/** Everything a program can leave behind that a tenant could see. */
struct Observation {
    std::string resultString;
    std::string printed;
    std::string heap;
    ExecutionStats stats;
};

std::string
heapFingerprint(Engine &engine)
{
    Heap &heap = engine.heap();
    std::string out;
    for (uint32_t i = 0; i < heap.globalCount(); ++i) {
        out += heap.globalName(i);
        out += '=';
        out += heap.valueToDisplayString(heap.getGlobal(i));
        out += '\n';
    }
    return out;
}

EngineConfig
configFor(Architecture arch)
{
    EngineConfig config;
    config.arch = arch;
    return config;
}

/** Run @p src on a fresh engine; @p plan may be null (clean run). */
Observation
runOnce(const EngineConfig &config, const std::string &src,
        const FaultPlan *plan)
{
    Engine engine(config);
    engine.armFaultPlan(plan); // nullptr also disarms any env plan.
    EngineResult r = engine.run(src);
    Observation obs;
    obs.resultString = r.resultString;
    obs.printed = r.printed;
    obs.heap = heapFingerprint(engine);
    obs.stats = r.stats;
    return obs;
}

/** Compare a faulted run to the unfaulted Base reference. */
void
expectSameSemantics(const Observation &got, const Observation &ref,
                    const std::string &what)
{
    EXPECT_EQ(got.resultString, ref.resultString) << what;
    EXPECT_EQ(got.printed, ref.printed) << what;
    EXPECT_EQ(got.heap, ref.heap) << what;
    ++g_combos;
}

const Architecture kAllArchs[] = {
    Architecture::Base,    Architecture::NoMapS,
    Architecture::NoMapB,  Architecture::NoMap,
    Architecture::NoMapBC, Architecture::NoMapRTM,
};

// ---- 1. Generated programs × plan matrix × all architectures ----------

const char *kMatrixPlans[] = {
    "htm.abort@1",
    "htm.abort@2",
    "htm.abort@5",
    "htm.abort.capacity@1",
    "htm.abort.capacity@3",
    "htm.abort.irrevocable@2",
    "htm.sof@1",
    "htm.store@7",
    "htm.store@64",
    "htm.ways@1",
    "htm.ways@2",
    "check.bounds@3",
    "check.any@11",
    "check.type@2,check.property@2",
    "engine.compile@1",
    "engine.watchdog@2,htm.abort@4",
};

TEST(Chaos, FaultMatrixPreservesSemanticsEverywhere)
{
    for (uint64_t seed : {3ull, 11ull}) {
        testutil::ProgramGenerator gen(seed);
        std::string src = gen.generate();
        Observation ref =
            runOnce(configFor(Architecture::Base), src, nullptr);
        ASSERT_FALSE(ref.resultString.empty());
        ASSERT_NE(ref.resultString, "undefined") << src;

        for (const char *text : kMatrixPlans) {
            FaultPlan plan = FaultPlan::parse(text);
            for (Architecture arch : kAllArchs) {
                Observation got =
                    runOnce(configFor(arch), src, &plan);
                expectSameSemantics(
                    got, ref,
                    std::string("seed ") + std::to_string(seed) +
                        " plan \"" + text + "\" arch " +
                        architectureName(arch) + "\nreproduce: " +
                        testutil::reproHint(seed) +
                        " NOMAP_FAULT_PLAN=\"" + text +
                        "\" ./tests/test_chaos\nprogram:\n" + src);
            }
        }
    }
}

// ---- 2. Abort-point sweep across whole transaction lifetimes ----------

/**
 * A small, hot, array-writing loop. With the lowered thresholds below
 * it tiers to FTL within a few calls and then opens a transaction per
 * invocation, giving dozens of begin/store/commit/watchdog points to
 * sweep abort injection across.
 */
const char kSweepProgram[] = R"JS(
var A = [];
for (var i = 0; i < 20; i++) A[i] = i % 7;
function work(a) {
    var s = 0;
    for (var j = 0; j < a.length; j++) {
        a[j] = (a[j] + 3) % 19;
        s = (s + a[j] * 2) % 1009;
    }
    return s;
}
var out = 0;
for (var r = 0; r < 80; r++) out = (out + work(A)) % 65536;
result = out;
)JS";

EngineConfig
sweepConfig(Architecture arch)
{
    EngineConfig config;
    config.arch = arch;
    config.baselineThreshold = 2;
    config.dfgThreshold = 4;
    config.ftlThreshold = 8;
    return config;
}

/**
 * Run the sweep program with a never-firing probe plan and report how
 * many dynamic occurrences each site of interest has — i.e. how many
 * injection points the sweeps below can choose from.
 */
uint64_t
probeOccurrences(Architecture arch, FaultSite site)
{
    FaultPlan probe = FaultPlan::parse(
        "htm.abort@1000000000,htm.store@1000000000,"
        "engine.watchdog@1000000000,service.cancel@1000000000");
    Engine engine(sweepConfig(arch));
    engine.armFaultPlan(&probe);
    engine.run(kSweepProgram);
    return engine.faultInjector()->occurrences(site);
}

TEST(Chaos, AbortAtEveryTransactionLifetimePoint)
{
    Observation ref = runOnce(sweepConfig(Architecture::Base),
                              kSweepProgram, nullptr);

    // How many injection points does one run expose?
    uint64_t begins =
        probeOccurrences(Architecture::NoMap,
                         FaultSite::HtmAbortExplicit);
    uint64_t stores =
        probeOccurrences(Architecture::NoMap, FaultSite::HtmStore);
    uint64_t polls = probeOccurrences(Architecture::NoMap,
                                      FaultSite::EngineTxWatchdog);
    ASSERT_GE(begins, 12u) << "sweep program opens too few "
                              "transactions to be a useful sweep";
    ASSERT_LE(begins, 100000u);
    ASSERT_GE(stores, begins);
    ASSERT_GE(polls, 8u);

    // Begin-time aborts: kill the K-th transaction right at XBegin.
    uint64_t begin_sweep = std::min<uint64_t>(begins, 24);
    for (uint64_t k = 1; k <= begin_sweep; ++k) {
        FaultPlan plan =
            FaultPlan::parse("htm.abort@" + std::to_string(k));
        Observation got = runOnce(sweepConfig(Architecture::NoMap),
                                  kSweepProgram, &plan);
        expectSameSemantics(got, ref,
                            "begin-abort at XBegin #" +
                                std::to_string(k));
        EXPECT_GE(got.stats.txAborts, 1u) << k;
    }

    // Commit-time aborts: latch SOF in the K-th transaction so the
    // overflow summary check fails at TxEnd.
    uint64_t sof_sweep = std::min<uint64_t>(begins, 12);
    for (uint64_t k = 1; k <= sof_sweep; ++k) {
        FaultPlan plan =
            FaultPlan::parse("htm.sof@" + std::to_string(k));
        Observation got = runOnce(sweepConfig(Architecture::NoMap),
                                  kSweepProgram, &plan);
        expectSameSemantics(got, ref,
                            "SOF latched in transaction #" +
                                std::to_string(k));
        EXPECT_GE(got.stats.txAborts, 1u) << k;
    }

    // Mid-transaction aborts: capacity-kill at the S-th transactional
    // store, S spread across the run's whole store stream.
    std::set<uint64_t> store_points;
    uint64_t store_sweep = std::min<uint64_t>(stores, 16);
    for (uint64_t i = 1; i <= store_sweep; ++i)
        store_points.insert(i * stores / store_sweep);
    for (uint64_t s : store_points) {
        FaultPlan plan =
            FaultPlan::parse("htm.store@" + std::to_string(s));
        Observation got = runOnce(sweepConfig(Architecture::NoMap),
                                  kSweepProgram, &plan);
        expectSameSemantics(got, ref,
                            "capacity abort at store #" +
                                std::to_string(s));
        EXPECT_GE(got.stats.txAborts, 1u) << s;
    }

    // Watchdog kills at the W-th in-transaction poll.
    uint64_t wd_sweep = std::min<uint64_t>(polls, 8);
    for (uint64_t w = 1; w <= wd_sweep; ++w) {
        FaultPlan plan =
            FaultPlan::parse("engine.watchdog@" + std::to_string(w));
        Observation got = runOnce(sweepConfig(Architecture::NoMap),
                                  kSweepProgram, &plan);
        expectSameSemantics(got, ref,
                            "watchdog fired at poll #" +
                                std::to_string(w));
        EXPECT_GE(got.stats.txAborts, 1u) << w;
    }
}

// ---- 3. Forced OSR exits at real stack-map points ----------------------

TEST(Chaos, ForcedOsrExitAtEverySmp)
{
    Observation ref = runOnce(sweepConfig(Architecture::Base),
                              kSweepProgram, nullptr);

    // Harvest the SMPs actually attached to checks in Base FTL code.
    Engine probe(sweepConfig(Architecture::Base));
    probe.run(kSweepProgram);
    const IrFunction *ir = probe.ftlIr("work");
    ASSERT_NE(ir, nullptr) << "sweep program never reached FTL";
    std::set<uint32_t> smps;
    for (const IrBlock &block : ir->blocks) {
        for (const IrInstr &instr : block.instrs) {
            if (instr.isCheck() && !instr.converted &&
                instr.smpPc != kNoSmp) {
                smps.insert(instr.smpPc);
            }
        }
    }
    ASSERT_GE(smps.size(), 2u);

    for (uint32_t smp : smps) {
        // Force the 2nd dynamic visit of this SMP to deopt.
        FaultPlan plan =
            FaultPlan::parse("ftl.osr@2:" + std::to_string(smp));
        Observation got = runOnce(sweepConfig(Architecture::Base),
                                  kSweepProgram, &plan);
        expectSameSemantics(got, ref,
                            "forced OSR exit at smp " +
                                std::to_string(smp));
        EXPECT_GE(got.stats.deopts, 1u) << smp;
    }
}

// ---- 4. Cancellation at every chargeCycles poll point ------------------

TEST(Chaos, CancelAtEveryPollPoint)
{
    Observation ref = runOnce(sweepConfig(Architecture::Base),
                              kSweepProgram, nullptr);

    uint64_t polls = probeOccurrences(Architecture::NoMap,
                                      FaultSite::ServiceCancel);
    ASSERT_GE(polls, 2u) << "sweep program too short to reach the "
                            "cancellation poll points";
    ASSERT_LE(polls, 100000u);

    uint64_t sweep = std::min<uint64_t>(polls, 24);
    for (uint64_t p = 1; p <= sweep; ++p) {
        FaultPlan plan =
            FaultPlan::parse("service.cancel@" + std::to_string(p));
        Engine engine(sweepConfig(Architecture::NoMap));
        engine.armFaultPlan(&plan);
        EXPECT_THROW(engine.run(kSweepProgram), ExecutionCancelled)
            << "poll " << p;

        // A cancelled engine must reset() before reuse; after that it
        // behaves bit-identically to a fresh one.
        engine.armFaultPlan(nullptr);
        engine.reset();
        EngineResult r = engine.run(kSweepProgram);
        Observation got;
        got.resultString = r.resultString;
        got.printed = r.printed;
        got.heap = heapFingerprint(engine);
        got.stats = r.stats;
        expectSameSemantics(got, ref,
                            "post-cancellation reset, poll #" +
                                std::to_string(p));
    }
}

// ---- 5. Service-level faults (queue, retry) ----------------------------

TEST(Chaos, ServiceQueueFullAndRetryFaults)
{
    // Outlives the service, as the ServiceConfig contract requires.
    static FaultPlan plan = FaultPlan::parse(
        "service.queuefull@2,service.retry@3");

    ServiceConfig scfg;
    scfg.workers = 2;
    scfg.queueCapacity = 8;
    scfg.faultPlan = &plan;
    ExecutionService service(scfg);

    Request req;
    req.source = "result = 6 * 7;";
    req.config.arch = Architecture::NoMap;

    // Sequential submit+get keeps the dynamic occurrence order (and
    // therefore which request each fault hits) fully deterministic:
    // the 2nd enqueue is rejected, the 3rd execution attempt fails
    // transiently and is retried on a fresh isolate.
    Response r1 = service.submit(req).get();
    Response r2 = service.submit(req).get();
    Response r3 = service.submit(req).get();
    Response r4 = service.submit(req).get();
    Response r5 = service.submit(req).get();

    EXPECT_EQ(r1.status, ResponseStatus::Ok);
    EXPECT_EQ(r1.resultString, "42");
    EXPECT_EQ(r1.attempts, 1u);

    EXPECT_EQ(r2.status, ResponseStatus::QueueFull);
    EXPECT_NE(r2.error.find("injected"), std::string::npos)
        << r2.error;

    EXPECT_EQ(r3.status, ResponseStatus::Ok);
    EXPECT_EQ(r3.resultString, "42");
    EXPECT_EQ(r3.attempts, 1u);

    EXPECT_EQ(r4.status, ResponseStatus::Ok);
    EXPECT_EQ(r4.resultString, "42");
    EXPECT_EQ(r4.attempts, 2u); // Injected transient + 1 retry.

    EXPECT_EQ(r5.status, ResponseStatus::Ok);
    EXPECT_EQ(r5.resultString, "42");
    EXPECT_EQ(r5.attempts, 1u);

    ServiceMetricsSnapshot m = service.metrics();
    EXPECT_EQ(m.rejected, 1u);
    EXPECT_EQ(m.retries, 1u);
    EXPECT_EQ(m.succeeded, 4u);

    g_combos += 5;
}

// ---- 6. Injected-abort code pairing ------------------------------------

/**
 * When a plan arms several htm.abort* sites on the SAME begin, the
 * first match in the fixed polling order (explicit, capacity,
 * irrevocable) picks the abort code, while every site is still polled
 * so occurrence numbering never depends on what else fired.
 * Regression: selection used to be last-match-wins, so the pairing of
 * consumed site and reported abort code was inverted.
 */
TEST(Chaos, InjectedAbortFirstMatchWinsAndAllSitesPoll)
{
    Observation ref = runOnce(sweepConfig(Architecture::Base),
                              kSweepProgram, nullptr);

    // Alone, the capacity site converts begin #3 into exactly one
    // injected capacity abort (the clean run never aborts).
    FaultPlan cap_only = FaultPlan::parse("htm.abort.capacity@3");
    Engine cap_engine(sweepConfig(Architecture::NoMap));
    cap_engine.armFaultPlan(&cap_only);
    EngineResult cap_r = cap_engine.run(kSweepProgram);
    EXPECT_GE(cap_r.stats.txAbortsCapacity, 1u);
    EXPECT_EQ(cap_r.stats.txAbortsCheck, 0u);
    {
        Observation got;
        got.resultString = cap_r.resultString;
        got.printed = cap_r.printed;
        got.heap = heapFingerprint(cap_engine);
        expectSameSemantics(got, ref, "htm.abort.capacity@3 alone");
    }

    // Both sites on the same begin: the explicit site is polled first
    // and wins the code; the capacity site's one-shot fire is consumed
    // without producing a capacity abort.
    FaultPlan both =
        FaultPlan::parse("htm.abort@3,htm.abort.capacity@3");
    Engine both_engine(sweepConfig(Architecture::NoMap));
    both_engine.armFaultPlan(&both);
    EngineResult both_r = both_engine.run(kSweepProgram);
    EXPECT_GE(both_r.stats.txAbortsCheck, 1u);
    EXPECT_EQ(both_r.stats.txAbortsCapacity, 0u);
    {
        Observation got;
        got.resultString = both_r.resultString;
        got.printed = both_r.printed;
        got.heap = heapFingerprint(both_engine);
        expectSameSemantics(got, ref,
                            "htm.abort@3,htm.abort.capacity@3");
    }

    // No short-circuit: all three begin sites saw identical occurrence
    // numbering even though the explicit site fired.
    const FaultInjector *inj = both_engine.faultInjector();
    ASSERT_NE(inj, nullptr);
    uint64_t explicit_occ =
        inj->occurrences(FaultSite::HtmAbortExplicit);
    uint64_t capacity_occ =
        inj->occurrences(FaultSite::HtmAbortCapacity);
    uint64_t irrevocable_occ =
        inj->occurrences(FaultSite::HtmAbortIrrevocable);
    EXPECT_EQ(explicit_occ, capacity_occ);
    EXPECT_EQ(capacity_occ, irrevocable_occ);
    EXPECT_GE(explicit_occ, 3u);
}

// ---- 7. Adaptive abort-storm matrix ------------------------------------

/**
 * Sustained abort storms against the `--adaptive` engine
 * (src/nomap/adaptive.{h,cc}): plans that keep killing transactions —
 * capacity squeezes, explicit-abort trains, SOF trains — plus the
 * adaptive.decision / adaptive.blacklist sites that attack the
 * controller's own application step. Two properties:
 *
 *  1. Semantics: every storm run, on every architecture, stays
 *     bit-identical to the unfaulted Base reference (the controller
 *     may re-plan transactions, never reorder program effects).
 *  2. Convergence: on the transactional architecture the controller's
 *     own frozen counters show the storm dying down — the abort rate
 *     after its last revision is strictly below the rate before its
 *     first, and for capacity storms the tail is abort-free.
 */

/** ~128 KB of contiguous writes per call; under htm.ways@1 every
 *  nominal-geometry transaction capacity-aborts (the bench storm). */
std::string
chaosStormProgram(int rounds)
{
    std::string src = R"JS(
var N = 16384;
var A = [];
for (var i = 0; i < N; i++) A[i] = i % 17;
function storm(a, n) {
    var s = 0;
    for (var j = 0; j < n; j++) {
        a[j] = (a[j] + j) % 1021;
        s = (s + a[j]) % 65536;
    }
    return s;
}
var out = 0;
for (var r = 0; r < )JS";
    src += std::to_string(rounds);
    src += R"JS(; r++) out = (out + storm(A, N)) % 65536;
result = out;
)JS";
    return src;
}

EngineConfig
adaptiveSweepConfig(Architecture arch)
{
    EngineConfig config = sweepConfig(arch);
    config.adaptive = true;
    return config;
}

/** "site@1,site@2,...,site@n": a train of one-shot triggers, so the
 *  site fires at every one of the first n dynamic occurrences. */
std::string
stormTrain(const char *site, int n)
{
    std::string plan;
    for (int i = 1; i <= n; ++i) {
        if (i > 1)
            plan += ',';
        plan += site;
        plan += '@';
        plan += std::to_string(i);
    }
    return plan;
}

TEST(Chaos, AdaptiveAbortStormMatrixPreservesSemantics)
{
    struct Storm {
        const char *label;
        std::string plan;
        std::string program;
    };
    const std::string storm_src = chaosStormProgram(16);
    const Storm storms[] = {
        {"capacity squeeze x1", "htm.ways@1", storm_src},
        {"capacity squeeze x2", "htm.ways@2", storm_src},
        {"explicit-abort train", stormTrain("htm.abort", 20),
         kSweepProgram},
        {"SOF train", stormTrain("htm.sof", 8), kSweepProgram},
        {"irrevocable train",
         stormTrain("htm.abort.irrevocable", 12), kSweepProgram},
        {"squeeze + vetoed revision",
         "htm.ways@1,adaptive.decision@1", storm_src},
        {"squeeze + forced blacklist",
         "htm.ways@1,adaptive.blacklist@1", storm_src},
        {"mixed storm", "htm.ways@1,htm.abort@3,htm.sof@5",
         storm_src},
    };

    for (const Storm &storm : storms) {
        Observation ref = runOnce(sweepConfig(Architecture::Base),
                                  storm.program, nullptr);
        FaultPlan plan = FaultPlan::parse(storm.plan);
        for (Architecture arch : kAllArchs) {
            Observation got = runOnce(adaptiveSweepConfig(arch),
                                      storm.program, &plan);
            expectSameSemantics(got, ref,
                                std::string("adaptive storm \"") +
                                    storm.label + "\" plan \"" +
                                    storm.plan + "\" arch " +
                                    architectureName(arch));
        }
    }
}

/** Abort rates around the controller's first/last revision, from its
 *  own frozen counters. */
struct Convergence {
    uint64_t revisions = 0;
    uint64_t tailAborts = 0;
    uint64_t tailCommits = 0;
    double beforeRate = 0.0;
    double afterRate = 1.0;
};

Convergence
convergenceOf(const AdaptiveController &ctl)
{
    Convergence c;
    c.revisions = ctl.revisionsDecided();
    if (!c.revisions)
        return c;
    auto snap = ctl.functionSnapshot(ctl.revisionLog().front().funcId);
    if (!snap)
        return c;
    uint64_t before_total = snap->abortsBeforeFirstRevision +
                            snap->commitsBeforeFirstRevision;
    c.tailAborts = snap->aborts - snap->abortsAtLastRevision;
    c.tailCommits = snap->commits - snap->commitsAtLastRevision;
    uint64_t after_total = c.tailAborts + c.tailCommits;
    c.beforeRate = before_total
                       ? static_cast<double>(
                             snap->abortsBeforeFirstRevision) /
                             static_cast<double>(before_total)
                       : 0.0;
    c.afterRate = after_total ? static_cast<double>(c.tailAborts) /
                                    static_cast<double>(after_total)
                              : 0.0;
    return c;
}

TEST(Chaos, AdaptiveConvergesUnderCapacityStorm)
{
    const std::string src = chaosStormProgram(16);
    FaultPlan squeeze = FaultPlan::parse("htm.ways@1");
    Engine engine(adaptiveSweepConfig(Architecture::NoMap));
    engine.armFaultPlan(&squeeze);
    engine.run(src);

    ASSERT_NE(engine.adaptive(), nullptr);
    Convergence c = convergenceOf(*engine.adaptive());
    ASSERT_GE(c.revisions, 1u);
    EXPECT_LT(c.afterRate, c.beforeRate);
    EXPECT_EQ(c.tailAborts, 0u) << "converged plan still aborting";
    EXPECT_GT(c.tailCommits, 0u) << "converged plan stopped committing";

    // The learned plan: tiled scope with a budget that fits the
    // squeezed one-way hardware (32 KB), where the static ladder's
    // nominal-geometry tiles could not.
    const FunctionState *state = engine.functionState("storm");
    ASSERT_NE(state, nullptr);
    EXPECT_EQ(state->txScopeLevel, 2u);
    EXPECT_GE(state->capacityOverrideBytes, 1024u);
    EXPECT_LE(state->capacityOverrideBytes,
              engine.htm().writeCapacityBytes());
}

TEST(Chaos, AdaptiveBlacklistsExplicitAbortSite)
{
    // A train of injected explicit aborts at the same entry site:
    // the controller must blacklist the site (not the whole
    // function's scope level) and the storm must then stop — the
    // remaining train triggers find no transactions left to kill.
    FaultPlan train = FaultPlan::parse(stormTrain("htm.abort", 20));
    Engine engine(adaptiveSweepConfig(Architecture::NoMap));
    engine.armFaultPlan(&train);
    engine.run(kSweepProgram);

    ASSERT_NE(engine.adaptive(), nullptr);
    const std::vector<PlanRevision> &log =
        engine.adaptive()->revisionLog();
    ASSERT_GE(log.size(), 1u);
    EXPECT_EQ(log.front().cause, RevisionCause::Blacklist);
    auto snap =
        engine.adaptive()->functionSnapshot(log.front().funcId);
    ASSERT_TRUE(snap.has_value());
    EXPECT_FALSE(snap->blacklistPcs.empty());
    // Exactly the blacklist streak's worth of aborts, then silence.
    EXPECT_EQ(engine.htm().stats().aborts,
              engine.adaptive()->config().siteBlacklistStreak);
}

TEST(Chaos, AdaptiveVetoedRevisionIsRedecided)
{
    // adaptive.decision@1 vetoes the first application; the
    // controller rolls back its assumed state, the storm rebuilds the
    // abort streak, and the identical decision is re-made and applied.
    const std::string src = chaosStormProgram(16);
    FaultPlan plan =
        FaultPlan::parse("htm.ways@1,adaptive.decision@1");
    Engine engine(adaptiveSweepConfig(Architecture::NoMap));
    engine.armFaultPlan(&plan);
    engine.run(src);

    ASSERT_NE(engine.adaptive(), nullptr);
    const std::vector<PlanRevision> &log =
        engine.adaptive()->revisionLog();
    ASSERT_GE(log.size(), 2u);
    EXPECT_EQ(log[1].cause, log[0].cause);
    EXPECT_EQ(log[1].scopeLevel, log[0].scopeLevel);
    EXPECT_EQ(log[1].capacityOverrideBytes,
              log[0].capacityOverrideBytes);
    Convergence c = convergenceOf(*engine.adaptive());
    EXPECT_EQ(c.tailAborts, 0u);
    EXPECT_GT(c.tailCommits, 0u);
}

TEST(Chaos, AdaptiveForcedBlacklistPinsFunctionOff)
{
    // adaptive.blacklist@1 hijacks the first application into a
    // forced level-3 pin: the function goes untransactional, the
    // controller stops proposing, and semantics still hold (covered
    // by the matrix above; here we check the mechanism).
    const std::string src = chaosStormProgram(16);
    FaultPlan plan =
        FaultPlan::parse("htm.ways@1,adaptive.blacklist@1");
    Engine engine(adaptiveSweepConfig(Architecture::NoMap));
    engine.armFaultPlan(&plan);
    engine.run(src);

    ASSERT_NE(engine.adaptive(), nullptr);
    ASSERT_GE(engine.adaptive()->revisionsDecided(), 1u);
    auto snap = engine.adaptive()->functionSnapshot(
        engine.adaptive()->revisionLog().front().funcId);
    ASSERT_TRUE(snap.has_value());
    EXPECT_TRUE(snap->pinnedOff);
    EXPECT_EQ(snap->level, 3u);
    const FunctionState *state = engine.functionState("storm");
    ASSERT_NE(state, nullptr);
    EXPECT_EQ(state->txScopeLevel, 3u);
    // Pinned off means no transactions — and no further decisions.
    EXPECT_EQ(engine.adaptive()->revisionsDecided(), 1u);
}

// ---- 8. Census ---------------------------------------------------------

TEST(Chaos, CensusCoversAtLeast200Combos)
{
    // Acceptance floor: >= 200 distinct (program, plan,
    // architecture) combos held bit-identical (the original issue's
    // floor), raised to 250 once the adaptive abort-storm matrix
    // joined so its 48 combos can't silently drop out.
    EXPECT_GE(g_combos, 250)
        << "chaos coverage shrank — did a sweep lose its "
           "injection points?";
    std::printf("[chaos] %d (program, plan, architecture) combos "
                "verified bit-identical\n",
                g_combos);
}

} // namespace
} // namespace nomap
