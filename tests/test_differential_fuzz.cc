#include <algorithm>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "testing/program_generator.h"

namespace nomap {
namespace {

/**
 * Property-based differential testing: generate random (but
 * terminating and deterministic) programs in the JS subset and check
 * that every architecture computes the same result. This exercises
 * the whole pipeline — speculation, checks, OSR exits, transactions,
 * rollback, bounds combining, SOF — against arbitrary combinations
 * of int/double arithmetic, array traffic, property access, and
 * control flow.
 *
 * NoMap_BC is included deliberately: the generated programs are
 * trained and replayed on the same data, so even the unsound bound
 * must agree.
 *
 * The seed range is overridable (NOMAP_FUZZ_SEED / NOMAP_FUZZ_ITERS)
 * so a reported failure replays as a one-liner; see
 * tests/testing/program_generator.h.
 */
class DifferentialFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DifferentialFuzz, AllArchitecturesAgree)
{
    uint64_t seed = GetParam();
    testutil::ProgramGenerator gen(seed);
    std::string src = gen.generate();

    std::string base_result;
    {
        EngineConfig config;
        config.arch = Architecture::Base;
        Engine engine(config);
        base_result = engine.run(src).resultString;
    }
    ASSERT_FALSE(base_result.empty());
    ASSERT_NE(base_result, "undefined") << src;

    const Architecture rest[] = {
        Architecture::NoMapS, Architecture::NoMapB, Architecture::NoMap,
        Architecture::NoMapBC, Architecture::NoMapRTM};
    for (Architecture arch : rest) {
        EngineConfig config;
        config.arch = arch;
        Engine engine(config);
        EXPECT_EQ(engine.run(src).resultString, base_result)
            << "seed " << seed << " under " << architectureName(arch)
            << "\nreproduce: " << testutil::reproHint(seed)
            << " ./tests/test_differential_fuzz\nprogram:\n"
            << src;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DifferentialFuzz,
    ::testing::Range<uint64_t>(
        testutil::fuzzSeedFromEnv(1),
        testutil::fuzzSeedFromEnv(1) +
            std::max<uint64_t>(1, testutil::fuzzItersFromEnv(32))));

TEST(DifferentialFuzz, TierCapsAgreeToo)
{
    // The same program must agree across tier caps (interpreter vs
    // full pipeline) — catches profiling-dependent semantics bugs.
    testutil::ProgramGenerator gen(99);
    std::string src = gen.generate();
    std::string expected;
    for (Tier cap : {Tier::Interpreter, Tier::Baseline, Tier::Dfg,
                     Tier::Ftl}) {
        EngineConfig config;
        config.maxTier = cap;
        Engine engine(config);
        std::string got = engine.run(src).resultString;
        if (expected.empty())
            expected = got;
        EXPECT_EQ(got, expected) << tierName(cap);
    }
}

} // namespace
} // namespace nomap
