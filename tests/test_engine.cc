#include <gtest/gtest.h>

#include "engine/engine.h"
#include "support/logging.h"

namespace nomap {
namespace {

const Architecture kAllArchs[] = {
    Architecture::Base,   Architecture::NoMapS, Architecture::NoMapB,
    Architecture::NoMap,  Architecture::NoMapBC,
    Architecture::NoMapRTM,
};

EngineResult
runWith(Architecture arch, const std::string &src,
        Tier max_tier = Tier::Ftl)
{
    EngineConfig config;
    config.arch = arch;
    config.maxTier = max_tier;
    Engine engine(config);
    return engine.run(src);
}

/** The paper's Figure 4 example, adapted to the subset. */
const char *kSumLoop = R"JS(
function makeObj(n) {
    var obj = {values: [], sum: 0};
    for (var i = 0; i < n; i++) obj.values[i] = i % 7;
    return obj;
}
function sumInto(obj) {
    var len = obj.values.length;
    for (var idx = 0; idx < len; idx++) {
        var value = obj.values[idx];
        obj.sum += value;
    }
    return obj.sum;
}
var o = makeObj(200);
var total = 0;
for (var r = 0; r < 120; r++) {
    o.sum = 0;
    total = sumInto(o);
}
result = total;
)JS";

TEST(Engine, SumLoopCorrectAcrossArchitectures)
{
    // 200 elements of i%7: sum = sum over i in [0,200) of i%7.
    int expected = 0;
    for (int i = 0; i < 200; ++i)
        expected += i % 7;
    for (Architecture arch : kAllArchs) {
        EngineResult r = runWith(arch, kSumLoop);
        EXPECT_EQ(r.resultString, std::to_string(expected))
            << architectureName(arch);
    }
}

TEST(Engine, SumLoopReachesFtlAndPlacesTransactions)
{
    EngineConfig config;
    config.arch = Architecture::NoMap;
    Engine engine(config);
    engine.run(kSumLoop);
    const FunctionState *state = engine.functionState("sumInto");
    ASSERT_NE(state, nullptr);
    EXPECT_EQ(state->tier, Tier::Ftl);
    ASSERT_NE(state->ftl, nullptr);
    EXPECT_GT(state->ftl->planResult.transactionsPlaced, 0u);
    EXPECT_GT(state->ftl->planResult.checksConverted, 0u);
    EXPECT_GT(engine.htm().stats().commits, 0u);
    EXPECT_EQ(engine.htm().stats().aborts, 0u);
}

TEST(Engine, NoMapExecutesFewerInstructionsThanBase)
{
    uint64_t base = runWith(Architecture::Base, kSumLoop)
                        .stats.totalInstructions();
    uint64_t s = runWith(Architecture::NoMapS, kSumLoop)
                     .stats.totalInstructions();
    uint64_t full = runWith(Architecture::NoMap, kSumLoop)
                        .stats.totalInstructions();
    uint64_t bc = runWith(Architecture::NoMapBC, kSumLoop)
                      .stats.totalInstructions();
    EXPECT_LT(s, base);
    EXPECT_LT(full, s);
    EXPECT_LE(bc, full);
}

TEST(Engine, ChecksDropAcrossNoMapVariants)
{
    uint64_t base =
        runWith(Architecture::Base, kSumLoop).stats.totalChecks();
    uint64_t b =
        runWith(Architecture::NoMapB, kSumLoop).stats.totalChecks();
    uint64_t full =
        runWith(Architecture::NoMap, kSumLoop).stats.totalChecks();
    EXPECT_LT(b, base);
    EXPECT_LT(full, b);
}

TEST(Engine, TierLadderSpeedsUp)
{
    auto cycles = [&](Tier cap) {
        return runWith(Architecture::Base, kSumLoop, cap)
            .stats.totalCycles();
    };
    double interp = cycles(Tier::Interpreter);
    double baseline = cycles(Tier::Baseline);
    double dfg = cycles(Tier::Dfg);
    double ftl = cycles(Tier::Ftl);
    EXPECT_GT(interp, baseline);
    EXPECT_GT(baseline, dfg);
    EXPECT_GT(dfg, ftl);
}

TEST(Engine, ArithmeticAndControlFlow)
{
    const char *src = R"JS(
function collatzLen(n) {
    var len = 0;
    while (n != 1) {
        if (n % 2 == 0) n = n / 2;
        else n = 3 * n + 1;
        len++;
    }
    return len;
}
var best = 0;
for (var i = 1; i < 400; i++) {
    var l = collatzLen(i);
    if (l > best) best = l;
}
result = best;
)JS";
    std::string expected;
    {
        // Host-language reference.
        int best = 0;
        for (int i = 1; i < 400; ++i) {
            long long n = i;
            int len = 0;
            while (n != 1) {
                n = n % 2 == 0 ? n / 2 : 3 * n + 1;
                ++len;
            }
            if (len > best)
                best = len;
        }
        expected = std::to_string(best);
    }
    for (Architecture arch : kAllArchs)
        EXPECT_EQ(runWith(arch, src).resultString, expected)
            << architectureName(arch);
}

TEST(Engine, StringWorkload)
{
    const char *src = R"JS(
function hash(s) {
    var h = 0;
    for (var i = 0; i < s.length; i++) {
        h = (h * 31 + s.charCodeAt(i)) & 0xffffff;
    }
    return h;
}
var acc = 0;
for (var r = 0; r < 80; r++) {
    acc = (acc + hash("the quick brown fox jumps over the lazy dog"))
          & 0xffffff;
}
result = acc;
)JS";
    std::string base = runWith(Architecture::Base, src).resultString;
    for (Architecture arch : kAllArchs)
        EXPECT_EQ(runWith(arch, src).resultString, base)
            << architectureName(arch);
}

TEST(Engine, OverflowDeoptProducesCorrectDoubleResult)
{
    // The accumulator overflows int32 range mid-run: Base deopts via
    // the overflow SMP; full NoMap detects it through the SOF at
    // XEnd, rolls back, and re-executes in Baseline.
    const char *src = R"JS(
function grow(n) {
    var x = 1000000;
    var acc = 0;
    for (var i = 0; i < n; i++) {
        acc = acc + x;
    }
    return acc;
}
var out = 0;
for (var r = 0; r < 90; r++) out = grow(40);
for (var r2 = 0; r2 < 3; r2++) out = grow(4000);
result = out;
)JS";
    for (Architecture arch : kAllArchs)
        EXPECT_EQ(runWith(arch, src).resultString, "4000000000")
            << architectureName(arch);
}

TEST(Engine, ShapeChangeDeopts)
{
    // After FTL compiles reads of p.x for one shape, objects with a
    // different shape arrive: the property check must deopt (Base) or
    // abort (NoMap) and still produce correct values.
    const char *src = R"JS(
function getX(p) {
    var acc = 0;
    for (var i = 0; i < 50; i++) acc += p.x;
    return acc;
}
var a = {x: 2, y: 3};
var sum = 0;
for (var r = 0; r < 100; r++) sum = getX(a);
var b = {y: 1, x: 5};
sum += getX(b);
result = sum;
)JS";
    for (Architecture arch : kAllArchs) {
        if (arch == Architecture::NoMapBC)
            continue; // BC removes the guard; unsound by design.
        EXPECT_EQ(runWith(arch, src).resultString,
                  std::to_string(100 + 250))
            << architectureName(arch);
    }
}

TEST(Engine, OutOfBoundsReadDeopts)
{
    // After the hot loop trains on in-bounds accesses, a final call
    // walks past the end: undefined must flow per JS semantics.
    const char *src = R"JS(
function at(arr, i) {
    return arr[i];
}
function sumFirst(arr, k) {
    var acc = 0;
    for (var i = 0; i < k; i++) {
        var v = at(arr, i);
        if (v === undefined) acc += 1000;
        else acc += v;
    }
    return acc;
}
var data = [];
for (var i = 0; i < 100; i++) data[i] = 1;
var out = 0;
for (var r = 0; r < 100; r++) out = sumFirst(data, 100);
out = sumFirst(data, 102);
result = out;
)JS";
    for (Architecture arch : kAllArchs) {
        if (arch == Architecture::NoMapBC)
            continue;
        EXPECT_EQ(runWith(arch, src).resultString,
                  std::to_string(100 + 2000))
            << architectureName(arch);
    }
}

TEST(Engine, HoleReadDeopts)
{
    const char *src = R"JS(
function sumAll(arr) {
    var acc = 0;
    for (var i = 0; i < arr.length; i++) {
        var v = arr[i];
        if (v === undefined) acc += 7;
        else acc += v;
    }
    return acc;
}
var dense = [];
for (var i = 0; i < 64; i++) dense[i] = 1;
var out = 0;
for (var r = 0; r < 100; r++) out = sumAll(dense);
var holey = [];
holey[0] = 1;
holey[5] = 1;
out += sumAll(holey);
result = out;
)JS";
    // holey: length 6, values [1,u,u,u,u,1] -> 1 + 4*7 + 1 = 30.
    for (Architecture arch : kAllArchs) {
        if (arch == Architecture::NoMapBC)
            continue;
        EXPECT_EQ(runWith(arch, src).resultString,
                  std::to_string(64 + 30))
            << architectureName(arch);
    }
}

TEST(Engine, DeoptCountIsTiny)
{
    // Paper III-A2: in steady state, checks practically never fail.
    EngineResult r = runWith(Architecture::Base, kSumLoop);
    EXPECT_GT(r.stats.ftlFunctionCalls, 0u);
    EXPECT_EQ(r.stats.deopts, 0u);
}

TEST(Engine, PrintOutsideLoops)
{
    const char *src = R"JS(
print("hello", 42);
print("bye");
)JS";
    EngineResult r = runWith(Architecture::NoMap, src);
    EXPECT_EQ(r.printed, "hello 42\nbye\n");
}

TEST(Engine, InstructionBucketsPartition)
{
    EngineResult r = runWith(Architecture::NoMap, kSumLoop);
    uint64_t total = r.stats.totalInstructions();
    EXPECT_GT(total, 0u);
    EXPECT_GT(r.stats.instrIn(InstrBucket::TmOpt), 0u);
    EXPECT_GT(r.stats.instrIn(InstrBucket::NoFtl), 0u);
    // Base never runs transactional code.
    EngineResult base = runWith(Architecture::Base, kSumLoop);
    EXPECT_EQ(base.stats.instrIn(InstrBucket::TmOpt), 0u);
    EXPECT_EQ(base.stats.instrIn(InstrBucket::TmUnopt), 0u);
}

TEST(Engine, RtmTracksSmallerTransactions)
{
    EngineResult rot = runWith(Architecture::NoMap, kSumLoop);
    EngineResult rtm = runWith(Architecture::NoMapRTM, kSumLoop);
    // Both run correctly; RTM commits are bounded by L1D capacity.
    EXPECT_EQ(rot.resultString, rtm.resultString);
}

TEST(Engine, SwitchSemantics)
{
    const char *src = R"JS(
function classify(n) {
    var label = 0;
    switch (n % 5) {
      case 0: label = 100; break;
      case 1:
      case 2: label = 200; break;
      case 3: label = label + 300;   // falls through into default
      default: label = label + 1;
    }
    return label;
}
var s = 0;
for (var i = 0; i < 200; i++) {
    switch (i % 10) {
      case 7: continue;   // continue skips the enclosing switch
      default: ;
    }
    s += classify(i);
}
result = s;
)JS";
    // Full sum over 200 iterations is 32080 (40 of each class:
    // 100 + 200 + 200 + 301 + 1). The continue skips i%10==7, whose
    // class is i%5==2 -> 200, twenty times.
    std::string expected = std::to_string(32080 - 20 * 200);
    for (Architecture arch : kAllArchs)
        EXPECT_EQ(runWith(arch, src).resultString, expected)
            << architectureName(arch);
}

TEST(Engine, SwitchOnStrings)
{
    const char *src = R"JS(
function kindOf(s) {
    switch (s) {
      case "a": return 1;
      case "bb": return 2;
      default: return 0;
    }
}
result = "" + kindOf("a") + kindOf("bb") + kindOf("zz");
)JS";
    EXPECT_EQ(runWith(Architecture::NoMap, src).resultString, "120");
}

TEST(Engine, SequentialRunsShareGlobals)
{
    EngineConfig config;
    config.arch = Architecture::NoMap;
    Engine engine(config);
    engine.run("var shared = 40;");
    EngineResult r = engine.run("result = shared + 2;");
    EXPECT_EQ(r.resultString, "42");
}

TEST(Engine, GlobalsAccumulateAcrossCalls)
{
    const char *src = R"JS(
var counter = 0;
function bump(k) {
    for (var i = 0; i < k; i++) counter = counter + 1;
}
for (var r = 0; r < 120; r++) bump(50);
result = counter;
)JS";
    for (Architecture arch : kAllArchs)
        EXPECT_EQ(runWith(arch, src).resultString, "6000")
            << architectureName(arch);
}

} // namespace
} // namespace nomap
