#include <gtest/gtest.h>

#include "engine/engine.h"

namespace nomap {
namespace {

/**
 * FTL-executor behaviours that only show under adversarial
 * conditions: flattened transaction nesting, tiled commits with
 * promoted accumulators, RTM read-set pressure, and the transaction
 * watchdog.
 */

EngineResult
runArch(Architecture arch, const std::string &src,
        EngineConfig base = EngineConfig())
{
    base.arch = arch;
    Engine engine(base);
    return engine.run(src);
}

TEST(FtlExecutor, FlattenedNestedTransactionsCommit)
{
    // Both caller and callee are hot enough to carry their own
    // transactions; the callee's TxBegin nests inside the caller's
    // and must flatten (single outermost commit scope).
    const char *src = R"JS(
function inner(a) {
    var s = 0;
    for (var i = 0; i < a.length; i++) s = (s + a[i]) & 65535;
    return s;
}
function outer(a, reps) {
    var t = 0;
    for (var r = 0; r < reps; r++) {
        t = (t + inner(a)) & 65535;
    }
    return t;
}
var a = [];
for (var i = 0; i < 64; i++) a[i] = i;
// Train inner alone first so it is FTL before outer wraps it.
var w = 0;
for (var r = 0; r < 150; r++) w = inner(a);
for (var r2 = 0; r2 < 150; r2++) w = (w + outer(a, 3)) & 65535;
result = w;
)JS";
    EngineResult base = runArch(Architecture::Base, src);
    EngineResult nomap = runArch(Architecture::NoMap, src);
    EXPECT_EQ(base.resultString, nomap.resultString);
    EXPECT_GT(nomap.stats.txCommits, 0u);
    EXPECT_EQ(nomap.stats.txAborts, 0u);
}

TEST(FtlExecutor, NestedAbortUnwindsToOutermostOwner)
{
    // The callee's converted check fails while the caller owns the
    // transaction: the abort must unwind the whole nest and re-enter
    // the *caller's* Baseline code, and the result must be exact.
    const char *src = R"JS(
var probe = {x: 1, y: 2};
function inner(p, n) {
    var s = 0;
    for (var i = 0; i < n; i++) s += p.x;
    return s;
}
function outer(p, reps) {
    var t = 0;
    for (var r = 0; r < reps; r++) t += inner(p, 20);
    return t;
}
var w = 0;
for (var r = 0; r < 160; r++) w = inner(probe, 20);
for (var r2 = 0; r2 < 160; r2++) w = outer(probe, 2);
var other = {y: 5, x: 7};
result = outer(other, 2) + w;
)JS";
    EngineResult base = runArch(Architecture::Base, src);
    EngineResult nomap = runArch(Architecture::NoMap, src);
    EXPECT_EQ(base.resultString, nomap.resultString);
    EXPECT_GT(nomap.stats.txAborts, 0u);
}

TEST(FtlExecutor, TiledLoopWithPromotedAccumulator)
{
    // Big streaming loop (tiled) that also carries a promoted global
    // accumulator: the flush-before-tile-commit path must keep the
    // value exact even when an abort lands mid-stream.
    const char *src = R"JS(
var total = 0;
function fill(dst, n) {
    for (var i = 0; i < n; i++) {
        dst[i] = i & 255;
        total = (total + (i & 7)) % 100000;
    }
    return dst[n - 1];
}
var dst = [];
for (var i = 0; i < 60000; i++) dst[i] = 0;
var out = 0;
for (var r = 0; r < 70; r++) { total = 0; out = fill(dst, 60000); }
result = out + total;
)JS";
    EngineResult base = runArch(Architecture::Base, src);
    EngineResult nomap = runArch(Architecture::NoMap, src);
    EXPECT_EQ(base.resultString, nomap.resultString);
    // Tiling implies several commits per call.
    EXPECT_GT(nomap.stats.txCommits, 100u);
}

TEST(FtlExecutor, RtmReadSetCanAbort)
{
    // Reads of a >256KB working set inside an RTM transaction must
    // overflow the read-set tracker (L2 geometry) and abort; the
    // engine then recompiles/detransactionalizes, and the program
    // still computes the right answer.
    const char *src = R"JS(
function sum(a) {
    var s = 0;
    for (var i = 0; i < a.length; i++) s = (s + a[i]) & 65535;
    return s;
}
var a = [];
for (var i = 0; i < 50000; i++) a[i] = i & 15;
var out = 0;
for (var r = 0; r < 70; r++) out = sum(a);
result = out;
)JS";
    EngineResult base = runArch(Architecture::Base, src);
    EngineResult rtm = runArch(Architecture::NoMapRTM, src);
    EXPECT_EQ(base.resultString, rtm.resultString);
    // Either capacity aborts occurred (read set) or the planner never
    // managed a fitting transaction — both are RTM-starvation modes.
    EXPECT_TRUE(rtm.stats.txAbortsCapacity > 0 ||
                rtm.stats.txCommits < 70u);
}

TEST(FtlExecutor, WatchdogKillsRunawayTransaction)
{
    // With an artificially tiny watchdog, even a well-behaved
    // transactional loop gets killed and must fall back to Baseline
    // with a correct result.
    EngineConfig config;
    config.txWatchdogInstructions = 200;
    const char *src = R"JS(
function grind(a) {
    var s = 0;
    for (var i = 0; i < a.length; i++) s = (s + a[i] * 3) & 65535;
    return s;
}
var a = [];
for (var i = 0; i < 200; i++) a[i] = i;
var out = 0;
for (var r = 0; r < 150; r++) out = grind(a);
result = out;
)JS";
    EngineResult base = runArch(Architecture::Base, src);
    EngineResult nomap = runArch(Architecture::NoMap, src, config);
    EXPECT_EQ(base.resultString, nomap.resultString);
    EXPECT_GT(nomap.stats.txAborts, 0u);
}

TEST(FtlExecutor, DfgTierAlsoDeoptsCorrectly)
{
    // Cap at DFG: its (unconverted) checks must OSR-exit exactly like
    // FTL's.
    EngineConfig config;
    config.maxTier = Tier::Dfg;
    const char *src = R"JS(
function addUp(a, b) { return a + b; }
var out = 0;
for (var r = 0; r < 60; r++) out = addUp(out & 1023, r);
out = addUp(2000000000, 2000000000);
result = out;
)JS";
    EngineResult r = runArch(Architecture::Base, src, config);
    EXPECT_EQ(r.resultString, "4000000000");
    EXPECT_GT(r.stats.deopts, 0u);
}

TEST(FtlExecutor, GenericPathsInsideTransactionsRollBack)
{
    // Method calls (push) inside a transactional loop write through
    // runtime helpers; an abort later in the same transaction must
    // undo them too.
    const char *src = R"JS(
var log = [];
function process(a, bad) {
    var s = 0;
    for (var i = 0; i < a.length; i++) {
        s += a[i];
        if (bad && i == 5) s += a[i] + undefined;  // NaN poison
    }
    return s;
}
var a = [];
for (var i = 0; i < 60; i++) a[i] = 1;
var out = 0;
for (var r = 0; r < 150; r++) out = process(a, false);
var poisoned = process(a, true);
result = "" + out + "|" + isNaN(poisoned);
)JS";
    EngineResult base = runArch(Architecture::Base, src);
    EngineResult nomap = runArch(Architecture::NoMap, src);
    EXPECT_EQ(base.resultString, nomap.resultString);
    EXPECT_EQ(base.resultString, "60|true");
}

TEST(FtlExecutor, InstructionBucketsSumExactly)
{
    const char *src = R"JS(
function f(a) {
    var s = 0;
    for (var i = 0; i < a.length; i++) s = (s + a[i]) & 4095;
    return s;
}
var a = [];
for (var i = 0; i < 100; i++) a[i] = i;
var out = 0;
for (var r = 0; r < 140; r++) out = f(a);
result = out;
)JS";
    EngineResult r = runArch(Architecture::NoMap, src);
    uint64_t sum = 0;
    for (size_t i = 0;
         i < static_cast<size_t>(InstrBucket::NumBuckets); ++i) {
        sum += r.stats.instr[i];
    }
    EXPECT_EQ(sum, r.stats.totalInstructions());
    EXPECT_GT(r.stats.cyclesTm, 0.0);
    EXPECT_GT(r.stats.cyclesNonTm, 0.0);
}

} // namespace
} // namespace nomap
