#include <gtest/gtest.h>

#include "htm/transaction.h"
#include "vm/heap.h"

namespace nomap {
namespace {

class HeapTest : public ::testing::Test
{
  protected:
    HeapTest() : heap(shapes, strings) {}

    ShapeTable shapes;
    StringTable strings;
    Heap heap;
};

TEST_F(HeapTest, ObjectPropertiesAndShapes)
{
    Value a = heap.allocObject();
    Value b = heap.allocObject();
    uint32_t x = strings.intern("x");
    uint32_t y = strings.intern("y");

    heap.setProperty(a.payload(), x, Value::int32(1));
    heap.setProperty(a.payload(), y, Value::int32(2));
    heap.setProperty(b.payload(), x, Value::int32(3));
    heap.setProperty(b.payload(), y, Value::int32(4));

    // Same insertion order -> same shape (hidden class sharing).
    EXPECT_EQ(heap.object(a.payload()).shape,
              heap.object(b.payload()).shape);
    EXPECT_EQ(heap.getProperty(a.payload(), x), Value::int32(1));
    EXPECT_EQ(heap.getProperty(b.payload(), y), Value::int32(4));

    // Different order -> different shape.
    Value c = heap.allocObject();
    heap.setProperty(c.payload(), y, Value::int32(9));
    heap.setProperty(c.payload(), x, Value::int32(8));
    EXPECT_NE(heap.object(c.payload()).shape,
              heap.object(a.payload()).shape);
    EXPECT_EQ(heap.getProperty(c.payload(), x), Value::int32(8));
}

TEST_F(HeapTest, MissingPropertyIsUndefined)
{
    Value a = heap.allocObject();
    EXPECT_TRUE(heap.getProperty(a.payload(), strings.intern("nope"))
                    .isUndefined());
}

TEST_F(HeapTest, ArrayBasicsAndElongation)
{
    Value arr = heap.allocArray(3);
    uint32_t id = arr.payload();
    heap.setElement(id, 0, Value::int32(10));
    heap.setElement(id, 2, Value::int32(30));
    EXPECT_EQ(heap.getElement(id, 0), Value::int32(10));
    EXPECT_TRUE(heap.getElement(id, 1).isUndefined());
    EXPECT_EQ(heap.array(id).length(), 3u);
    EXPECT_FALSE(heap.array(id).hasHoles);

    // Write past the end: elongate, creating a hole at 3..4.
    heap.setElement(id, 5, Value::int32(60));
    EXPECT_EQ(heap.array(id).length(), 6u);
    EXPECT_TRUE(heap.array(id).hasHoles);
    EXPECT_TRUE(heap.getElement(id, 4).isUndefined());
    // Out-of-bounds read yields undefined, never crashes.
    EXPECT_TRUE(heap.getElement(id, 100).isUndefined());
    EXPECT_TRUE(heap.getElement(id, -1).isUndefined());
}

TEST_F(HeapTest, ElongationMovesStorageAddress)
{
    Value arr = heap.allocArray(2);
    uint32_t id = arr.payload();
    Addr before = heap.array(id).baseAddr;
    heap.setElement(id, 100, Value::int32(1));
    EXPECT_NE(heap.array(id).baseAddr, before);
}

TEST_F(HeapTest, DistinctAllocationsDistinctLines)
{
    Value a = heap.allocObject();
    Value b = heap.allocObject();
    Addr addr_a = heap.object(a.payload()).baseAddr;
    Addr addr_b = heap.object(b.payload()).baseAddr;
    EXPECT_NE(lineBase(addr_a), lineBase(addr_b));
}

TEST_F(HeapTest, PushPop)
{
    Value arr = heap.allocArray(0);
    uint32_t id = arr.payload();
    EXPECT_EQ(heap.arrayPush(id, Value::int32(1)), 1u);
    EXPECT_EQ(heap.arrayPush(id, Value::int32(2)), 2u);
    EXPECT_EQ(heap.arrayPop(id), Value::int32(2));
    EXPECT_EQ(heap.arrayPop(id), Value::int32(1));
    EXPECT_TRUE(heap.arrayPop(id).isUndefined());
}

TEST_F(HeapTest, Globals)
{
    uint32_t g = heap.globalIndex("counter");
    EXPECT_EQ(heap.globalIndex("counter"), g); // Stable.
    EXPECT_TRUE(heap.getGlobal(g).isUndefined());
    heap.setGlobal(g, Value::int32(5));
    EXPECT_EQ(heap.getGlobal(g), Value::int32(5));
    EXPECT_EQ(heap.findGlobal("counter"), static_cast<int32_t>(g));
    EXPECT_EQ(heap.findGlobal("missing"), -1);
}

// ---- Transactional rollback ------------------------------------------------

class HeapTxTest : public HeapTest
{
  protected:
    HeapTxTest() : tm(HtmMode::Rot)
    {
        tm.setRollbackClient(&heap);
        heap.setTransactionManager(&tm);
    }

    TransactionManager tm;
};

TEST_F(HeapTxTest, RollbackRestoresSlots)
{
    Value o = heap.allocObject();
    uint32_t x = strings.intern("x");
    heap.setProperty(o.payload(), x, Value::int32(1));

    tm.begin();
    heap.setProperty(o.payload(), x, Value::int32(99));
    EXPECT_EQ(heap.getProperty(o.payload(), x), Value::int32(99));
    tm.abort(AbortCode::ExplicitCheck);
    EXPECT_EQ(heap.getProperty(o.payload(), x), Value::int32(1));
}

TEST_F(HeapTxTest, RollbackRemovesAddedProperty)
{
    Value o = heap.allocObject();
    uint32_t x = strings.intern("x");
    uint32_t shape_before = heap.object(o.payload()).shape;

    tm.begin();
    heap.setProperty(o.payload(), x, Value::int32(5));
    tm.abort(AbortCode::ExplicitCheck);

    EXPECT_EQ(heap.object(o.payload()).shape, shape_before);
    EXPECT_TRUE(heap.getProperty(o.payload(), x).isUndefined());
}

TEST_F(HeapTxTest, RollbackRestoresArrayElements)
{
    Value arr = heap.allocArray(4);
    uint32_t id = arr.payload();
    heap.setElement(id, 1, Value::int32(11));

    tm.begin();
    heap.setElement(id, 1, Value::int32(77));
    heap.setElement(id, 2, Value::int32(88));
    tm.abort(AbortCode::ExplicitCheck);

    EXPECT_EQ(heap.getElement(id, 1), Value::int32(11));
    EXPECT_TRUE(heap.getElement(id, 2).isUndefined());
}

TEST_F(HeapTxTest, RollbackUndoesElongation)
{
    Value arr = heap.allocArray(2);
    uint32_t id = arr.payload();
    Addr addr_before = heap.array(id).baseAddr;

    tm.begin();
    heap.setElement(id, 50, Value::int32(1));
    EXPECT_EQ(heap.array(id).length(), 51u);
    tm.abort(AbortCode::ExplicitCheck);

    EXPECT_EQ(heap.array(id).length(), 2u);
    EXPECT_FALSE(heap.array(id).hasHoles);
    EXPECT_EQ(heap.array(id).baseAddr, addr_before);
}

TEST_F(HeapTxTest, RollbackUndoesPushPop)
{
    Value arr = heap.allocArray(0);
    uint32_t id = arr.payload();
    heap.arrayPush(id, Value::int32(1));

    tm.begin();
    heap.arrayPush(id, Value::int32(2));
    heap.arrayPop(id);
    heap.arrayPop(id);
    EXPECT_EQ(heap.array(id).length(), 0u);
    tm.abort(AbortCode::ExplicitCheck);

    ASSERT_EQ(heap.array(id).length(), 1u);
    EXPECT_EQ(heap.getElement(id, 0), Value::int32(1));
}

TEST_F(HeapTxTest, RollbackRestoresGlobals)
{
    uint32_t g = heap.globalIndex("total");
    heap.setGlobal(g, Value::int32(10));

    tm.begin();
    heap.setGlobal(g, Value::int32(20));
    heap.setGlobal(g, Value::int32(30));
    tm.abort(AbortCode::ExplicitCheck);

    EXPECT_EQ(heap.getGlobal(g), Value::int32(10));
}

TEST_F(HeapTxTest, CommitKeepsWrites)
{
    uint32_t g = heap.globalIndex("total");
    tm.begin();
    heap.setGlobal(g, Value::int32(42));
    EXPECT_TRUE(tm.end().committed);
    EXPECT_EQ(heap.getGlobal(g), Value::int32(42));
}

TEST_F(HeapTxTest, WritesOutsideTransactionNotLogged)
{
    uint32_t g = heap.globalIndex("total");
    heap.setGlobal(g, Value::int32(1));
    uint64_t logged = heap.stats().undoEntriesLogged;
    heap.setGlobal(g, Value::int32(2));
    EXPECT_EQ(heap.stats().undoEntriesLogged, logged);
}

TEST_F(HeapTxTest, InterleavedMutationsRollBackInOrder)
{
    Value o = heap.allocObject();
    uint32_t x = strings.intern("x");
    Value arr = heap.allocArray(8);
    uint32_t aid = arr.payload();
    heap.setProperty(o.payload(), x, arr);
    heap.setElement(aid, 0, Value::int32(100));

    tm.begin();
    for (int i = 0; i < 8; ++i)
        heap.setElement(aid, i, Value::int32(i));
    heap.setProperty(o.payload(), x, Value::int32(0));
    heap.setElement(aid, 0, Value::int32(-1));
    tm.abort(AbortCode::ExplicitCheck);

    EXPECT_EQ(heap.getProperty(o.payload(), x), arr);
    EXPECT_EQ(heap.getElement(aid, 0), Value::int32(100));
    for (int i = 1; i < 8; ++i)
        EXPECT_TRUE(heap.getElement(aid, i).isUndefined());
}

TEST_F(HeapTest, StringTableReferencesSurviveGrowth)
{
    // Builtins hold get() references while interning derived strings
    // (e.g. split interning each piece mid-loop); the table must not
    // move existing storage when it grows. Vector-backed storage made
    // this a use-after-free that ASan caught under test_suites.
    uint32_t id = strings.intern("needle in the table");
    const std::string &ref = strings.get(id);
    for (int i = 0; i < 4096; ++i)
        strings.intern("filler-" + std::to_string(i));
    EXPECT_EQ(ref, "needle in the table");
    EXPECT_EQ(&ref, &strings.get(id));
}

TEST_F(HeapTest, DisplayStrings)
{
    EXPECT_EQ(heap.valueToDisplayString(Value::int32(3)), "3");
    EXPECT_EQ(heap.valueToDisplayString(Value::boolean(true)), "true");
    EXPECT_EQ(heap.valueToDisplayString(Value::undefined()), "undefined");
    Value arr = heap.allocArray(0);
    heap.arrayPush(arr.payload(), Value::int32(1));
    heap.arrayPush(arr.payload(), Value::int32(2));
    EXPECT_EQ(heap.valueToDisplayString(arr), "1,2");
}

} // namespace
} // namespace nomap
