#include <gtest/gtest.h>

#include "htm/transaction.h"

namespace nomap {
namespace {

/** Rollback client that just counts calls. */
class CountingClient : public RollbackClient
{
  public:
    void txCheckpoint() override { ++checkpoints; }
    void txRollback() override { ++rollbacks; }
    void txDiscardLog() override { ++discards; }

    int checkpoints = 0;
    int rollbacks = 0;
    int discards = 0;
};

TEST(Htm, CommitPath)
{
    TransactionManager tm(HtmMode::Rot);
    CountingClient client;
    tm.setRollbackClient(&client);

    EXPECT_FALSE(tm.inTransaction());
    uint32_t begin_cost = tm.begin();
    EXPECT_EQ(begin_cost, TransactionManager::kRotBeginCycles);
    EXPECT_TRUE(tm.inTransaction());
    EXPECT_TRUE(tm.recordWrite(0x1000));

    CommitResult r = tm.end();
    EXPECT_TRUE(r.committed);
    EXPECT_EQ(r.cycles, TransactionManager::kRotCommitCycles);
    EXPECT_FALSE(tm.inTransaction());
    EXPECT_EQ(client.checkpoints, 1);
    EXPECT_EQ(client.discards, 1);
    EXPECT_EQ(client.rollbacks, 0);
    EXPECT_EQ(tm.stats().commits, 1u);
}

TEST(Htm, ExplicitAbortRollsBack)
{
    TransactionManager tm(HtmMode::Rot);
    CountingClient client;
    tm.setRollbackClient(&client);

    tm.begin();
    tm.recordWrite(0x2000);
    uint32_t cost = tm.abort(AbortCode::ExplicitCheck);
    EXPECT_EQ(cost, TransactionManager::kAbortCycles);
    EXPECT_FALSE(tm.inTransaction());
    EXPECT_EQ(client.rollbacks, 1);
    EXPECT_EQ(tm.stats().aborts, 1u);
    EXPECT_EQ(tm.stats().abortsByCode[static_cast<size_t>(
                  AbortCode::ExplicitCheck)],
              1u);
}

TEST(Htm, FlattenedNesting)
{
    TransactionManager tm(HtmMode::Rot);
    CountingClient client;
    tm.setRollbackClient(&client);

    tm.begin();
    EXPECT_EQ(tm.begin(), 0u); // Inner begin is free.
    EXPECT_EQ(client.checkpoints, 1);

    CommitResult inner = tm.end();
    EXPECT_TRUE(inner.committed);
    EXPECT_EQ(inner.cycles, 0u);
    EXPECT_TRUE(tm.inTransaction()); // Still in the outer.

    CommitResult outer = tm.end();
    EXPECT_TRUE(outer.committed);
    EXPECT_FALSE(tm.inTransaction());
    EXPECT_EQ(tm.stats().begins, 1u);
    EXPECT_EQ(tm.stats().commits, 1u);
}

TEST(Htm, StickyOverflowAbortsAtEnd)
{
    TransactionManager tm(HtmMode::Rot);
    CountingClient client;
    tm.setRollbackClient(&client);

    tm.begin();
    tm.noteArithmeticOverflow();
    EXPECT_TRUE(tm.stickyOverflow());
    CommitResult r = tm.end();
    EXPECT_FALSE(r.committed);
    EXPECT_EQ(r.abortCode, AbortCode::StickyOverflow);
    EXPECT_EQ(client.rollbacks, 1);
    EXPECT_FALSE(tm.stickyOverflow()); // Cleared by the abort.
}

TEST(Htm, SofClearedAtOutermostBegin)
{
    TransactionManager tm(HtmMode::Rot);
    tm.begin();
    tm.noteArithmeticOverflow();
    tm.abort(AbortCode::ExplicitCheck);
    tm.begin();
    EXPECT_FALSE(tm.stickyOverflow());
    tm.end();
}

TEST(Htm, RotWriteCapacityIsL2Sized)
{
    TransactionManager tm(HtmMode::Rot);
    tm.begin();
    // 256KB / 64B = 4096 lines total; sequential lines spread over
    // sets, so we can insert up to 4096 distinct lines.
    bool ok = true;
    for (Addr a = 0; a < 256 * 1024 && ok; a += kLineSize)
        ok = tm.recordWrite(a);
    EXPECT_TRUE(ok);
    // One more line now overflows some set.
    EXPECT_FALSE(tm.recordWrite(256 * 1024));
    EXPECT_EQ(tm.stats().abortsByCode[static_cast<size_t>(
                  AbortCode::Capacity)],
              1u);
}

TEST(Htm, RtmWriteCapacityIsL1Sized)
{
    TransactionManager tm(HtmMode::Rtm);
    tm.begin();
    bool ok = true;
    for (Addr a = 0; a < 32 * 1024 && ok; a += kLineSize)
        ok = tm.recordWrite(a);
    EXPECT_TRUE(ok);
    EXPECT_FALSE(tm.recordWrite(32 * 1024));
}

TEST(Htm, RotIgnoresReads)
{
    TransactionManager tm(HtmMode::Rot);
    tm.begin();
    // Far more reads than any cache could hold: ROT never aborts.
    for (Addr a = 0; a < 4 * 1024 * 1024; a += kLineSize)
        EXPECT_TRUE(tm.recordRead(a));
    EXPECT_TRUE(tm.end().committed);
}

TEST(Htm, RtmTracksReadsInL2)
{
    TransactionManager tm(HtmMode::Rtm);
    tm.begin();
    bool ok = true;
    for (Addr a = 0; a < 256 * 1024 && ok; a += kLineSize)
        ok = tm.recordRead(a);
    EXPECT_TRUE(ok);
    EXPECT_FALSE(tm.recordRead(256 * 1024));
}

TEST(Htm, ReadLatencyFactor)
{
    TransactionManager rot(HtmMode::Rot);
    TransactionManager rtm(HtmMode::Rtm);
    EXPECT_DOUBLE_EQ(rot.readLatencyFactor(), 1.0);
    EXPECT_DOUBLE_EQ(rtm.readLatencyFactor(), 1.2);
}

TEST(Htm, FootprintStatsOnCommit)
{
    TransactionManager tm(HtmMode::Rot);
    tm.begin();
    for (Addr a = 0; a < 10 * kLineSize; a += kLineSize)
        tm.recordWrite(a);
    // Two writes to the same line count once.
    tm.recordWrite(0);
    EXPECT_EQ(tm.currentWriteFootprintBytes(), 10u * kLineSize);
    tm.end();
    EXPECT_EQ(tm.stats().totalWriteFootprintBytes, 10u * kLineSize);
    EXPECT_EQ(tm.stats().maxWriteFootprintBytes, 10u * kLineSize);
    EXPECT_GE(tm.stats().maxWriteWaysUsed, 1u);
}

TEST(Htm, FootprintStatsOnAbort)
{
    TransactionManager tm(HtmMode::Rot);
    CountingClient client;
    tm.setRollbackClient(&client);

    tm.begin();
    for (Addr a = 0; a < 7 * kLineSize; a += kLineSize)
        tm.recordWrite(a);
    tm.abort(AbortCode::ExplicitCheck);

    // Regression: the abort path used to roll the write set back
    // before sampling it, so aborted transactions (above all capacity
    // aborts — by definition the largest) never reached the footprint
    // maxima and Table IV reported the max of the survivors only.
    EXPECT_EQ(tm.stats().abortedWriteFootprintBytes, 7u * kLineSize);
    EXPECT_EQ(tm.stats().maxWriteFootprintBytes, 7u * kLineSize);
    EXPECT_GE(tm.stats().maxWriteWaysUsed, 1u);
    // The commit-side accumulators stay commit-only: the per-commit
    // average must not dilute with aborted work.
    EXPECT_EQ(tm.stats().totalWriteFootprintBytes, 0u);
    EXPECT_EQ(tm.stats().commits, 0u);
}

TEST(Htm, SofAbortRecordsFootprint)
{
    TransactionManager tm(HtmMode::Rot);
    tm.begin();
    for (Addr a = 0; a < 3 * kLineSize; a += kLineSize)
        tm.recordWrite(a);
    tm.noteArithmeticOverflow();
    CommitResult r = tm.end();
    ASSERT_FALSE(r.committed);
    // SOF aborts route through abort(), so they contribute too.
    EXPECT_EQ(tm.stats().abortedWriteFootprintBytes, 3u * kLineSize);
    EXPECT_EQ(tm.stats().maxWriteFootprintBytes, 3u * kLineSize);
}

TEST(Htm, CapacityAbortFootprintIsPreOverflow)
{
    TransactionManager tm(HtmMode::Rot);
    tm.begin();
    bool ok = true;
    for (Addr a = 0; ok; a += kLineSize)
        ok = tm.recordWrite(a);
    // The overflowing line is rejected, so the recorded footprint is
    // the full pre-overflow write set — the L2 capacity.
    EXPECT_EQ(tm.stats().maxWriteFootprintBytes, 256u * 1024u);
    EXPECT_EQ(tm.stats().abortedWriteFootprintBytes, 256u * 1024u);
    EXPECT_EQ(tm.stats().maxWriteWaysUsed, 8u);
}

TEST(Htm, SqueezeWriteWaysIsMonotone)
{
    TransactionManager tm(HtmMode::Rot);
    EXPECT_EQ(tm.writeWays(), 8u);

    tm.squeezeWriteWays(2);
    EXPECT_EQ(tm.writeWays(), 2u);

    // Regression: squeezeWriteWays() used to compare the request
    // against the ORIGINAL cache geometry, so squeeze(2) followed by
    // squeeze(4) silently re-grew the write set back to 4 ways.
    tm.squeezeWriteWays(4);
    EXPECT_EQ(tm.writeWays(), 2u);

    tm.squeezeWriteWays(1);
    EXPECT_EQ(tm.writeWays(), 1u);

    // ways >= current and ways == 0 are no-ops.
    tm.squeezeWriteWays(0);
    EXPECT_EQ(tm.writeWays(), 1u);
    tm.squeezeWriteWays(8);
    EXPECT_EQ(tm.writeWays(), 1u);
}

TEST(Htm, SqueezeKeepsSetCountInvariant)
{
    // A squeeze models reduced associativity, not a smaller cache:
    // the set count (and thus line->set indexing) must not change.
    // With 8-way 256KB L2 there are 512 sets; after squeeze(2) the
    // same 512 sets hold 2 lines each, so 512*2 sequential lines fit
    // and one more overflows.
    TransactionManager tm(HtmMode::Rot);
    tm.squeezeWriteWays(2);
    tm.begin();
    bool ok = true;
    uint32_t lines = 0;
    for (Addr a = 0; ok; a += kLineSize) {
        ok = tm.recordWrite(a);
        if (ok)
            ++lines;
    }
    EXPECT_EQ(lines, 512u * 2u);
}

TEST(Htm, TraceEmitsTxLifecycle)
{
    TraceBuffer buf(16);
    FixedTraceClock clock{42};
    TransactionManager tm(HtmMode::Rot);
    tm.setTrace(&buf, &clock);
    tm.setTraceContext(/*func_id=*/7, /*entry_pc=*/99);

    tm.begin();
    tm.recordWrite(0x1000);
    tm.end();

    tm.begin();
    tm.recordWrite(0x2000);
    tm.recordWrite(0x2000 + kLineSize);
    tm.abort(AbortCode::ExplicitCheck);

    const std::vector<TraceEvent> &ev = buf.events();
    ASSERT_EQ(ev.size(), 4u);
    EXPECT_EQ(ev[0].type, TraceEventType::TxBegin);
    EXPECT_EQ(ev[0].vcycles, 42u);
    EXPECT_EQ(ev[0].funcId, 7u);
    EXPECT_EQ(ev[0].pc, 99u);
    EXPECT_EQ(ev[1].type, TraceEventType::TxCommit);
    EXPECT_EQ(ev[1].bytes, kLineSize);
    EXPECT_EQ(ev[2].type, TraceEventType::TxBegin);
    EXPECT_EQ(ev[3].type, TraceEventType::TxAbort);
    EXPECT_EQ(ev[3].code,
              static_cast<uint8_t>(AbortCode::ExplicitCheck));
    // Abort events carry the pre-rollback footprint.
    EXPECT_EQ(ev[3].bytes, 2u * kLineSize);
}

TEST(Htm, AbortCodeNames)
{
    EXPECT_STREQ(abortCodeName(AbortCode::Capacity), "capacity");
    EXPECT_STREQ(abortCodeName(AbortCode::StickyOverflow),
                 "sticky-overflow");
}

} // namespace
} // namespace nomap
