#include <gtest/gtest.h>

#include "htm/transaction.h"

namespace nomap {
namespace {

/** Rollback client that just counts calls. */
class CountingClient : public RollbackClient
{
  public:
    void txCheckpoint() override { ++checkpoints; }
    void txRollback() override { ++rollbacks; }
    void txDiscardLog() override { ++discards; }

    int checkpoints = 0;
    int rollbacks = 0;
    int discards = 0;
};

TEST(Htm, CommitPath)
{
    TransactionManager tm(HtmMode::Rot);
    CountingClient client;
    tm.setRollbackClient(&client);

    EXPECT_FALSE(tm.inTransaction());
    uint32_t begin_cost = tm.begin();
    EXPECT_EQ(begin_cost, TransactionManager::kRotBeginCycles);
    EXPECT_TRUE(tm.inTransaction());
    EXPECT_TRUE(tm.recordWrite(0x1000));

    CommitResult r = tm.end();
    EXPECT_TRUE(r.committed);
    EXPECT_EQ(r.cycles, TransactionManager::kRotCommitCycles);
    EXPECT_FALSE(tm.inTransaction());
    EXPECT_EQ(client.checkpoints, 1);
    EXPECT_EQ(client.discards, 1);
    EXPECT_EQ(client.rollbacks, 0);
    EXPECT_EQ(tm.stats().commits, 1u);
}

TEST(Htm, ExplicitAbortRollsBack)
{
    TransactionManager tm(HtmMode::Rot);
    CountingClient client;
    tm.setRollbackClient(&client);

    tm.begin();
    tm.recordWrite(0x2000);
    uint32_t cost = tm.abort(AbortCode::ExplicitCheck);
    EXPECT_EQ(cost, TransactionManager::kAbortCycles);
    EXPECT_FALSE(tm.inTransaction());
    EXPECT_EQ(client.rollbacks, 1);
    EXPECT_EQ(tm.stats().aborts, 1u);
    EXPECT_EQ(tm.stats().abortsByCode[static_cast<size_t>(
                  AbortCode::ExplicitCheck)],
              1u);
}

TEST(Htm, FlattenedNesting)
{
    TransactionManager tm(HtmMode::Rot);
    CountingClient client;
    tm.setRollbackClient(&client);

    tm.begin();
    EXPECT_EQ(tm.begin(), 0u); // Inner begin is free.
    EXPECT_EQ(client.checkpoints, 1);

    CommitResult inner = tm.end();
    EXPECT_TRUE(inner.committed);
    EXPECT_EQ(inner.cycles, 0u);
    EXPECT_TRUE(tm.inTransaction()); // Still in the outer.

    CommitResult outer = tm.end();
    EXPECT_TRUE(outer.committed);
    EXPECT_FALSE(tm.inTransaction());
    EXPECT_EQ(tm.stats().begins, 1u);
    EXPECT_EQ(tm.stats().commits, 1u);
}

TEST(Htm, StickyOverflowAbortsAtEnd)
{
    TransactionManager tm(HtmMode::Rot);
    CountingClient client;
    tm.setRollbackClient(&client);

    tm.begin();
    tm.noteArithmeticOverflow();
    EXPECT_TRUE(tm.stickyOverflow());
    CommitResult r = tm.end();
    EXPECT_FALSE(r.committed);
    EXPECT_EQ(r.abortCode, AbortCode::StickyOverflow);
    EXPECT_EQ(client.rollbacks, 1);
    EXPECT_FALSE(tm.stickyOverflow()); // Cleared by the abort.
}

TEST(Htm, SofClearedAtOutermostBegin)
{
    TransactionManager tm(HtmMode::Rot);
    tm.begin();
    tm.noteArithmeticOverflow();
    tm.abort(AbortCode::ExplicitCheck);
    tm.begin();
    EXPECT_FALSE(tm.stickyOverflow());
    tm.end();
}

TEST(Htm, RotWriteCapacityIsL2Sized)
{
    TransactionManager tm(HtmMode::Rot);
    tm.begin();
    // 256KB / 64B = 4096 lines total; sequential lines spread over
    // sets, so we can insert up to 4096 distinct lines.
    bool ok = true;
    for (Addr a = 0; a < 256 * 1024 && ok; a += kLineSize)
        ok = tm.recordWrite(a);
    EXPECT_TRUE(ok);
    // One more line now overflows some set.
    EXPECT_FALSE(tm.recordWrite(256 * 1024));
    EXPECT_EQ(tm.stats().abortsByCode[static_cast<size_t>(
                  AbortCode::Capacity)],
              1u);
}

TEST(Htm, RtmWriteCapacityIsL1Sized)
{
    TransactionManager tm(HtmMode::Rtm);
    tm.begin();
    bool ok = true;
    for (Addr a = 0; a < 32 * 1024 && ok; a += kLineSize)
        ok = tm.recordWrite(a);
    EXPECT_TRUE(ok);
    EXPECT_FALSE(tm.recordWrite(32 * 1024));
}

TEST(Htm, RotIgnoresReads)
{
    TransactionManager tm(HtmMode::Rot);
    tm.begin();
    // Far more reads than any cache could hold: ROT never aborts.
    for (Addr a = 0; a < 4 * 1024 * 1024; a += kLineSize)
        EXPECT_TRUE(tm.recordRead(a));
    EXPECT_TRUE(tm.end().committed);
}

TEST(Htm, RtmTracksReadsInL2)
{
    TransactionManager tm(HtmMode::Rtm);
    tm.begin();
    bool ok = true;
    for (Addr a = 0; a < 256 * 1024 && ok; a += kLineSize)
        ok = tm.recordRead(a);
    EXPECT_TRUE(ok);
    EXPECT_FALSE(tm.recordRead(256 * 1024));
}

TEST(Htm, ReadLatencyFactor)
{
    TransactionManager rot(HtmMode::Rot);
    TransactionManager rtm(HtmMode::Rtm);
    EXPECT_DOUBLE_EQ(rot.readLatencyFactor(), 1.0);
    EXPECT_DOUBLE_EQ(rtm.readLatencyFactor(), 1.2);
}

TEST(Htm, FootprintStatsOnCommit)
{
    TransactionManager tm(HtmMode::Rot);
    tm.begin();
    for (Addr a = 0; a < 10 * kLineSize; a += kLineSize)
        tm.recordWrite(a);
    // Two writes to the same line count once.
    tm.recordWrite(0);
    EXPECT_EQ(tm.currentWriteFootprintBytes(), 10u * kLineSize);
    tm.end();
    EXPECT_EQ(tm.stats().totalWriteFootprintBytes, 10u * kLineSize);
    EXPECT_EQ(tm.stats().maxWriteFootprintBytes, 10u * kLineSize);
    EXPECT_GE(tm.stats().maxWriteWaysUsed, 1u);
}

TEST(Htm, AbortCodeNames)
{
    EXPECT_STREQ(abortCodeName(AbortCode::Capacity), "capacity");
    EXPECT_STREQ(abortCodeName(AbortCode::StickyOverflow),
                 "sticky-overflow");
}

} // namespace
} // namespace nomap
