#include <cstdlib>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "inject/fault_plan.h"
#include "support/logging.h"

namespace nomap {
namespace {

// ---- Grammar ----------------------------------------------------------

TEST(FaultPlan, ParsePrintRoundTrip)
{
    const char *cases[] = {
        "htm.abort@3",
        "htm.abort@3,check.bounds@17",
        "htm.abort.capacity@1,htm.abort.irrevocable@2,htm.sof@5",
        "htm.store@64,htm.ways@2",
        "check.bounds@1,check.overflow@2,check.type@3,"
        "check.property@4,check.other@5,check.any@6",
        "ftl.osr@2:17",
        "engine.compile@1,engine.watchdog@1000",
        "service.queuefull@2,service.cancel@7,service.retry@1",
    };
    for (const char *text : cases) {
        FaultPlan plan = FaultPlan::parse(text);
        EXPECT_EQ(plan.toString(), text);
        // parse → print → parse is a fixed point.
        EXPECT_EQ(FaultPlan::parse(plan.toString()).toString(), text);
    }
}

TEST(FaultPlan, WhitespaceIsToleratedButNotCanonical)
{
    FaultPlan plan =
        FaultPlan::parse("  htm.abort@1 ,\tcheck.any@2  ");
    EXPECT_EQ(plan.toString(), "htm.abort@1,check.any@2");
    EXPECT_EQ(plan.actions().size(), 2u);
}

TEST(FaultPlan, EmptyStringIsEmptyPlan)
{
    EXPECT_TRUE(FaultPlan::parse("").empty());
    EXPECT_TRUE(FaultPlan::parse("  ").empty());
    EXPECT_EQ(FaultPlan().toString(), "");
}

TEST(FaultPlan, MalformedInputThrows)
{
    const char *bad[] = {
        "bogus@1",           // unknown site
        "htm.abort",         // missing @count
        "htm.abort@",        // empty count
        "htm.abort@x",       // non-numeric count
        "htm.abort@0",       // zero count (occurrences are 1-based)
        "htm.abort@1:",      // empty arg
        "htm.abort@1:x",     // non-numeric arg
        "htm.abort@1,",      // trailing comma
        ",htm.abort@1",      // leading comma
        "htm.abort@1,,ftl.osr@1", // empty middle spec
        "check.bounds @1",   // space inside a spec
    };
    for (const char *text : bad) {
        EXPECT_THROW(FaultPlan::parse(text), FatalError)
            << "input: \"" << text << "\"";
    }
}

TEST(FaultPlan, MisspelledSiteIsRejectedAtParseTime)
{
    // A typo'd site must fail loudly when the plan is armed, not arm
    // a spec that can never fire.
    EXPECT_THROW(FaultPlan::parse("net.acept@1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("stm.falback@1"), FatalError);
}

TEST(FaultPlan, ArgFilterOnlyAllowedWhereItCanMatch)
{
    // Only ftl.osr passes a key to FaultInjector::fire, so only it
    // may carry a ':arg' filter. Before this check, a plan like
    // "net.accept@1:7" parsed fine, armed, and silently never fired.
    EXPECT_THROW(FaultPlan::parse("net.accept@1:7"), FatalError);
    EXPECT_THROW(FaultPlan::parse("stm.fallback@1:2"), FatalError);
    EXPECT_THROW(FaultPlan::parse("check.bounds@3:1"), FatalError);
    EXPECT_THROW(
        FaultPlan::parse("htm.abort@1,service.retry@2:9"),
        FatalError);

    // ftl.osr keeps its filter, with and without companions.
    EXPECT_EQ(FaultPlan::parse("ftl.osr@1:7").toString(),
              "ftl.osr@1:7");
    EXPECT_EQ(
        FaultPlan::parse("htm.abort@1,ftl.osr@2:17").toString(),
        "htm.abort@1,ftl.osr@2:17");
}

TEST(FaultPlan, StmFallbackSiteRoundTrips)
{
    FaultPlan plan = FaultPlan::parse("stm.fallback@2");
    ASSERT_EQ(plan.actions().size(), 1u);
    EXPECT_EQ(plan.actions()[0].site, FaultSite::StmFallback);
    EXPECT_EQ(plan.actions()[0].count, 2u);
    EXPECT_EQ(plan.toString(), "stm.fallback@2");

    FaultInjector inj(plan);
    EXPECT_FALSE(inj.fire(FaultSite::StmFallback));
    EXPECT_TRUE(inj.fire(FaultSite::StmFallback));
    EXPECT_FALSE(inj.fire(FaultSite::StmFallback)); // one-shot
}

TEST(FaultPlan, EverySiteNameParses)
{
    for (size_t i = 0; i < kNumFaultSites; ++i) {
        FaultSite site = static_cast<FaultSite>(i);
        std::string spec = std::string(faultSiteName(site)) + "@7";
        FaultPlan plan = FaultPlan::parse(spec);
        ASSERT_EQ(plan.actions().size(), 1u) << spec;
        EXPECT_EQ(plan.actions()[0].site, site);
        EXPECT_EQ(plan.actions()[0].count, 7u);
        EXPECT_EQ(plan.toString(), spec);
    }
}

TEST(FaultPlan, FromEnvReadsFreshEachCall)
{
    ::unsetenv("NOMAP_FAULT_PLAN");
    EXPECT_FALSE(FaultPlan::fromEnv().has_value());
    ::setenv("NOMAP_FAULT_PLAN", "htm.abort@3,check.bounds@17", 1);
    std::optional<FaultPlan> plan = FaultPlan::fromEnv();
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->toString(), "htm.abort@3,check.bounds@17");
    ::setenv("NOMAP_FAULT_PLAN", "", 1);
    EXPECT_FALSE(FaultPlan::fromEnv().has_value());
    ::unsetenv("NOMAP_FAULT_PLAN");
}

// ---- Injector semantics -----------------------------------------------

TEST(FaultInjector, FiresExactlyAtTheNthOccurrence)
{
    FaultInjector inj(FaultPlan::parse("check.bounds@3"));
    EXPECT_FALSE(inj.fire(FaultSite::CheckBounds));
    EXPECT_FALSE(inj.fire(FaultSite::CheckBounds));
    EXPECT_TRUE(inj.fire(FaultSite::CheckBounds));
    EXPECT_FALSE(inj.fire(FaultSite::CheckBounds)); // One-shot.
    EXPECT_EQ(inj.occurrences(FaultSite::CheckBounds), 4u);
    EXPECT_EQ(inj.occurrences(FaultSite::CheckOverflow), 0u);
}

TEST(FaultInjector, UnrelatedSitesDoNotAdvanceTheAction)
{
    FaultInjector inj(FaultPlan::parse("htm.abort@2"));
    EXPECT_FALSE(inj.fire(FaultSite::HtmStore));
    EXPECT_FALSE(inj.fire(FaultSite::HtmAbortExplicit));
    EXPECT_FALSE(inj.fire(FaultSite::HtmStore));
    EXPECT_TRUE(inj.fire(FaultSite::HtmAbortExplicit));
}

TEST(FaultInjector, ArgFilteredActionsOnlyCountMatchingKeys)
{
    FaultInjector inj(FaultPlan::parse("ftl.osr@2:17"));
    EXPECT_FALSE(inj.fire(FaultSite::FtlOsr, 17)); // match #1
    EXPECT_FALSE(inj.fire(FaultSite::FtlOsr, 16)); // no match
    EXPECT_TRUE(inj.fire(FaultSite::FtlOsr, 17));  // match #2: fires
    EXPECT_FALSE(inj.fire(FaultSite::FtlOsr, 17));
    EXPECT_EQ(inj.occurrences(FaultSite::FtlOsr), 4u);
}

TEST(FaultInjector, TwoActionsOnOneSiteFireIndependently)
{
    FaultInjector inj(
        FaultPlan::parse("check.any@1,check.any@3"));
    EXPECT_TRUE(inj.fire(FaultSite::CheckAny));
    EXPECT_FALSE(inj.fire(FaultSite::CheckAny));
    EXPECT_TRUE(inj.fire(FaultSite::CheckAny));
}

TEST(FaultInjector, ValueSiteIsQueriedNotFired)
{
    FaultInjector inj(FaultPlan::parse("htm.ways@2"));
    EXPECT_EQ(inj.valueOf(FaultSite::HtmWaysSqueeze, 0), 2u);
    EXPECT_EQ(inj.valueOf(FaultSite::HtmStore, 9), 9u);
    // fire() never reports a value-site as fired.
    EXPECT_FALSE(inj.fire(FaultSite::HtmWaysSqueeze));
}

// ---- Engine integration -----------------------------------------------

const char kLoopProgram[] = R"JS(
var A = [];
for (var i = 0; i < 24; i++) A[i] = (i * 5) % 17;
function work(a) {
    var s = 0;
    for (var j = 0; j < a.length; j++) {
        a[j] = (a[j] + 1) % 23;
        s = (s + a[j]) % 997;
    }
    return s;
}
var out = 0;
for (var r = 0; r < 90; r++) out = (out + work(A)) % 100000;
result = out;
)JS";

TEST(FaultInjectorEngine, ArmedPlanWithNoMatchingSiteIsZeroOverhead)
{
    // Acceptance criterion: arming a plan whose actions never fire
    // must leave every instruction/check/cycle counter bit-identical
    // to a run with no plan at all.
    EngineConfig config;
    config.arch = Architecture::NoMap;

    Engine plain(config);
    EngineResult ref = plain.run(kLoopProgram);

    FaultPlan plan = FaultPlan::parse(
        "check.bounds@1000000000,engine.watchdog@1000000000,"
        "htm.abort@1000000000,service.cancel@1000000000");
    Engine armed(config);
    armed.armFaultPlan(&plan);
    EngineResult got = armed.run(kLoopProgram);

    EXPECT_EQ(got.resultString, ref.resultString);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(got.stats.instr[i], ref.stats.instr[i]) << i;
    for (size_t i = 0; i < 5; ++i)
        EXPECT_EQ(got.stats.checks[i], ref.stats.checks[i]) << i;
    EXPECT_EQ(got.stats.cyclesTm, ref.stats.cyclesTm);
    EXPECT_EQ(got.stats.cyclesNonTm, ref.stats.cyclesNonTm);
    EXPECT_EQ(got.stats.deopts, ref.stats.deopts);
    EXPECT_EQ(got.stats.txCommits, ref.stats.txCommits);
    EXPECT_EQ(got.stats.txAborts, ref.stats.txAborts);

    // The sites were genuinely polled, just never triggered.
    ASSERT_NE(armed.faultInjector(), nullptr);
    EXPECT_GT(armed.faultInjector()->occurrences(
                  FaultSite::CheckBounds),
              0u);
    EXPECT_GT(armed.faultInjector()->occurrences(
                  FaultSite::EngineTxWatchdog),
              0u);
    EXPECT_GT(
        armed.faultInjector()->occurrences(FaultSite::HtmAbortExplicit),
        0u);
}

TEST(FaultInjectorEngine, ArmDisarmAndReset)
{
    EngineConfig config;
    config.arch = Architecture::NoMap;
    Engine engine(config);
    EXPECT_EQ(engine.faultInjector(), nullptr);

    FaultPlan plan = FaultPlan::parse("htm.abort@1");
    engine.armFaultPlan(&plan);
    ASSERT_NE(engine.faultInjector(), nullptr);
    EngineResult faulted = engine.run(kLoopProgram);
    EXPECT_GT(faulted.stats.txAborts, 0u);

    // reset() re-arms the same plan with fresh counters.
    engine.reset();
    ASSERT_NE(engine.faultInjector(), nullptr);
    EXPECT_EQ(
        engine.faultInjector()->occurrences(FaultSite::HtmAbortExplicit),
        0u);

    engine.armFaultPlan(nullptr);
    EXPECT_EQ(engine.faultInjector(), nullptr);
    engine.reset();
    EngineResult clean = engine.run(kLoopProgram);
    EXPECT_EQ(clean.resultString, faulted.resultString);
    EXPECT_EQ(clean.stats.txAborts, 0u);
}

TEST(FaultInjectorEngine, WaysSqueezeIsMonotoneAcrossRearm)
{
    EngineConfig config;
    config.arch = Architecture::NoMap;
    Engine engine(config);
    EXPECT_EQ(engine.htm().writeWays(), 8u);

    FaultPlan narrow = FaultPlan::parse("htm.ways@2");
    engine.armFaultPlan(&narrow);
    EXPECT_EQ(engine.htm().writeWays(), 2u);

    // Regression: re-arming with a wider squeeze used to re-grow the
    // write set, because squeezeWriteWays() compared the request
    // against the ORIGINAL cache geometry instead of the current
    // associativity. Squeezes must be monotone.
    FaultPlan wide = FaultPlan::parse("htm.ways@4");
    engine.armFaultPlan(&wide);
    EXPECT_EQ(engine.htm().writeWays(), 2u);

    // Disarming does not restore ways (the squeeze models permanently
    // degraded hardware for the life of the isolate); a full reset()
    // rebuilds the VM and re-applies only the armed plan.
    engine.armFaultPlan(nullptr);
    EXPECT_EQ(engine.htm().writeWays(), 2u);
    engine.reset();
    EXPECT_EQ(engine.htm().writeWays(), 8u);
}

TEST(FaultInjectorEngine, WaysSqueezeStillExecutesCorrectly)
{
    EngineConfig config;
    config.arch = Architecture::NoMap;
    Engine plain(config);
    EngineResult ref = plain.run(kLoopProgram);

    FaultPlan plan = FaultPlan::parse("htm.ways@1");
    Engine squeezed(config);
    squeezed.armFaultPlan(&plan);
    EXPECT_EQ(squeezed.htm().writeWays(), 1u);
    EngineResult got = squeezed.run(kLoopProgram);
    // Guest-visible semantics survive the squeeze; only capacity
    // behavior may differ (this workload's footprint fits either way).
    EXPECT_EQ(got.resultString, ref.resultString);
}

TEST(FaultInjectorEngine, EnginePicksUpEnvPlanAtConstruction)
{
    ::setenv("NOMAP_FAULT_PLAN", "htm.abort@1", 1);
    EngineConfig config;
    config.arch = Architecture::NoMap;
    Engine engine(config);
    ::unsetenv("NOMAP_FAULT_PLAN");

    ASSERT_NE(engine.faultInjector(), nullptr);
    EngineResult r = engine.run(kLoopProgram);
    EXPECT_GT(r.stats.txAborts, 0u);

    // armFaultPlan(nullptr) disarms even the env-provided plan.
    engine.armFaultPlan(nullptr);
    EXPECT_EQ(engine.faultInjector(), nullptr);
}

} // namespace
} // namespace nomap
