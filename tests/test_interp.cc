#include <gtest/gtest.h>

#include "engine/engine.h"

namespace nomap {
namespace {

/**
 * Interpreter/Baseline tier behaviour, exercised through tier-capped
 * engines: profiling feedback, inline caches, OSR landing, and the
 * cost asymmetry between the tiers.
 */

EngineResult
runCapped(Tier cap, const std::string &src)
{
    EngineConfig config;
    config.maxTier = cap;
    Engine engine(config);
    return engine.run(src);
}

TEST(Interp, SemanticCornerCases)
{
    // All handled by runtime calls: no checks, no crashes.
    const char *src = R"JS(
var a = [];
a[3] = 5;                 // hole at 0..2
var hole = a[1];          // undefined
var oob = a[100];         // undefined
var s = "x" + 1 + true;   // string concat with coercions
var d = 7 / 2;            // fractional
var m = -7 % 3;           // negative modulo
var shift = -1 >>> 28;    // unsigned shift
result = "" + hole + "|" + oob + "|" + s + "|" + d + "|" + m +
         "|" + shift;
)JS";
    EngineResult r = runCapped(Tier::Interpreter, src);
    EXPECT_EQ(r.resultString, "undefined|undefined|x1true|3.5|-1|15");
}

TEST(Interp, LoopProfilesCollectTripCounts)
{
    EngineConfig config;
    config.maxTier = Tier::Interpreter;
    Engine engine(config);
    engine.run(R"JS(
function f(n) {
    var s = 0;
    for (var i = 0; i < n; i++) s += i;
    return s;
}
var out = 0;
for (var r = 0; r < 10; r++) out = f(25);
result = out;
)JS");
    const CompiledProgram *program = engine.program();
    ASSERT_NE(program, nullptr);
    int32_t id = program->findFunction("f");
    ASSERT_GE(id, 0);
    const FunctionProfile &prof =
        program->functions[static_cast<size_t>(id)]->profile;
    EXPECT_EQ(prof.callCount, 10u);
    ASSERT_EQ(prof.loops.size(), 1u);
    EXPECT_NEAR(prof.loops[0].avgTripCount(), 25.0, 1.0);
}

TEST(Interp, ArithProfilesRecordKinds)
{
    EngineConfig config;
    config.maxTier = Tier::Interpreter;
    Engine engine(config);
    engine.run(R"JS(
function add(a, b) { return a + b; }
add(1, 2);
add(1.5, 2);
result = add(3, 4);
)JS");
    const CompiledProgram *program = engine.program();
    int32_t id = program->findFunction("add");
    const BytecodeFunction &fn =
        *program->functions[static_cast<size_t>(id)];
    bool found = false;
    // Warm ops may have been quickened in place; classify through the
    // generic mapping.
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
        if (genericOpcodeOf(fn.code[pc].op) == Opcode::Binary) {
            found = true;
            EXPECT_TRUE(fn.profile.arith[pc].lhsMask & kMaskInt32);
            EXPECT_TRUE(fn.profile.arith[pc].lhsMask & kMaskDouble);
            EXPECT_TRUE(fn.profile.arith[pc].rhsMask & kMaskInt32);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Interp, OverflowRecordedInProfile)
{
    EngineConfig config;
    config.maxTier = Tier::Interpreter;
    Engine engine(config);
    engine.run(R"JS(
function add(a, b) { return a + b; }
result = add(2000000000, 2000000000);
)JS");
    const CompiledProgram *program = engine.program();
    const BytecodeFunction &fn = *program->functions[static_cast<size_t>(
        program->findFunction("add"))];
    bool saw = false;
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
        if (genericOpcodeOf(fn.code[pc].op) == Opcode::Binary)
            saw |= fn.profile.arith[pc].sawIntOverflow;
    }
    EXPECT_TRUE(saw);
}

TEST(Interp, PropertyProfilesTrackShapes)
{
    EngineConfig config;
    config.maxTier = Tier::Baseline;
    Engine engine(config);
    engine.run(R"JS(
function get(o) { return o.v; }
var mono = {v: 1};
for (var i = 0; i < 20; i++) get(mono);
result = get(mono);
)JS");
    const CompiledProgram *program = engine.program();
    const BytecodeFunction &fn = *program->functions[static_cast<size_t>(
        program->findFunction("get"))];
    bool found = false;
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
        if (genericOpcodeOf(fn.code[pc].op) == Opcode::GetProp) {
            found = true;
            EXPECT_TRUE(fn.profile.property[pc].monomorphicObject());
        }
    }
    EXPECT_TRUE(found);
}

TEST(Interp, PolymorphicSitesMarked)
{
    EngineConfig config;
    config.maxTier = Tier::Baseline;
    Engine engine(config);
    engine.run(R"JS(
function get(o) { return o.v; }
var a = {v: 1};
var b = {w: 2, v: 3};
for (var i = 0; i < 20; i++) { get(a); get(b); }
result = get(a);
)JS");
    const CompiledProgram *program = engine.program();
    const BytecodeFunction &fn = *program->functions[static_cast<size_t>(
        program->findFunction("get"))];
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
        if (genericOpcodeOf(fn.code[pc].op) == Opcode::GetProp) {
            EXPECT_TRUE(fn.profile.property[pc].polymorphic);
            EXPECT_FALSE(fn.profile.property[pc].monomorphicObject());
        }
    }
}

TEST(Interp, BaselineCheaperThanInterpreter)
{
    const char *src = R"JS(
function f(n) { var s = 0; for (var i = 0; i < n; i++) s += i; return s; }
var out = 0;
for (var r = 0; r < 40; r++) out = f(200);
result = out;
)JS";
    EngineResult interp = runCapped(Tier::Interpreter, src);
    EngineResult baseline = runCapped(Tier::Baseline, src);
    EXPECT_EQ(interp.resultString, baseline.resultString);
    EXPECT_LT(baseline.stats.totalInstructions(),
              interp.stats.totalInstructions());
    // Everything below FTL lands in the NoFTL bucket.
    EXPECT_EQ(baseline.stats.instrIn(InstrBucket::NoTm), 0u);
    EXPECT_EQ(baseline.stats.instrIn(InstrBucket::TmOpt), 0u);
}

TEST(Interp, RecursionDepth)
{
    const char *src = R"JS(
function down(n) { if (n <= 0) return 0; return 1 + down(n - 1); }
result = down(200);
)JS";
    EXPECT_EQ(runCapped(Tier::Interpreter, src).resultString, "200");
}

TEST(Interp, LogicalShortCircuit)
{
    const char *src = R"JS(
var calls = 0;
function bump() { calls = calls + 1; return true; }
var a = false && bump();
var b = true || bump();
var c = true && bump();
result = "" + calls + a + b + c;
)JS";
    EXPECT_EQ(runCapped(Tier::Interpreter, src).resultString,
              "1falsetruetrue");
}

TEST(Interp, TernaryAndCompound)
{
    const char *src = R"JS(
var x = 10;
x += 5; x -= 3; x *= 2; x /= 4; x <<= 2; x |= 1; x ^= 2; x &= 31;
var y = x > 20 ? "big" : "small";
result = "" + x + y;
)JS";
    // x: 10+5=15, -3=12, *2=24, /4=6, <<2=24, |1=25, ^2=27, &31=27.
    EXPECT_EQ(runCapped(Tier::Interpreter, src).resultString,
              "27big");
}

TEST(Interp, PrePostIncrementSemantics)
{
    const char *src = R"JS(
var i = 5;
var a = i++;
var b = ++i;
var arr = [10, 20];
var c = arr[0]++;
var o = {n: 1};
var d = --o.n;
result = "" + a + b + c + arr[0] + d + o.n;
)JS";
    EXPECT_EQ(runCapped(Tier::Interpreter, src).resultString,
              "5710" "11" "00");
}

} // namespace
} // namespace nomap
