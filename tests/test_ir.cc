#include <gtest/gtest.h>

#include "bytecode/compiler.h"
#include "engine/engine.h"
#include "ir/builder.h"
#include "js/parser.h"

namespace nomap {
namespace {

/**
 * IR-builder tests need realistic profiles, so we run programs
 * through a real Engine first and inspect the IR it compiled, or
 * build IR directly from hand-seeded profiles.
 */
class IrTest : public ::testing::Test
{
  protected:
    IrTest() : heap(shapes, strings) {}

    /** Compile to bytecode and hand-seed a profile. */
    BytecodeFunction &
    prepare(const std::string &src, const std::string &fn_name)
    {
        program = std::make_unique<CompiledProgram>(
            compile(parseProgram(src), heap));
        int32_t id = program->findFunction(fn_name);
        EXPECT_GE(id, 0);
        return *program->functions[static_cast<size_t>(id)];
    }

    static uint32_t
    countOps(const IrFunction &ir, IrOp op)
    {
        uint32_t n = 0;
        for (const IrBlock &block : ir.blocks) {
            for (const IrInstr &instr : block.instrs)
                n += instr.op == op;
        }
        return n;
    }

    ShapeTable shapes;
    StringTable strings;
    Heap heap;
    std::unique_ptr<CompiledProgram> program;
};

TEST_F(IrTest, IntProfileSpeculatesInt32WithOverflowCheck)
{
    BytecodeFunction &fn =
        prepare("function f(a, b) { return a + b; }", "f");
    // Seed: both operands int32, no overflow seen.
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
        if (fn.code[pc].op == Opcode::Binary) {
            fn.profile.arith[pc].lhsMask = kMaskInt32;
            fn.profile.arith[pc].rhsMask = kMaskInt32;
            fn.profile.arith[pc].resultMask = kMaskInt32;
        }
    }
    IrFunction ir = buildIr(fn, heap, Tier::Ftl);
    EXPECT_EQ(countOps(ir, IrOp::AddInt), 1u);
    EXPECT_EQ(countOps(ir, IrOp::CheckOverflow), 1u);
    EXPECT_EQ(countOps(ir, IrOp::GenericBinary), 0u);
}

TEST_F(IrTest, OverflowProfileFallsToDouble)
{
    BytecodeFunction &fn =
        prepare("function f(a, b) { return a + b; }", "f");
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
        if (fn.code[pc].op == Opcode::Binary) {
            fn.profile.arith[pc].lhsMask = kMaskInt32;
            fn.profile.arith[pc].rhsMask = kMaskInt32;
            fn.profile.arith[pc].sawIntOverflow = true;
        }
    }
    IrFunction ir = buildIr(fn, heap, Tier::Ftl);
    EXPECT_EQ(countOps(ir, IrOp::AddInt), 0u);
    EXPECT_EQ(countOps(ir, IrOp::AddDouble), 1u);
    EXPECT_EQ(countOps(ir, IrOp::CheckOverflow), 0u);
}

TEST_F(IrTest, PolymorphicProfileStaysGeneric)
{
    BytecodeFunction &fn =
        prepare("function f(a, b) { return a + b; }", "f");
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
        if (fn.code[pc].op == Opcode::Binary) {
            fn.profile.arith[pc].lhsMask = kMaskInt32 | kMaskString;
            fn.profile.arith[pc].rhsMask = kMaskInt32;
        }
    }
    IrFunction ir = buildIr(fn, heap, Tier::Ftl);
    EXPECT_EQ(countOps(ir, IrOp::GenericBinary), 1u);
    EXPECT_EQ(countOps(ir, IrOp::AddInt), 0u);
}

TEST_F(IrTest, UnprofiledSitesStayGeneric)
{
    BytecodeFunction &fn =
        prepare("function f(a, b) { return a + b; }", "f");
    IrFunction ir = buildIr(fn, heap, Tier::Ftl);
    EXPECT_EQ(countOps(ir, IrOp::GenericBinary), 1u);
}

TEST_F(IrTest, ArrayProfileEmitsFastPathWithChecks)
{
    BytecodeFunction &fn =
        prepare("function f(a, i) { return a[i]; }", "f");
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
        if (fn.code[pc].op == Opcode::GetIndex) {
            fn.profile.index[pc].baseMask = kMaskArray;
            fn.profile.index[pc].indexMask = kMaskInt32;
        }
    }
    IrFunction ir = buildIr(fn, heap, Tier::Ftl);
    EXPECT_EQ(countOps(ir, IrOp::CheckArray), 1u);
    EXPECT_EQ(countOps(ir, IrOp::CheckBounds), 1u);
    EXPECT_EQ(countOps(ir, IrOp::GetElem), 1u);
    EXPECT_EQ(countOps(ir, IrOp::CheckNotHole), 1u);
}

TEST_F(IrTest, OutOfBoundsProfileStaysGeneric)
{
    BytecodeFunction &fn =
        prepare("function f(a, i) { return a[i]; }", "f");
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
        if (fn.code[pc].op == Opcode::GetIndex) {
            fn.profile.index[pc].baseMask = kMaskArray;
            fn.profile.index[pc].indexMask = kMaskInt32;
            fn.profile.index[pc].sawOutOfBounds = true;
        }
    }
    IrFunction ir = buildIr(fn, heap, Tier::Ftl);
    EXPECT_EQ(countOps(ir, IrOp::GenericGetIndex), 1u);
    EXPECT_EQ(countOps(ir, IrOp::GetElem), 0u);
}

TEST_F(IrTest, MonomorphicShapeEmitsCheckShapePlusGetSlot)
{
    BytecodeFunction &fn =
        prepare("function f(o) { return o.x; }", "f");
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
        if (fn.code[pc].op == Opcode::GetProp) {
            fn.profile.property[pc].baseMask = kMaskObject;
            fn.profile.property[pc].shape = 3;
            fn.profile.property[pc].slot = 0;
        }
    }
    IrFunction ir = buildIr(fn, heap, Tier::Ftl);
    EXPECT_EQ(countOps(ir, IrOp::CheckShape), 1u);
    EXPECT_EQ(countOps(ir, IrOp::GetSlot), 1u);
}

TEST_F(IrTest, ArrayLengthUsesGetArrayLen)
{
    BytecodeFunction &fn =
        prepare("function f(a) { return a.length; }", "f");
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
        if (fn.code[pc].op == Opcode::GetProp)
            fn.profile.property[pc].baseMask = kMaskArray;
    }
    IrFunction ir = buildIr(fn, heap, Tier::Ftl);
    EXPECT_EQ(countOps(ir, IrOp::GetArrayLen), 1u);
    EXPECT_EQ(countOps(ir, IrOp::CheckArray), 1u);
}

TEST_F(IrTest, ChecksCarrySmpPcsAndAreUnconverted)
{
    BytecodeFunction &fn =
        prepare("function f(a, b) { return a - b; }", "f");
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
        if (fn.code[pc].op == Opcode::Binary) {
            fn.profile.arith[pc].lhsMask = kMaskInt32;
            fn.profile.arith[pc].rhsMask = kMaskInt32;
        }
    }
    IrFunction ir = buildIr(fn, heap, Tier::Ftl);
    for (const IrBlock &block : ir.blocks) {
        for (const IrInstr &instr : block.instrs) {
            if (instr.isCheck()) {
                EXPECT_NE(instr.smpPc, kNoSmp);
                EXPECT_FALSE(instr.converted);
            }
        }
    }
}

TEST_F(IrTest, CfgStructureRoundTrips)
{
    BytecodeFunction &fn = prepare(
        "function f(n) { var s = 0;"
        " for (var i = 0; i < n; i++) { if (i & 1) s += i; }"
        " return s; }",
        "f");
    IrFunction ir = buildIr(fn, heap, Tier::Ftl);
    ir.verify(); // Would panic on inconsistency.
    // One loop header block flagged with the loop id.
    uint32_t headers = 0;
    for (const IrBlock &block : ir.blocks)
        headers += block.loopId >= 0;
    EXPECT_EQ(headers, 1u);
    std::string printed = ir.print();
    EXPECT_NE(printed.find("Branch"), std::string::npos);
}

TEST_F(IrTest, MathBuiltinsBecomeIntrinsics)
{
    BytecodeFunction &fn =
        prepare("function f(x) { return Math.sqrt(x); }", "f");
    IrFunction ir = buildIr(fn, heap, Tier::Ftl);
    EXPECT_EQ(countOps(ir, IrOp::Intrinsic), 1u);
    EXPECT_EQ(countOps(ir, IrOp::CallNative), 0u);
}

TEST_F(IrTest, PrintStaysRuntimeCall)
{
    BytecodeFunction &fn =
        prepare("function f(x) { print(x); }", "f");
    IrFunction ir = buildIr(fn, heap, Tier::Ftl);
    EXPECT_EQ(countOps(ir, IrOp::CallNative), 1u);
    EXPECT_EQ(countOps(ir, IrOp::Intrinsic), 0u);
}

} // namespace
} // namespace nomap
