/**
 * @file
 * Differential test for the region template-compilation tier
 * (EngineConfig::jitTier): an Engine run with the compiled tier
 * enabled must be bit-identical — result value, print output, every
 * ExecutionStats counter, and the full trace-event stream including
 * virtual-cycle timestamps — to the FTL reference path, and must
 * compute the same guest-visible results as a pure-interpreter run.
 * The chain of continuation templates is a pure host-speed
 * optimization; nothing guest-visible may move.
 *
 * The equivalence must hold under armed deterministic fault plans
 * (the compiled path fires every injection site the FTL path fires,
 * in the same occurrence order), with tracing enabled, and across
 * adaptive replanning mid-abort-storm — where tier revisions must
 * respect the activeRuns/pendingRecompile deferral so the region
 * chain is never rebuilt under a live activation.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "inject/fault_plan.h"
#include "jit/jit_chain.h"
#include "suites/suite.h"
#include "testing/program_generator.h"
#include "trace/trace.h"

namespace nomap {
namespace {

struct Outcome {
    std::string result;
    std::string printed;
    ExecutionStats stats;
    std::vector<TraceEvent> events;
};

Outcome
runOutcome(const std::string &source, Architecture arch, bool jit,
           uint32_t trace_capacity, const FaultPlan *plan)
{
    EngineConfig config;
    config.arch = arch;
    config.jitTier = jit;
    config.traceCapacity = trace_capacity;
    Engine engine(config);
    if (plan)
        engine.armFaultPlan(plan);
    EngineResult r = engine.run(source);
    Outcome out;
    out.result = r.resultString;
    out.printed = r.printed;
    out.stats = r.stats;
    if (engine.trace())
        out.events = engine.trace()->events();
    return out;
}

void
expectSameStats(const ExecutionStats &jit, const ExecutionStats &ftl)
{
    for (size_t b = 0;
         b < static_cast<size_t>(InstrBucket::NumBuckets); ++b) {
        EXPECT_EQ(jit.instr[b], ftl.instr[b]) << "instr bucket " << b;
    }
    for (size_t k = 0; k < static_cast<size_t>(CheckKind::NumKinds);
         ++k) {
        EXPECT_EQ(jit.checks[k], ftl.checks[k])
            << "check kind " << checkKindName(static_cast<CheckKind>(k));
    }
    // Exact equality on the doubles (see test_accounting_diff): the
    // compiled tier must charge the very same integer units in the
    // very same order.
    EXPECT_EQ(jit.cyclesTm, ftl.cyclesTm);
    EXPECT_EQ(jit.cyclesNonTm, ftl.cyclesNonTm);
    EXPECT_EQ(jit.ftlFunctionCalls, ftl.ftlFunctionCalls);
    EXPECT_EQ(jit.deopts, ftl.deopts);
    EXPECT_EQ(jit.baselineCompiles, ftl.baselineCompiles);
    EXPECT_EQ(jit.dfgCompiles, ftl.dfgCompiles);
    EXPECT_EQ(jit.ftlCompiles, ftl.ftlCompiles);
    EXPECT_EQ(jit.ftlRecompiles, ftl.ftlRecompiles);
    EXPECT_EQ(jit.txCommits, ftl.txCommits);
    EXPECT_EQ(jit.txAborts, ftl.txAborts);
    EXPECT_EQ(jit.txAbortsCapacity, ftl.txAbortsCapacity);
    EXPECT_EQ(jit.txAbortsCheck, ftl.txAbortsCheck);
    EXPECT_EQ(jit.txAbortsSof, ftl.txAbortsSof);
    EXPECT_EQ(jit.avgWriteFootprintBytes, ftl.avgWriteFootprintBytes);
    EXPECT_EQ(jit.maxWriteFootprintBytes, ftl.maxWriteFootprintBytes);
    EXPECT_EQ(jit.maxWriteWaysUsed, ftl.maxWriteWaysUsed);
}

void
expectSameOutcome(const Outcome &jit, const Outcome &ftl)
{
    EXPECT_EQ(jit.result, ftl.result);
    EXPECT_EQ(jit.printed, ftl.printed);
    expectSameStats(jit.stats, ftl.stats);
    // Element-wise trace equality, virtual-cycle timestamps included:
    // the compiled tier must not shift when any event is emitted.
    ASSERT_EQ(jit.events.size(), ftl.events.size());
    for (size_t i = 0; i < jit.events.size(); ++i) {
        EXPECT_TRUE(jit.events[i] == ftl.events[i])
            << "trace event " << i << " differs";
    }
}

void
compareSuite(const std::vector<BenchmarkSpec> &suite, Architecture arch,
             uint32_t trace_capacity = 0,
             const FaultPlan *plan = nullptr)
{
    for (const BenchmarkSpec &spec : suite) {
        SCOPED_TRACE(spec.id + " on " + architectureName(arch));
        expectSameOutcome(
            runOutcome(spec.source, arch, true, trace_capacity, plan),
            runOutcome(spec.source, arch, false, trace_capacity, plan));
    }
}

/** First @p keep entries (keeps the fault/trace sweeps affordable). */
std::vector<BenchmarkSpec>
prefix(const std::vector<BenchmarkSpec> &suite, size_t keep)
{
    if (suite.size() <= keep)
        return suite;
    return std::vector<BenchmarkSpec>(
        suite.begin(), suite.begin() + static_cast<long>(keep));
}

class Jit : public ::testing::TestWithParam<Architecture>
{
};

TEST_P(Jit, SunSpiderMatchesFtlPath)
{
    compareSuite(sunspiderSuite(), GetParam());
}

TEST_P(Jit, KrakenMatchesFtlPath)
{
    compareSuite(krakenSuite(), GetParam());
}

// The three-way contract over generated programs: compiled tier vs
// FTL bit-identical (stats and all), and both agree with a
// pure-interpreter run on everything guest-visible (the interpreter
// tiers differently, so its stats legitimately differ).
TEST_P(Jit, FuzzProgramsMatchFtlAndInterpreter)
{
    const uint64_t first = testutil::fuzzSeedFromEnv(1);
    const uint64_t iters =
        std::max<uint64_t>(1, testutil::fuzzItersFromEnv(40));
    for (uint64_t seed = first; seed < first + iters; ++seed) {
        testutil::ProgramGenerator gen(seed);
        const std::string src = gen.generate();
        SCOPED_TRACE("seed " + std::to_string(seed) + " on " +
                     architectureName(GetParam()) + "\nreproduce: " +
                     testutil::reproHint(seed) + " ./tests/test_jit");
        Outcome jit = runOutcome(src, GetParam(), true, 0, nullptr);
        Outcome ftl = runOutcome(src, GetParam(), false, 0, nullptr);
        expectSameOutcome(jit, ftl);

        EngineConfig interp_config;
        interp_config.arch = GetParam();
        interp_config.maxTier = Tier::Interpreter;
        Engine interp(interp_config);
        EngineResult ir = interp.run(src);
        EXPECT_EQ(jit.result, ir.resultString);
        EXPECT_EQ(jit.printed, ir.printed);
    }
}

TEST_P(Jit, FaultPlansMatchFtlPath)
{
    const char *plans[] = {"htm.abort@2", "check.bounds@5",
                           "check.any@3", "engine.watchdog@400"};
    for (const char *text : plans) {
        SCOPED_TRACE(text);
        FaultPlan plan = FaultPlan::parse(text);
        compareSuite(prefix(sunspiderSuite(), 2), GetParam(), 0,
                     &plan);
        compareSuite(prefix(krakenSuite(), 2), GetParam(), 0, &plan);
    }
}

TEST_P(Jit, TracingMatchesFtlPath)
{
    // Trace ring large enough that no event is evicted, so the
    // streams compare element-for-element with timestamps.
    const uint32_t capacity = 1u << 16;
    compareSuite(prefix(sunspiderSuite(), 2), GetParam(), capacity);
    compareSuite(prefix(krakenSuite(), 2), GetParam(), capacity);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, Jit,
    ::testing::Values(Architecture::Base, Architecture::NoMapS,
                      Architecture::NoMapB, Architecture::NoMap,
                      Architecture::NoMapBC, Architecture::NoMapRTM),
    [](const ::testing::TestParamInfo<Architecture> &info) {
        return std::string(architectureName(info.param));
    });

// Adaptive replanning mid-abort-storm: revisions land at FTL-call
// boundaries and rebuild the region chain via recompileFtl, which
// must respect the activeRuns/pendingRecompile deferral — swapping
// the chain (whose literal pool points at the recompiled IR's charge
// plan) under a live recursive activation would be a use-after-free
// the ASan config catches. The compiled tier must come out of the
// storm bit-identical to the FTL path, replans and refunds included.
TEST(JitRevisionBoundary, AdaptiveReplanMidStormMatchesFtl)
{
    const std::string src = R"JS(
var N = 16384;
var A = [];
for (var i = 0; i < N; i++) A[i] = i % 17;
function storm(a, n, depth) {
    var s = 0;
    for (var j = 0; j < n; j++) {
        a[j] = (a[j] + j) % 1021;
        s = (s + a[j]) % 65536;
    }
    if (depth > 0) s = (s + storm(a, n, depth - 1)) % 65536;
    return s;
}
var out = 0;
for (var r = 0; r < 10; r++) out = (out + storm(A, N, 2)) % 65536;
result = out;
)JS";

    FaultPlan squeeze = FaultPlan::parse("htm.ways@1");
    for (bool adaptive : {false, true}) {
        SCOPED_TRACE(adaptive ? "adaptive replanning"
                              : "static escalation");
        Outcome out[2];
        for (int jit = 0; jit < 2; ++jit) {
            EngineConfig config;
            config.arch = Architecture::NoMap;
            config.adaptive = adaptive;
            config.jitTier = jit != 0;
            // Tier up fast so most storm calls run FTL transactions.
            config.baselineThreshold = 2;
            config.dfgThreshold = 4;
            config.ftlThreshold = 8;
            Engine engine(config);
            engine.armFaultPlan(&squeeze);
            EngineResult r = engine.run(src);
            out[jit].result = r.resultString;
            out[jit].printed = r.printed;
            out[jit].stats = r.stats;

            // Vacuity guards: the storm really did force mid-run
            // replanning (with the recursion live), and no deferred
            // recompile is left owing at the end.
            EXPECT_GE(r.stats.txAborts, 2u);
            EXPECT_GE(r.stats.ftlRecompiles, 1u);
            const FunctionState *state =
                engine.functionState("storm");
            ASSERT_NE(state, nullptr);
            EXPECT_FALSE(state->pendingRecompile);
        }
        expectSameOutcome(out[1], out[0]);
    }
}

// The differential above is only meaningful if the binder actually
// specializes and fuses: a hot non-transactional (Base) program must
// produce a chain that is index-aligned with the flat stream and
// contains fused superinstruction templates.
TEST(JitStructure, HotProgramBuildsFusedChain)
{
    EngineConfig config;
    config.arch = Architecture::Base;
    config.jitTier = true;
    Engine engine(config);
    engine.run(sunspiderSuite()[0].source);
    const CompiledProgram *prog = engine.program();
    ASSERT_NE(prog, nullptr);

    bool any_chain = false;
    bool any_fused = false;
    for (const auto &fnp : prog->functions) {
        const FunctionState *state =
            engine.functionState(fnp->name);
        if (!state || !state->jit)
            continue;
        any_chain = true;
        const IrFunction *ir = engine.ftlIr(fnp->name);
        ASSERT_NE(ir, nullptr);
        ASSERT_EQ(state->jit->records.size(), ir->flat.size());
        for (size_t i = 0; i < state->jit->records.size(); ++i) {
            const JitInstr &r = state->jit->records[i];
            // Literal pool is a faithful copy of the flat record.
            EXPECT_EQ(r.op, ir->flat[i].op);
            EXPECT_EQ(r.ownScaled, ir->flat[i].ownScaled);
            EXPECT_EQ(r.chargeFrom, ir->flat[i].chargeFrom);
            switch (r.spec) {
              case JitSpec::CmpBranchLt:
              case JitSpec::CmpBranchLe:
              case JitSpec::CmpBranchGt:
              case JitSpec::CmpBranchGe:
              case JitSpec::CmpBranchEq:
              case JitSpec::CmpBranchNe:
              case JitSpec::AddIntChkOvf:
              case JitSpec::SubIntChkOvf:
              case JitSpec::MulIntChkOvf:
                any_fused = true;
                EXPECT_FALSE(state->jit->aware)
                    << fnp->name << " record " << i;
                break;
              default:
                break;
            }
        }
    }
    EXPECT_TRUE(any_chain);
    EXPECT_TRUE(any_fused);
}

// Transactional regions must run the tx-aware template variant and
// must not fuse (a fused body would skip the per-op tx-owner watchdog
// poll between its two components).
TEST(JitStructure, TransactionalChainsAreAwareAndUnfused)
{
    EngineConfig config;
    config.arch = Architecture::NoMap;
    config.jitTier = true;
    Engine engine(config);
    engine.run(sunspiderSuite()[0].source);
    const CompiledProgram *prog = engine.program();
    ASSERT_NE(prog, nullptr);

    bool any_aware = false;
    bool any_specialized_cmp = false;
    for (const auto &fnp : prog->functions) {
        const FunctionState *state =
            engine.functionState(fnp->name);
        if (!state || !state->jit)
            continue;
        bool has_tx = false;
        for (const JitInstr &r : state->jit->records)
            has_tx = has_tx || isTxBoundaryOp(r.op);
        EXPECT_EQ(state->jit->aware, has_tx) << fnp->name;
        if (!state->jit->aware)
            continue;
        any_aware = true;
        for (size_t i = 0; i < state->jit->records.size(); ++i) {
            const JitInstr &r = state->jit->records[i];
            EXPECT_LE(static_cast<size_t>(r.spec),
                      static_cast<size_t>(JitSpec::TxTile))
                << fnp->name << " record " << i << " fused";
            // Shape specialization still applies without fusion: a
            // compare in an aware chain keeps its baked-subop
            // standalone template.
            switch (r.spec) {
              case JitSpec::CmpLt:
              case JitSpec::CmpLe:
              case JitSpec::CmpGt:
              case JitSpec::CmpGe:
              case JitSpec::CmpEq:
              case JitSpec::CmpNe:
                any_specialized_cmp = true;
                break;
              default:
                break;
            }
        }
    }
    EXPECT_TRUE(any_aware);
    EXPECT_TRUE(any_specialized_cmp);
}

// Jump/Branch targets must keep their standalone template even when
// the preceding record fused: control can enter at them directly, so
// fusion must never swallow a target into its predecessor.
TEST(JitStructure, JumpTargetsKeepStandaloneTemplates)
{
    EngineConfig config;
    config.arch = Architecture::Base;
    config.jitTier = true;
    Engine engine(config);
    engine.run(sunspiderSuite()[0].source);
    const CompiledProgram *prog = engine.program();
    ASSERT_NE(prog, nullptr);

    bool any_checked = false;
    for (const auto &fnp : prog->functions) {
        const FunctionState *state =
            engine.functionState(fnp->name);
        if (!state || !state->jit)
            continue;
        const std::vector<JitInstr> &recs = state->jit->records;
        std::vector<bool> target(recs.size(), false);
        for (const JitInstr &r : recs) {
            if (r.op == IrOp::Jump) {
                target[r.imm] = true;
            } else if (r.op == IrOp::Branch) {
                target[r.imm] = true;
                target[r.imm2] = true;
            }
        }
        for (size_t i = 0; i + 1 < recs.size(); ++i) {
            if (!target[i + 1])
                continue;
            any_checked = true;
            EXPECT_LE(static_cast<size_t>(recs[i].spec),
                      static_cast<size_t>(JitSpec::TxTile))
                << fnp->name << " record " << i
                << " fused across a jump target";
        }
    }
    EXPECT_TRUE(any_checked);
}

} // namespace
} // namespace nomap
