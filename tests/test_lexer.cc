#include <gtest/gtest.h>

#include "js/lexer.h"
#include "support/logging.h"

namespace nomap {
namespace {

std::vector<Token>
lex(const std::string &src)
{
    Lexer lexer(src);
    return lexer.lexAll();
}

TEST(Lexer, EmptyInput)
{
    auto toks = lex("");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, TokenKind::EndOfFile);
}

TEST(Lexer, Numbers)
{
    auto toks = lex("1 2.5 0x10 1e3 1.5e-2");
    ASSERT_EQ(toks.size(), 6u);
    EXPECT_DOUBLE_EQ(toks[0].number, 1.0);
    EXPECT_DOUBLE_EQ(toks[1].number, 2.5);
    EXPECT_DOUBLE_EQ(toks[2].number, 16.0);
    EXPECT_DOUBLE_EQ(toks[3].number, 1000.0);
    EXPECT_DOUBLE_EQ(toks[4].number, 0.015);
}

TEST(Lexer, Strings)
{
    auto toks = lex("\"hi\" 'there' \"a\\nb\"");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].text, "hi");
    EXPECT_EQ(toks[1].text, "there");
    EXPECT_EQ(toks[2].text, "a\nb");
}

TEST(Lexer, KeywordsVsIdentifiers)
{
    auto toks = lex("var varx function fn");
    EXPECT_EQ(toks[0].kind, TokenKind::KwVar);
    EXPECT_EQ(toks[1].kind, TokenKind::Identifier);
    EXPECT_EQ(toks[1].text, "varx");
    EXPECT_EQ(toks[2].kind, TokenKind::KwFunction);
    EXPECT_EQ(toks[3].text, "fn");
}

TEST(Lexer, OperatorMaximalMunch)
{
    auto toks = lex("<< <<= < <= === == = >>> >>>= >> >");
    EXPECT_EQ(toks[0].kind, TokenKind::Shl);
    EXPECT_EQ(toks[1].kind, TokenKind::ShlAssign);
    EXPECT_EQ(toks[2].kind, TokenKind::Lt);
    EXPECT_EQ(toks[3].kind, TokenKind::Le);
    EXPECT_EQ(toks[4].kind, TokenKind::EqEqEq);
    EXPECT_EQ(toks[5].kind, TokenKind::EqEq);
    EXPECT_EQ(toks[6].kind, TokenKind::Assign);
    EXPECT_EQ(toks[7].kind, TokenKind::UShr);
    EXPECT_EQ(toks[8].kind, TokenKind::UShrAssign);
    EXPECT_EQ(toks[9].kind, TokenKind::Shr);
    EXPECT_EQ(toks[10].kind, TokenKind::Gt);
}

TEST(Lexer, IncrementDecrement)
{
    auto toks = lex("++ -- + - += -=");
    EXPECT_EQ(toks[0].kind, TokenKind::PlusPlus);
    EXPECT_EQ(toks[1].kind, TokenKind::MinusMinus);
    EXPECT_EQ(toks[2].kind, TokenKind::Plus);
    EXPECT_EQ(toks[3].kind, TokenKind::Minus);
    EXPECT_EQ(toks[4].kind, TokenKind::PlusAssign);
    EXPECT_EQ(toks[5].kind, TokenKind::MinusAssign);
}

TEST(Lexer, Comments)
{
    auto toks = lex("a // comment\nb /* block\ncomment */ c");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, LineTracking)
{
    auto toks = lex("a\nb\n  c");
    EXPECT_EQ(toks[0].line, 1u);
    EXPECT_EQ(toks[1].line, 2u);
    EXPECT_EQ(toks[2].line, 3u);
    EXPECT_EQ(toks[2].column, 3u);
}

TEST(Lexer, BadCharacterFatal)
{
    EXPECT_THROW(lex("a # b"), FatalError);
}

TEST(Lexer, UnterminatedStringFatal)
{
    EXPECT_THROW(lex("\"abc"), FatalError);
}

TEST(Lexer, UnterminatedCommentFatal)
{
    EXPECT_THROW(lex("/* abc"), FatalError);
}

} // namespace
} // namespace nomap
