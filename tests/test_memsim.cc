#include <gtest/gtest.h>

#include "memsim/cache.h"
#include "memsim/footprint.h"
#include "memsim/hierarchy.h"

namespace nomap {
namespace {

TEST(Cache, HitAfterMiss)
{
    Cache c(1024, 2); // 8 sets x 2 ways.
    EXPECT_EQ(c.access(0x1000, false), CacheResult::Miss);
    EXPECT_EQ(c.access(0x1000, false), CacheResult::Hit);
    EXPECT_EQ(c.access(0x1020, false), CacheResult::Hit); // Same line.
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEviction)
{
    Cache c(1024, 2); // 8 sets; set stride = 8 * 64 = 512 bytes.
    // Three lines mapping to the same set (stride 512).
    EXPECT_EQ(c.access(0x0000, false), CacheResult::Miss);
    EXPECT_EQ(c.access(0x0200, false), CacheResult::Miss);
    EXPECT_EQ(c.access(0x0000, false), CacheResult::Hit); // Refresh LRU.
    EXPECT_EQ(c.access(0x0400, false), CacheResult::Miss); // Evicts 0x200.
    EXPECT_EQ(c.access(0x0200, false), CacheResult::Miss);
    EXPECT_TRUE(c.contains(0x0000) || c.contains(0x0400));
}

TEST(Cache, SpeculativeLinesPinned)
{
    Cache c(1024, 2);
    // Fill a set with two speculative writes.
    EXPECT_EQ(c.access(0x0000, true, true), CacheResult::Miss);
    EXPECT_EQ(c.access(0x0200, true, true), CacheResult::Miss);
    EXPECT_TRUE(c.isSpeculative(0x0000));
    EXPECT_TRUE(c.isSpeculative(0x0200));
    // A third line in the same set cannot be installed.
    EXPECT_EQ(c.access(0x0400, true, true), CacheResult::SWConflict);
    EXPECT_EQ(c.access(0x0400, false, false), CacheResult::SWConflict);
}

TEST(Cache, FlashClearSwAllowsEviction)
{
    Cache c(1024, 2);
    c.access(0x0000, true, true);
    c.access(0x0200, true, true);
    c.flashClearSw();
    EXPECT_FALSE(c.isSpeculative(0x0000));
    EXPECT_EQ(c.swLineCount(), 0u);
    EXPECT_EQ(c.access(0x0400, true, true), CacheResult::Miss);
}

TEST(Cache, InvalidateSwDiscardsLines)
{
    Cache c(1024, 2);
    c.access(0x0000, true, true);
    c.access(0x0040, false, false);
    c.invalidateSw();
    EXPECT_FALSE(c.contains(0x0000));
    EXPECT_TRUE(c.contains(0x0040));
}

TEST(Cache, MaxSwWaysTracked)
{
    Cache c(1024, 4);
    c.access(0x0000, true, true);
    c.access(0x0400, true, true);
    c.access(0x0800, true, true);
    EXPECT_EQ(c.stats().maxSwWaysInSet, 3u);
}

TEST(Footprint, InsertAndOverflow)
{
    FootprintTracker t(1024, 2); // 8 sets x 2 ways.
    EXPECT_TRUE(t.insert(0x0000));
    EXPECT_TRUE(t.insert(0x0000)); // Duplicate is fine.
    EXPECT_EQ(t.lineCount(), 1u);
    EXPECT_TRUE(t.insert(0x0200)); // Same set, way 2.
    EXPECT_FALSE(t.insert(0x0400)); // Set full -> overflow.
    EXPECT_EQ(t.maxWaysUsed(), 2u);
    EXPECT_EQ(t.footprintBytes(), 128u);
}

TEST(Footprint, ClearResets)
{
    FootprintTracker t(1024, 2);
    t.insert(0x0000);
    t.clear();
    EXPECT_EQ(t.lineCount(), 0u);
    EXPECT_EQ(t.maxWaysUsed(), 0u);
    EXPECT_TRUE(t.insert(0x0400));
}

TEST(Footprint, DistinctSetsIndependent)
{
    FootprintTracker t(1024, 2);
    // Different sets never conflict.
    for (Addr a = 0; a < 8 * 64; a += 64)
        EXPECT_TRUE(t.insert(a));
    EXPECT_EQ(t.lineCount(), 8u);
    EXPECT_EQ(t.maxWaysUsed(), 1u);
}

TEST(Hierarchy, LatencyLadder)
{
    MemHierarchy mem;
    uint32_t first = mem.access(0x123456, false);
    EXPECT_EQ(first, mem.latency().memAccess);
    uint32_t second = mem.access(0x123456, false);
    EXPECT_EQ(second, mem.latency().l1Hit);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    MemHierarchy mem;
    // L1: 32KB 8-way => 64 sets, stride 64*64 = 4096.
    // Touch 9 lines mapping to the same L1 set; the first gets
    // evicted from L1 but stays in L2 (L2 has 512 sets).
    for (int i = 0; i <= 8; ++i)
        mem.access(0x100000 + static_cast<Addr>(i) * 4096, false);
    uint32_t lat = mem.access(0x100000, false);
    EXPECT_EQ(lat, mem.latency().l2Hit);
}

TEST(Hierarchy, SpeculativeCommitAndDiscard)
{
    MemHierarchy mem;
    mem.access(0x4000, true, true);
    EXPECT_TRUE(mem.l1().isSpeculative(0x4000));
    mem.commitSpeculative();
    EXPECT_FALSE(mem.l1().isSpeculative(0x4000));
    EXPECT_TRUE(mem.l1().contains(0x4000));

    mem.access(0x8000, true, true);
    mem.discardSpeculative();
    EXPECT_FALSE(mem.l1().contains(0x8000));
}

} // namespace
} // namespace nomap
