#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "service/metrics.h"
#include "support/logging.h"

namespace nomap {
namespace {

/**
 * Golden-file tests pinning the external metrics contract: the JSON
 * key order/format of ServiceMetricsSnapshot::toJson() and the
 * latency-histogram bucket edges. Dashboards and log scrapers parse
 * both, so any drift must be a deliberate, reviewed golden update:
 *
 *     NOMAP_UPDATE_GOLDEN=1 ./tests/test_metrics_golden
 *
 * rewrites the files under tests/golden/; diff and commit them.
 */

std::string
goldenPath(const char *name)
{
    return std::string(NOMAP_GOLDEN_DIR) + "/" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool
updateMode()
{
    const char *v = std::getenv("NOMAP_UPDATE_GOLDEN");
    return v && *v && std::string(v) != "0";
}

void
checkAgainstGolden(const char *name, const std::string &actual)
{
    std::string path = goldenPath(name);
    if (updateMode()) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << path;
        out << actual;
        return;
    }
    std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden " << path
        << " — bootstrap with NOMAP_UPDATE_GOLDEN=1";
    EXPECT_EQ(actual, expected)
        << "metrics contract drifted from " << path
        << "; if intentional, regenerate with NOMAP_UPDATE_GOLDEN=1 "
           "and review the diff";
}

/** Every field distinct and non-zero so format/order drift surfaces. */
ServiceMetricsSnapshot
sampleSnapshot()
{
    ServiceMetricsSnapshot s;
    s.uptimeSeconds = 12.5;
    s.workers = 4;
    s.queueDepth = 3;
    s.queueDepthHighWater = 17;
    s.queueCapacity = 64;
    s.submitted = 120;
    s.rejected = 2;
    s.shed = 6;
    s.inFlight = 1;
    s.completed = 114;
    s.succeeded = 108;
    s.errors = 4;
    s.timeouts = 2;
    s.retries = 5;
    s.p50Micros = 750.0;
    s.p95Micros = 2400.0;
    s.p99Micros = 5100.5;
    s.meanMicros = 910.25;
    s.maxMicros = 8200.0;
    s.throughputRps = 9.12;
    s.enginesCreated = 6;
    s.enginesReused = 110;
    s.enginesDiscarded = 2;
    s.enginesIdle = 4;
    s.cacheHits = 100;
    s.cacheMisses = 14;
    s.cacheEntries = 9;
    s.traceEvents = 8192;
    s.traceDrops = 3;
    s.aggregate.instr[0] = 1000;
    s.aggregate.instr[1] = 2000;
    s.aggregate.instr[2] = 300;
    s.aggregate.instr[3] = 4000;
    s.aggregate.checks[0] = 50;
    s.aggregate.checks[1] = 40;
    s.aggregate.checks[2] = 30;
    s.aggregate.checks[3] = 20;
    s.aggregate.checks[4] = 10;
    s.aggregate.cyclesTm = 123456.0;
    s.aggregate.cyclesNonTm = 654321.0;
    s.aggregate.deopts = 7;
    s.aggregate.ftlCompiles = 11;
    s.aggregate.txCommits = 500;
    s.aggregate.txAborts = 25;
    s.aggregate.txAbortsCapacity = 12;
    s.aggregate.txAbortsCheck = 9;
    s.aggregate.txAbortsSof = 4;
    return s;
}

TEST(MetricsGolden, SnapshotJsonMatchesGolden)
{
    checkAgainstGolden("metrics_snapshot.golden.json",
                       sampleSnapshot().toJson() + "\n");
}

/** Sharded/net wrapper with every section populated and distinct. */
ShardedMetricsSnapshot
sampleShardedSnapshot()
{
    ShardedMetricsSnapshot s;
    s.shards = 2;
    s.loops = 2;
    s.shedQueueDepth = 32;
    s.routed = 150;
    s.shedTotal = 9;
    s.routedPerLoop = {10, 70, 70}; // Slot 0 = in-process.
    for (uint64_t i = 0; i < 2; ++i) {
        ShardedMetricsSnapshot::Shard shard;
        shard.routed = 70 + i * 10;
        shard.shed = 4 + i;
        shard.service = sampleSnapshot();
        shard.service.workers = 2 + i;
        s.perShard.push_back(std::move(shard));
    }
    s.connections.accepted = 40;
    s.connections.active = 5;
    s.connections.closed = 35;
    s.connections.rejected = 7;
    s.connections.acceptFaults = 1;
    s.connections.acceptBackoffs = 2;
    s.connections.readErrors = 2;
    s.connections.writeErrors = 3;
    s.connections.decodeErrors = 4;
    s.connections.framesIn = 500;
    s.connections.framesOut = 480;
    s.connections.deferredFrames = 6;
    s.connections.bytesIn = 123456;
    s.connections.bytesOut = 654321;
    for (uint64_t i = 0; i < 2; ++i) {
        NetLoopCounters loop;
        loop.loop = i + 1;
        loop.accepted = 20 + i;
        loop.active = 2 + i;
        loop.framesIn = 250 + i;
        loop.framesOut = 240 + i;
        s.eventLoops.push_back(loop);
    }
    return s;
}

TEST(MetricsGolden, ShardedSnapshotJsonMatchesGolden)
{
    checkAgainstGolden("metrics_sharded_snapshot.golden.json",
                       sampleShardedSnapshot().toJson() + "\n");
}

TEST(MetricsGolden, HistogramBucketEdgesMatchGolden)
{
    std::string dump = strprintf("growth %.4f buckets %zu\n",
                                 LatencyHistogram::kGrowth,
                                 LatencyHistogram::kBuckets);
    for (size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
        dump += strprintf(
            "%zu %.6g %.6g\n", b,
            LatencyHistogram::bucketFloorMicros(b),
            LatencyHistogram::bucketMidMicros(b));
    }
    checkAgainstGolden("histogram_buckets.golden.txt", dump);
}

TEST(MetricsGolden, BucketGeometryIsSelfConsistent)
{
    // Bucket 0 covers [0, 1] µs; bucket b > 0 covers
    // (kGrowth^(b-1), kGrowth^b].
    EXPECT_EQ(LatencyHistogram::bucketOf(0.0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketOf(1.0), 0u);
    for (size_t b = 1; b + 1 < LatencyHistogram::kBuckets; ++b) {
        double floor = LatencyHistogram::bucketFloorMicros(b);
        double next = LatencyHistogram::bucketFloorMicros(b + 1);
        ASSERT_LT(floor, next);
        EXPECT_EQ(LatencyHistogram::bucketOf(floor * 1.0001), b)
            << "bucket " << b;
        double mid = LatencyHistogram::bucketMidMicros(b);
        EXPECT_GT(mid, floor);
        EXPECT_LT(mid, next);
    }
    // Overflow clamps into the last bucket.
    EXPECT_EQ(LatencyHistogram::bucketOf(1e30),
              LatencyHistogram::kBuckets - 1);
}

TEST(MetricsGolden, BucketEdgesAreInclusive)
{
    // A value lying exactly on a bucket's upper edge kGrowth^b
    // belongs to bucket b, not b+1: bucket b > 0 covers
    // (kGrowth^(b-1), kGrowth^b].
    for (size_t b = 1; b < LatencyHistogram::kBuckets; ++b) {
        double edge = std::pow(LatencyHistogram::kGrowth,
                               static_cast<double>(b));
        EXPECT_EQ(LatencyHistogram::bucketOf(edge), b)
            << "upper edge of bucket " << b;
        // Just past the edge spills into the next bucket.
        if (b + 1 < LatencyHistogram::kBuckets) {
            EXPECT_EQ(LatencyHistogram::bucketOf(edge * 1.0001), b + 1)
                << "past upper edge of bucket " << b;
        }
    }
    // The lower edge is exclusive: bucketFloorMicros(b) itself closes
    // bucket b-1.
    EXPECT_EQ(LatencyHistogram::bucketOf(
                  LatencyHistogram::bucketFloorMicros(2)),
              1u);
}

TEST(MetricsGolden, RecordRejectsNonFiniteLatencies)
{
    LatencyHistogram h;
    h.record(std::numeric_limits<double>::quiet_NaN());
    h.record(std::numeric_limits<double>::infinity());
    h.record(-std::numeric_limits<double>::infinity());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);

    h.record(5.0);
    h.record(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.mean(), 5.0);
    EXPECT_EQ(h.max(), 5.0);
    // Bucket midpoints above the observed max clamp to it.
    EXPECT_EQ(h.percentile(50.0), 5.0);
}

} // namespace
} // namespace nomap
