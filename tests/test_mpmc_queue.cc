#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/mpmc_queue.h"

namespace nomap {
namespace {

// Direct unit tests for BoundedMpmcQueue's close/drain contract — the
// service's shutdown path depends on every clause of it: producers
// fail fast (with their item intact), consumers drain what was
// admitted and then see end-of-stream, and nobody stays blocked.

TEST(MpmcQueue, CapacityIsClampedToAtLeastOne)
{
    BoundedMpmcQueue<int> q(0);
    EXPECT_EQ(q.capacity(), 1u);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_FALSE(q.tryPush(2));
}

TEST(MpmcQueue, PushPopFifoOrder)
{
    BoundedMpmcQueue<int> q(4);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(q.push(std::move(i)));
    EXPECT_EQ(q.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        std::optional<int> v = q.pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(MpmcQueue, PushAfterCloseFailsAndLeavesItemUnmoved)
{
    BoundedMpmcQueue<std::unique_ptr<std::string>> q(2);
    q.close();
    EXPECT_TRUE(q.closed());

    auto item = std::make_unique<std::string>("payload");
    EXPECT_FALSE(q.push(std::move(item)));
    // The rejected item must not have been consumed: callers re-route
    // it (e.g. into a rejection response).
    ASSERT_NE(item, nullptr);
    EXPECT_EQ(*item, "payload");

    auto item2 = std::make_unique<std::string>("payload2");
    EXPECT_FALSE(q.tryPush(std::move(item2)));
    ASSERT_NE(item2, nullptr);
    EXPECT_EQ(*item2, "payload2");
}

TEST(MpmcQueue, PopDrainsRemainingItemsThenReturnsNullopt)
{
    BoundedMpmcQueue<int> q(4);
    ASSERT_TRUE(q.push(1));
    ASSERT_TRUE(q.push(2));
    q.close();

    std::optional<int> a = q.pop();
    std::optional<int> b = q.pop();
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, 1);
    EXPECT_EQ(*b, 2);
    // Closed and drained: end-of-stream, repeatedly.
    EXPECT_FALSE(q.pop().has_value());
    EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, TryPushRejectsWhenFullWithoutBlocking)
{
    BoundedMpmcQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3));
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(*q.pop(), 1);
    EXPECT_TRUE(q.tryPush(3));
}

TEST(MpmcQueue, CloseWakesAllBlockedConsumers)
{
    BoundedMpmcQueue<int> q(2);
    constexpr int kConsumers = 4;
    std::atomic<int> eos{0};
    std::vector<std::thread> consumers;
    consumers.reserve(kConsumers);
    for (int i = 0; i < kConsumers; ++i) {
        consumers.emplace_back([&] {
            // Queue is empty and open: this blocks until close().
            while (q.pop().has_value()) {
            }
            eos.fetch_add(1, std::memory_order_relaxed);
        });
    }
    // No sleep needed for correctness: close() must wake consumers
    // whether they are already waiting or have not blocked yet.
    q.close();
    for (auto &t : consumers)
        t.join();
    EXPECT_EQ(eos.load(), kConsumers);
}

TEST(MpmcQueue, CloseWakesAllBlockedProducers)
{
    BoundedMpmcQueue<int> q(1);
    ASSERT_TRUE(q.push(0)); // Fill to capacity: pushes now block.
    constexpr int kProducers = 4;
    std::atomic<int> rejected{0};
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int i = 0; i < kProducers; ++i) {
        producers.emplace_back([&, i] {
            if (!q.push(100 + i))
                rejected.fetch_add(1, std::memory_order_relaxed);
        });
    }
    q.close();
    for (auto &t : producers)
        t.join();
    // Every producer either squeezed in before close() or was
    // rejected by it; none can still be blocked (join() proved that).
    EXPECT_EQ(rejected.load(), kProducers);

    // What was admitted before the close still drains.
    std::optional<int> v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 0);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, ShutdownRacesBlockedProducersAndConsumers)
{
    // close() fired from its own thread while producers are blocked
    // on a full queue and consumers are popping — repeated rounds so
    // TSan sees many interleavings. The drain contract under race:
    // every item a push admitted is popped exactly once, and every
    // thread exits (join() proves nobody stayed blocked).
    for (int round = 0; round < 25; ++round) {
        BoundedMpmcQueue<int> q(2);
        std::atomic<int> pushed{0};
        std::atomic<int> popped{0};
        std::vector<std::thread> threads;
        for (int p = 0; p < 3; ++p) {
            threads.emplace_back([&] {
                for (int i = 0; i < 200; ++i) {
                    if (!q.push(int(i)))
                        return; // Closed while (possibly) blocked.
                    pushed.fetch_add(1, std::memory_order_relaxed);
                }
            });
        }
        for (int c = 0; c < 3; ++c) {
            threads.emplace_back([&] {
                while (q.pop().has_value())
                    popped.fetch_add(1, std::memory_order_relaxed);
            });
        }
        std::thread closer([&] { q.close(); });
        closer.join();
        for (auto &t : threads)
            t.join();
        // Admission and drain are serialized by the queue mutex: a
        // push that succeeded is visible to some consumer before
        // end-of-stream, so the counts must balance exactly.
        EXPECT_EQ(pushed.load(), popped.load()) << "round " << round;
    }
}

TEST(MpmcQueue, TryPushRacesAgainstFullQueueWithoutLosingItems)
{
    // Four producers hammer tryPush against a capacity-4 queue that
    // starts full, two consumers drain concurrently. Each rejection
    // must leave the caller's item intact (the service re-routes it
    // into a QueueFull response), each acceptance must surface at a
    // consumer exactly once.
    BoundedMpmcQueue<std::unique_ptr<int>> q(4);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(q.tryPush(std::make_unique<int>(-1)));

    constexpr int kProducers = 4;
    constexpr int kAttempts = 500;
    std::atomic<int> accepted{0};
    std::atomic<int> rejected{0};
    std::atomic<int> popped{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < kAttempts; ++i) {
                auto item = std::make_unique<int>(p * kAttempts + i);
                if (q.tryPush(std::move(item))) {
                    EXPECT_EQ(item, nullptr);
                    accepted.fetch_add(1, std::memory_order_relaxed);
                } else {
                    ASSERT_NE(item, nullptr);
                    EXPECT_EQ(*item, p * kAttempts + i);
                    rejected.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (int c = 0; c < 2; ++c) {
        threads.emplace_back([&] {
            while (q.pop().has_value())
                popped.fetch_add(1, std::memory_order_relaxed);
        });
    }
    for (int p = 0; p < kProducers; ++p)
        threads[static_cast<size_t>(p)].join();
    q.close();
    for (size_t t = kProducers; t < threads.size(); ++t)
        threads[t].join();

    EXPECT_EQ(accepted.load() + rejected.load(),
              kProducers * kAttempts);
    // +4 pre-filled items.
    EXPECT_EQ(popped.load(), accepted.load() + 4);
    // The queue started full, so at minimum the first tryPush to run
    // before any pop was rejected.
    EXPECT_GT(rejected.load(), 0);
}

TEST(MpmcQueue, ConcurrentProducersAndConsumersDeliverEverything)
{
    BoundedMpmcQueue<int> q(8);
    constexpr int kProducers = 3;
    constexpr int kConsumers = 3;
    constexpr int kPerProducer = 500;

    std::atomic<long long> consumed_sum{0};
    std::atomic<int> consumed_count{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(q.push(p * kPerProducer + i));
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            while (std::optional<int> v = q.pop()) {
                consumed_sum.fetch_add(*v, std::memory_order_relaxed);
                consumed_count.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    // Join producers (first kProducers threads), then close so the
    // consumers drain the tail and exit.
    for (int p = 0; p < kProducers; ++p)
        threads[static_cast<size_t>(p)].join();
    q.close();
    for (size_t t = kProducers; t < threads.size(); ++t)
        threads[t].join();

    constexpr int kTotal = kProducers * kPerProducer;
    long long expected = 0;
    for (int i = 0; i < kTotal; ++i)
        expected += i;
    EXPECT_EQ(consumed_count.load(), kTotal);
    EXPECT_EQ(consumed_sum.load(), expected);
}

} // namespace
} // namespace nomap
