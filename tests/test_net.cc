#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>

#include "engine/engine.h"
#include "inject/fault_plan.h"
#include "net/client.h"
#include "net/poller.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/sharded_service.h"
#include "support/logging.h"

#include <unistd.h>

namespace nomap {
namespace {

// Tests for the networked serving front-end: wire codec, shard
// router, admission control, and the loopback end-to-end differential
// — every TCP-served response must be bit-identical to a sequential
// in-process Engine::run of the same source and config, including
// when net.* fault sites are armed.

const Architecture kDiffArchs[] = {
    Architecture::Base,
    Architecture::NoMapB,
    Architecture::NoMap,
    Architecture::NoMapRTM,
};

// Compact workloads that reach the FTL tier (and place transactions
// on NoMap architectures) — same shape as test_service's scripts.
const char *kScripts[] = {
    R"JS(
function sumInto(obj) {
    var len = obj.values.length;
    for (var idx = 0; idx < len; idx++) obj.sum += obj.values[idx];
    return obj.sum;
}
var o = {values: [], sum: 0};
for (var i = 0; i < 120; i++) o.values[i] = i % 7;
var total = 0;
for (var r = 0; r < 100; r++) {
    o.sum = 0;
    total = sumInto(o);
}
result = total;
)JS",
    R"JS(
function mix(seed, rounds) {
    var h = seed;
    for (var i = 0; i < rounds; i++) {
        h = (h * 31 + i) % 65521;
        h = h + (h % 13);
    }
    return h;
}
var acc = 0;
for (var r = 0; r < 110; r++) {
    acc = (acc + mix(r, 80)) % 1000000;
}
result = acc;
)JS",
    R"JS(
function scan(a, n) {
    var best = 0;
    for (var i = 0; i < n; i++) {
        if (a[i] > best) best = a[i];
    }
    return best;
}
var arr = [];
for (var i = 0; i < 100; i++) arr[i] = (i * i) % 97;
var peak = 0;
for (var r = 0; r < 100; r++) {
    peak = scan(arr, 100);
}
result = peak;
)JS",
};
constexpr size_t kNumScripts = sizeof(kScripts) / sizeof(kScripts[0]);

/** Sequential in-process reference for one (arch, script). */
struct Reference {
    std::string resultString;
    std::string printed;
    WireResponse digest;
};

Reference
referenceFor(Architecture arch, const std::string &source)
{
    EngineConfig config;
    config.arch = arch;
    Engine engine(config);
    EngineResult r = engine.run(source);
    Response scaffold;
    scaffold.stats = r.stats;
    Reference ref;
    ref.resultString = r.resultString;
    ref.printed = r.printed;
    ref.digest = responseToWire(scaffold);
    return ref;
}

/** Assert a wire response matches the reference bit-for-bit. */
void
expectBitIdentical(const WireResponse &got, const Reference &ref,
                   const std::string &context)
{
    ASSERT_EQ(got.status, static_cast<uint8_t>(ResponseStatus::Ok))
        << context << ": " << got.error;
    EXPECT_EQ(got.resultString, ref.resultString) << context;
    EXPECT_EQ(got.printed, ref.printed) << context;
    EXPECT_EQ(got.instructions, ref.digest.instructions) << context;
    EXPECT_EQ(got.checks, ref.digest.checks) << context;
    EXPECT_EQ(got.cyclesBits, ref.digest.cyclesBits) << context;
    EXPECT_EQ(got.txCommits, ref.digest.txCommits) << context;
    EXPECT_EQ(got.txAborts, ref.digest.txAborts) << context;
    EXPECT_EQ(got.deopts, ref.digest.deopts) << context;
}

/** Poll a counter until @p pred holds or ~2s elapse. */
template <typename Pred>
bool
eventually(Pred pred)
{
    for (int i = 0; i < 400; ++i) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

/**
 * Event loops for loopback servers: NOMAP_NET_LOOPS (>= 1, default 1)
 * lets CI run the whole label single- and multi-loop. Tests that
 * *depend* on one loop (fd-reuse, deterministic rejection) pin
 * loops = 1 explicitly instead.
 */
size_t
envLoops()
{
    const char *env = getenv("NOMAP_NET_LOOPS");
    if (!env || !*env)
        return 1;
    long value = atol(env);
    return value < 1 ? 1 : static_cast<size_t>(value);
}

// ---- Wire codec --------------------------------------------------------

WireRequest
sampleRequest()
{
    WireRequest request;
    request.id = 0x1122334455667788ull;
    request.arch = static_cast<uint8_t>(Architecture::NoMapRTM);
    request.timeoutMs = 2500;
    request.maxRetries = 3;
    request.traceCapacity = 4096;
    request.tenant = "tenant-a";
    request.source = "result = 1 + 2;\n";
    return request;
}

WireResponse
sampleResponse()
{
    WireResponse response;
    response.id = 42;
    response.status = static_cast<uint8_t>(ResponseStatus::Ok);
    response.shard = 3;
    response.attempts = 2;
    response.programCacheHit = 1;
    response.error = "";
    response.resultString = "12345";
    response.printed = "a\nb\n";
    response.instructions = 998877;
    response.checks = 5544;
    response.cyclesBits = 0x40fe240c9fbe76c9ull;
    response.txCommits = 17;
    response.txAborts = 3;
    response.deopts = 1;
    return response;
}

TEST(Wire, RequestRoundTrips)
{
    WireRequest in = sampleRequest();
    std::string payload = encodeRequestPayload(in);
    WireRequest out;
    std::string error;
    ASSERT_TRUE(decodeRequestPayload(payload, &out, &error)) << error;
    EXPECT_EQ(in, out);

    // Defaults (empty strings, zero fields) round-trip too.
    WireRequest empty;
    payload = encodeRequestPayload(empty);
    ASSERT_TRUE(decodeRequestPayload(payload, &out, &error)) << error;
    EXPECT_EQ(empty, out);
}

TEST(Wire, ResponseRoundTrips)
{
    WireResponse in = sampleResponse();
    std::string payload = encodeResponsePayload(in);
    WireResponse out;
    std::string error;
    ASSERT_TRUE(decodeResponsePayload(payload, &out, &error))
        << error;
    EXPECT_EQ(in, out);
}

TEST(Wire, EveryTruncationOfRequestPayloadIsRejected)
{
    std::string payload = encodeRequestPayload(sampleRequest());
    for (size_t cut = 0; cut < payload.size(); ++cut) {
        WireRequest out;
        std::string error;
        EXPECT_FALSE(decodeRequestPayload(payload.substr(0, cut),
                                          &out, &error))
            << "prefix of " << cut << " bytes decoded";
        EXPECT_FALSE(error.empty());
    }
}

TEST(Wire, EveryTruncationOfResponsePayloadIsRejected)
{
    std::string payload = encodeResponsePayload(sampleResponse());
    for (size_t cut = 0; cut < payload.size(); ++cut) {
        WireResponse out;
        std::string error;
        EXPECT_FALSE(decodeResponsePayload(payload.substr(0, cut),
                                           &out, &error))
            << "prefix of " << cut << " bytes decoded";
    }
}

TEST(Wire, TrailingBytesAreRejected)
{
    std::string payload = encodeRequestPayload(sampleRequest());
    payload.push_back('\0');
    WireRequest out;
    std::string error;
    EXPECT_FALSE(decodeRequestPayload(payload, &out, &error));
    EXPECT_NE(error.find("trailing"), std::string::npos);
}

TEST(Wire, VersionAndKindMismatchesAreRejected)
{
    std::string payload = encodeRequestPayload(sampleRequest());
    std::string wrong_version = payload;
    wrong_version[0] = static_cast<char>(kWireVersion + 1);
    WireRequest req;
    std::string error;
    EXPECT_FALSE(decodeRequestPayload(wrong_version, &req, &error));
    EXPECT_NE(error.find("version"), std::string::npos);

    // A response payload fed to the request decoder (and vice versa).
    std::string response_payload =
        encodeResponsePayload(sampleResponse());
    EXPECT_FALSE(decodeRequestPayload(response_payload, &req, &error));
    WireResponse resp;
    EXPECT_FALSE(decodeResponsePayload(payload, &resp, &error));
}

TEST(Wire, OutOfRangeEnumsAreRejected)
{
    WireResponse response = sampleResponse();
    response.status =
        static_cast<uint8_t>(ResponseStatus::Shed) + 1;
    std::string payload = encodeResponsePayload(response);
    WireResponse out;
    std::string error;
    EXPECT_FALSE(decodeResponsePayload(payload, &out, &error));
    EXPECT_NE(error.find("status"), std::string::npos);

    WireRequest request = sampleRequest();
    request.arch =
        static_cast<uint8_t>(Architecture::NoMapRTM) + 1;
    Request converted;
    EXPECT_FALSE(wireToRequest(request, &converted, &error));
    EXPECT_NE(error.find("architecture"), std::string::npos);
}

TEST(Wire, FrameDecoderReassemblesByteAtATime)
{
    std::string stream =
        frameMessage(encodeRequestPayload(sampleRequest())) +
        frameMessage("second") + frameMessage("");
    FrameDecoder decoder;
    std::vector<std::string> frames;
    for (char byte : stream) {
        decoder.feed(&byte, 1);
        std::string payload, error;
        while (decoder.next(&payload, &error) ==
               FrameDecoder::Result::Frame)
            frames.push_back(payload);
    }
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0], encodeRequestPayload(sampleRequest()));
    EXPECT_EQ(frames[1], "second");
    EXPECT_EQ(frames[2], "");
    EXPECT_EQ(decoder.bufferedBytes(), 0u);
}

TEST(Wire, FrameDecoderHandlesBatchedFrames)
{
    std::string stream = frameMessage("a") + frameMessage("bb") +
                         frameMessage("ccc");
    FrameDecoder decoder;
    decoder.feed(stream.data(), stream.size());
    std::string payload, error;
    EXPECT_EQ(decoder.next(&payload, &error),
              FrameDecoder::Result::Frame);
    EXPECT_EQ(payload, "a");
    EXPECT_EQ(decoder.next(&payload, &error),
              FrameDecoder::Result::Frame);
    EXPECT_EQ(payload, "bb");
    EXPECT_EQ(decoder.next(&payload, &error),
              FrameDecoder::Result::Frame);
    EXPECT_EQ(payload, "ccc");
    EXPECT_EQ(decoder.next(&payload, &error),
              FrameDecoder::Result::NeedMore);
}

TEST(Wire, OversizedFrameLengthPoisonsDecoder)
{
    FrameDecoder decoder;
    uint32_t huge = kMaxFramePayloadBytes + 1;
    char header[4];
    std::memcpy(header, &huge, 4); // Test runs little-endian hosts.
    decoder.feed(header, 4);
    std::string payload, error;
    EXPECT_EQ(decoder.next(&payload, &error),
              FrameDecoder::Result::Error);
    EXPECT_NE(error.find("exceeds"), std::string::npos);

    // Poisoned: further feeds are ignored, Error is sticky.
    std::string good = frameMessage("x");
    decoder.feed(good.data(), good.size());
    EXPECT_EQ(decoder.next(&payload, &error),
              FrameDecoder::Result::Error);
}

TEST(Wire, FrameDecoderBufferedBytesAcrossCompaction)
{
    // bufferedBytes() must equal fed-minus-consumed at every step,
    // including across the lazy compaction threshold (the internal
    // buffer only erase()s its consumed prefix once it passes 4 KiB
    // and dominates the buffer) — many partial feeds of multi-KiB
    // frames walk the decoder back and forth across that edge.
    std::string stream;
    std::vector<std::string> expected;
    for (int i = 0; i < 6; ++i) {
        expected.push_back(std::string(3000, static_cast<char>('a' + i)));
        stream += frameMessage(expected.back());
    }

    FrameDecoder decoder;
    std::vector<std::string> got;
    size_t fed = 0, consumed = 0, pos = 0;
    const size_t kChunk = 1234; // Never aligned with frame edges.
    while (pos < stream.size()) {
        size_t n = std::min(kChunk, stream.size() - pos);
        decoder.feed(stream.data() + pos, n);
        pos += n;
        fed += n;
        std::string payload, error;
        while (decoder.next(&payload, &error) ==
               FrameDecoder::Result::Frame) {
            consumed += 4 + payload.size(); // Header + payload.
            got.push_back(payload);
        }
        ASSERT_EQ(decoder.bufferedBytes(), fed - consumed)
            << "after feeding " << fed << " bytes";
    }
    EXPECT_EQ(got, expected);
    EXPECT_EQ(decoder.bufferedBytes(), 0u);
}

// ---- Shard router ------------------------------------------------------

TEST(ShardRouter, PlacementIsStableAcrossInstances)
{
    ShardRouter a(4), b(4);
    for (int t = 0; t < 32; ++t) {
        Request request;
        request.tenant = "tenant-" + std::to_string(t);
        request.config.arch = Architecture::NoMap;
        size_t first = a.route(request);
        EXPECT_EQ(first, b.route(request));
        EXPECT_EQ(first, a.route(request)); // And across calls.
        EXPECT_LT(first, 4u);
    }
}

TEST(ShardRouter, DistinctTenantsCoverAllShards)
{
    ShardRouter router(4);
    std::set<size_t> hit;
    for (int t = 0; t < 64; ++t) {
        Request request;
        request.tenant = "tenant-" + std::to_string(t);
        hit.insert(router.route(request));
    }
    EXPECT_EQ(hit.size(), 4u);
}

TEST(ShardRouter, ConfigIdentityAffectsPlacement)
{
    // The hash covers the EngineConfig identity, not just the tenant:
    // at least one of these arch variants must land elsewhere.
    ShardRouter router(4);
    Request request;
    request.tenant = "pinned";
    request.config.arch = Architecture::Base;
    size_t base = router.route(request);
    bool moved = false;
    for (Architecture arch :
         {Architecture::NoMapS, Architecture::NoMapB,
          Architecture::NoMap, Architecture::NoMapBC,
          Architecture::NoMapRTM}) {
        request.config.arch = arch;
        if (router.route(request) != base)
            moved = true;
    }
    EXPECT_TRUE(moved);
    EXPECT_EQ(ShardRouter(1).route(request), 0u);
}

// ---- Poller ------------------------------------------------------------

TEST(Poller, PipeReadinessSmoke)
{
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    Poller poller;
    poller.add(fds[0], kPollIn);
    poller.add(fds[1], kPollOut);
    EXPECT_EQ(poller.watchedCount(), 2u);

    std::vector<Poller::Event> events;
    poller.wait(&events, 100);
    // Write end is writable; read end not yet readable.
    bool read_ready = false, write_ready = false;
    for (const Poller::Event &event : events) {
        if (event.fd == fds[0] && (event.ready & kPollIn))
            read_ready = true;
        if (event.fd == fds[1] && (event.ready & kPollOut))
            write_ready = true;
    }
    EXPECT_FALSE(read_ready);
    EXPECT_TRUE(write_ready);

    ASSERT_EQ(write(fds[1], "x", 1), 1);
    poller.modify(fds[1], 0); // Mute the write end.
    poller.wait(&events, 1000);
    read_ready = false;
    for (const Poller::Event &event : events) {
        if (event.fd == fds[0] && (event.ready & kPollIn))
            read_ready = true;
    }
    EXPECT_TRUE(read_ready);

    poller.remove(fds[0]);
    poller.remove(fds[1]);
    EXPECT_EQ(poller.watchedCount(), 0u);
    close(fds[0]);
    close(fds[1]);
    EXPECT_TRUE(std::string(Poller::backendName()) == "epoll" ||
                std::string(Poller::backendName()) == "poll");
}

TEST(Poller, ModifyAndRemoveSurviveFdClosedUnderneath)
{
    // Teardown races close fds before the poller hears about them;
    // modify()/remove() on a watched-but-closed fd must not crash on
    // either backend. The backends diverge on whether modify() keeps
    // the entry (the epoll backend drops it, since the kernel
    // already forgot the fd), so only the end state is asserted.
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    Poller poller;
    poller.add(fds[0], kPollIn);
    close(fds[0]);
    poller.modify(fds[0], kPollIn | kPollOut);
    if (poller.watchedCount() > 0)
        poller.remove(fds[0]);
    EXPECT_EQ(poller.watchedCount(), 0u);

    // remove() directly on a closed fd.
    poller.add(fds[1], kPollOut);
    close(fds[1]);
    poller.remove(fds[1]);
    EXPECT_EQ(poller.watchedCount(), 0u);

    // The poller still works afterwards.
    int fresh[2];
    ASSERT_EQ(pipe(fresh), 0);
    poller.add(fresh[1], kPollOut);
    std::vector<Poller::Event> events;
    poller.wait(&events, 100);
    bool writable = false;
    for (const Poller::Event &event : events)
        writable |= event.fd == fresh[1] && (event.ready & kPollOut);
    EXPECT_TRUE(writable);
    poller.remove(fresh[1]);
    close(fresh[0]);
    close(fresh[1]);
}

// ---- Sharded service (in-process) --------------------------------------

TEST(ShardedService, DifferentialAcrossShardsAndTenants)
{
    std::map<std::string, Reference> refs;
    for (size_t s = 0; s < kNumScripts; ++s)
        refs[kScripts[s]] =
            referenceFor(Architecture::NoMap, kScripts[s]);

    ShardedServiceConfig config;
    config.shards = 3;
    config.shard.workers = 2;
    ShardedService service(config);

    std::vector<std::future<Response>> futures;
    std::vector<std::string> sources;
    for (int round = 0; round < 2; ++round) {
        for (int t = 0; t < 6; ++t) {
            for (size_t s = 0; s < kNumScripts; ++s) {
                Request request;
                request.tenant = "tenant-" + std::to_string(t);
                request.source = kScripts[s];
                request.config.arch = Architecture::NoMap;
                size_t expect_shard = service.shardOf(request);
                sources.push_back(request.source);
                futures.push_back(
                    service.submit(std::move(request)));
                EXPECT_LT(expect_shard, 3u);
            }
        }
    }
    for (size_t i = 0; i < futures.size(); ++i) {
        Response response = futures[i].get();
        ASSERT_TRUE(response.ok()) << response.error;
        const Reference &ref = refs[sources[i]];
        EXPECT_EQ(response.resultString, ref.resultString);
        WireResponse digest = responseToWire(response);
        EXPECT_EQ(digest.instructions, ref.digest.instructions);
        EXPECT_EQ(digest.cyclesBits, ref.digest.cyclesBits);
        EXPECT_LT(response.shard, 3u);
    }

    ShardedMetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.routed, futures.size());
    EXPECT_EQ(snap.shedTotal, 0u);
    uint64_t per_shard_total = 0;
    for (const auto &shard : snap.perShard)
        per_shard_total += shard.routed;
    EXPECT_EQ(per_shard_total, futures.size());
}

TEST(ShardedService, InjectedShardFullShedsDeterministically)
{
    FaultPlan plan = FaultPlan::parse("service.shardfull@2");
    ShardedServiceConfig config;
    config.shards = 2;
    config.shard.workers = 1;
    config.faultPlan = &plan;
    ShardedService service(config);

    Request r;
    r.source = "result = 1;";
    Response first = service.submit(r).get();
    Response second = service.submit(r).get();
    Response third = service.submit(r).get();
    EXPECT_EQ(first.status, ResponseStatus::Ok);
    EXPECT_EQ(second.status, ResponseStatus::Shed);
    EXPECT_NE(second.error.find("injected"), std::string::npos);
    EXPECT_EQ(third.status, ResponseStatus::Ok);

    ShardedMetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.shedTotal, 1u);
    EXPECT_EQ(snap.routed, 2u);
}

TEST(ShardedService, QueueDepthAdmissionControlSheds)
{
    ShardedServiceConfig config;
    config.shards = 1;
    config.shard.workers = 1;
    config.shedQueueDepth = 1;
    ShardedService service(config);

    // Occupy the single worker with a long script, wait until it is
    // in flight (queue empty), then fill the queue to the shed line.
    Request blocker;
    blocker.source = R"JS(
var acc = 0;
for (var i = 0; i < 400000; i++) { acc = (acc + i) % 65521; }
result = acc;
)JS";
    std::future<Response> running = service.submit(blocker);
    ASSERT_TRUE(eventually([&] {
        ServiceMetricsSnapshot snap = service.shard(0).metrics();
        return snap.inFlight == 1 && snap.queueDepth == 0;
    }));

    Request quick;
    quick.source = "result = 7;";
    // Depth 0 < 1: admitted, now queued behind the blocker.
    std::future<Response> queued = service.submit(quick);
    ASSERT_TRUE(eventually(
        [&] { return service.shard(0).metrics().queueDepth == 1; }));
    // Depth 1 >= 1: shed immediately, never enqueued.
    Response shed = service.submit(quick).get();
    EXPECT_EQ(shed.status, ResponseStatus::Shed);
    EXPECT_NE(shed.error.find("queue depth"), std::string::npos);

    EXPECT_EQ(running.get().status, ResponseStatus::Ok);
    EXPECT_EQ(queued.get().status, ResponseStatus::Ok);

    ShardedMetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.shedTotal, 1u);
    EXPECT_EQ(snap.perShard[0].service.shed, 1u);
    EXPECT_GE(snap.perShard[0].service.queueDepthHighWater, 1u);
}

TEST(ShardedService, RequestSpansCarryShardTag)
{
    ShardedServiceConfig config;
    config.shards = 4;
    config.shard.workers = 1;
    ShardedService service(config);

    Request request;
    request.tenant = "span-tenant";
    request.source = "result = 41 + 1;";
    request.config.traceCapacity = 4096;
    Response response = service.submit(request).get();
    ASSERT_TRUE(response.ok()) << response.error;
    ASSERT_FALSE(response.traceEvents.empty());

    bool saw_request_span = false;
    for (const TraceEvent &event : response.traceEvents) {
        if (event.type != TraceEventType::SpanBegin &&
            event.type != TraceEventType::SpanEnd)
            continue;
        if (event.code != static_cast<uint8_t>(SpanKind::Request))
            continue;
        saw_request_span = true;
        EXPECT_EQ(event.funcId, response.shard);
        EXPECT_EQ(event.pc, 0u); // In-process: no connection id.
    }
    EXPECT_TRUE(saw_request_span);
}

// ---- Loopback end-to-end -----------------------------------------------

/** Run the kernel mix over one connection, assert bit-identity. */
void
runLoopbackDifferential(NoMapServer *server,
                        const std::vector<Architecture> &archs,
                        int rounds)
{
    std::map<std::pair<int, std::string>, Reference> refs;
    for (Architecture arch : archs) {
        for (size_t s = 0; s < kNumScripts; ++s) {
            refs[{static_cast<int>(arch), kScripts[s]}] =
                referenceFor(arch, kScripts[s]);
        }
    }

    NetClient client;
    client.connect("127.0.0.1", server->port());

    struct Sent {
        Architecture arch;
        std::string source;
    };
    std::map<uint64_t, Sent> sent;
    uint64_t next_id = 1;
    for (int round = 0; round < rounds; ++round) {
        for (Architecture arch : archs) {
            for (size_t s = 0; s < kNumScripts; ++s) {
                WireRequest request;
                request.id = next_id++;
                request.arch = static_cast<uint8_t>(arch);
                request.tenant =
                    "tenant-" + std::to_string(s % 3);
                request.source = kScripts[s];
                client.sendRequest(request);
                sent[request.id] = {arch, kScripts[s]};
            }
        }
    }
    for (size_t i = 0; i < sent.size(); ++i) {
        WireResponse response = client.recvResponse();
        auto it = sent.find(response.id);
        ASSERT_NE(it, sent.end());
        const Reference &ref =
            refs[{static_cast<int>(it->second.arch),
                  it->second.source}];
        expectBitIdentical(
            response, ref,
            strprintf("id %llu arch %s",
                      static_cast<unsigned long long>(response.id),
                      architectureName(it->second.arch)));
        EXPECT_LT(response.shard,
                  server->service().shardCount());
    }
}

TEST(NetLoopback, ServedResponsesBitIdenticalAcrossArchitectures)
{
    ServerConfig config;
    config.loops = envLoops();
    config.service.shards = 2;
    config.service.shard.workers = 2;
    NoMapServer server(std::move(config));
    server.start();
    ASSERT_NE(server.port(), 0);
    EXPECT_EQ(server.loopCount(), envLoops());

    std::vector<Architecture> archs(std::begin(kDiffArchs),
                                    std::end(kDiffArchs));
    // Two rounds: the second exercises isolate reuse + program-cache
    // hits behind the wire.
    runLoopbackDifferential(&server, archs, 2);

    NetConnectionCounters counters = server.connectionCounters();
    EXPECT_EQ(counters.accepted, 1u);
    EXPECT_EQ(counters.decodeErrors, 0u);
    EXPECT_EQ(counters.framesIn,
              2u * archs.size() * kNumScripts);
    EXPECT_EQ(counters.framesOut, counters.framesIn);
    server.stop();
    EXPECT_EQ(server.connectionCounters().active, 0u);
}

TEST(NetLoopback, DifferentialHoldsUnderArmedFaultPlan)
{
    // Short reads, short writes, and frame deferrals degrade
    // *packetization and timing*, never content: every response must
    // still be bit-identical to the in-process reference.
    FaultPlan plan = FaultPlan::parse(
        "net.read@1,net.read@3,net.read@7,net.write@2,net.write@5,"
        "net.frame@1,net.frame@4");
    ServerConfig config;
    config.loops = envLoops();
    config.service.shards = 2;
    config.service.shard.workers = 2;
    config.faultPlan = &plan;
    NoMapServer server(std::move(config));
    server.start();

    std::vector<Architecture> archs = {Architecture::Base,
                                       Architecture::NoMap};
    runLoopbackDifferential(&server, archs, 2);

    NetConnectionCounters counters = server.connectionCounters();
    EXPECT_EQ(counters.deferredFrames, 2u); // net.frame@1 and @4.
    EXPECT_EQ(counters.decodeErrors, 0u);
    server.stop();
}

TEST(NetLoopback, InjectedAcceptFailureDropsFirstConnection)
{
    // The injector is shared across loops (relaxed-atomic counters),
    // so net.accept@1 fires exactly once no matter which loop's
    // listener wins the first connection.
    FaultPlan plan = FaultPlan::parse("net.accept@1");
    ServerConfig config;
    config.loops = envLoops();
    config.service.shards = 1;
    config.service.shard.workers = 1;
    config.faultPlan = &plan;
    NoMapServer server(std::move(config));
    server.start();

    // First connection: kernel-accepted, then failed by the injected
    // site — the client observes a close before any response.
    EXPECT_THROW(
        {
            NetClient doomed;
            doomed.connect("127.0.0.1", server.port());
            WireRequest request;
            request.id = 1;
            request.source = "result = 1;";
            doomed.sendRequest(request);
            doomed.recvResponse();
        },
        FatalError);
    ASSERT_TRUE(eventually([&] {
        return server.connectionCounters().acceptFaults == 1;
    }));

    // The site has fired; the next connection serves normally.
    NetClient client;
    client.connect("127.0.0.1", server.port());
    WireRequest request;
    request.id = 2;
    request.source = "result = 6 * 7;";
    WireResponse response = client.call(request);
    EXPECT_EQ(response.status,
              static_cast<uint8_t>(ResponseStatus::Ok));
    EXPECT_EQ(response.resultString, "42");
    server.stop();
}

TEST(NetLoopback, OversizedFrameAnswersErrorThenCloses)
{
    ServerConfig config;
    config.loops = envLoops();
    NoMapServer server(std::move(config));
    server.start();

    NetClient client;
    client.connect("127.0.0.1", server.port());
    uint32_t huge = kMaxFramePayloadBytes + 1;
    std::string header(reinterpret_cast<const char *>(&huge), 4);
    client.sendBytes(header);

    WireResponse response = client.recvResponse();
    EXPECT_EQ(response.status,
              static_cast<uint8_t>(ResponseStatus::Error));
    EXPECT_NE(response.error.find("protocol error"),
              std::string::npos);
    // The stream is unresynchronizable: the server closes it.
    EXPECT_THROW(client.recvResponse(), FatalError);
    ASSERT_TRUE(eventually([&] {
        return server.connectionCounters().decodeErrors == 1;
    }));

    // A fresh connection is unaffected.
    NetClient fresh;
    fresh.connect("127.0.0.1", server.port());
    WireRequest request;
    request.id = 1;
    request.source = "result = 5;";
    EXPECT_EQ(fresh.call(request).resultString, "5");
    server.stop();
}

TEST(NetLoopback, MalformedPayloadKeepsConnectionUsable)
{
    ServerConfig config;
    config.loops = envLoops();
    NoMapServer server(std::move(config));
    server.start();

    NetClient client;
    client.connect("127.0.0.1", server.port());
    // Framing is valid, payload is garbage: per-request error, the
    // stream stays in sync.
    client.sendBytes(frameMessage("not a real payload"));
    WireResponse bad = client.recvResponse();
    EXPECT_EQ(bad.status,
              static_cast<uint8_t>(ResponseStatus::Error));
    EXPECT_NE(bad.error.find("bad request"), std::string::npos);

    // Out-of-range architecture: also a per-request error.
    WireRequest bad_arch;
    bad_arch.id = 7;
    bad_arch.arch = 250;
    bad_arch.source = "result = 1;";
    client.sendRequest(bad_arch);
    WireResponse arch_response = client.recvResponse();
    EXPECT_EQ(arch_response.status,
              static_cast<uint8_t>(ResponseStatus::Error));
    EXPECT_EQ(arch_response.id, 7u);

    WireRequest good;
    good.id = 8;
    good.source = "result = 2 + 2;";
    WireResponse response = client.call(good);
    EXPECT_EQ(response.status,
              static_cast<uint8_t>(ResponseStatus::Ok));
    EXPECT_EQ(response.resultString, "4");
    EXPECT_EQ(server.connectionCounters().decodeErrors, 2u);
    server.stop();
}

TEST(NetLoopback, ShedStatusCrossesTheWire)
{
    FaultPlan plan = FaultPlan::parse("service.shardfull@1");
    ServerConfig config;
    config.loops = envLoops();
    config.service.shards = 1;
    config.service.shard.workers = 1;
    config.faultPlan = &plan;
    NoMapServer server(std::move(config));
    server.start();

    NetClient client;
    client.connect("127.0.0.1", server.port());
    WireRequest request;
    request.id = 1;
    request.source = "result = 1;";
    WireResponse shed = client.call(request);
    EXPECT_EQ(shed.status,
              static_cast<uint8_t>(ResponseStatus::Shed));
    EXPECT_NE(shed.error.find("shed"), std::string::npos);

    request.id = 2;
    WireResponse ok = client.call(request);
    EXPECT_EQ(ok.status, static_cast<uint8_t>(ResponseStatus::Ok));

    ShardedMetricsSnapshot snap = server.metrics();
    EXPECT_EQ(snap.shedTotal, 1u);
    EXPECT_EQ(snap.connections.framesOut, 2u);
    server.stop();
}

TEST(NetLoopback, MultiLoopServesBitIdenticalWithPerLoopMetrics)
{
    ServerConfig config;
    config.loops = 4;
    config.service.shards = 2;
    config.service.shard.workers = 2;
    NoMapServer server(std::move(config));
    server.start();
    ASSERT_EQ(server.loopCount(), 4u);

    // Six connections, each running the differential: with
    // SO_REUSEPORT the kernel spreads them across loops; in the
    // fallback the acceptor round-robins them. Either way every
    // response must stay bit-identical and the per-loop counters
    // must tile the totals exactly.
    std::vector<Architecture> archs = {Architecture::Base,
                                       Architecture::NoMap};
    for (int c = 0; c < 6; ++c)
        runLoopbackDifferential(&server, archs, 1);

    NetConnectionCounters counters = server.connectionCounters();
    EXPECT_EQ(counters.accepted, 6u);
    EXPECT_EQ(counters.decodeErrors, 0u);

    ShardedMetricsSnapshot snap = server.metrics();
    EXPECT_EQ(snap.loops, 4u);
    ASSERT_EQ(snap.eventLoops.size(), 4u);
    uint64_t loop_accepted = 0, loop_frames_in = 0,
             loop_frames_out = 0;
    for (const NetLoopCounters &loop : snap.eventLoops) {
        EXPECT_GE(loop.loop, 1u);
        EXPECT_LE(loop.loop, 4u);
        loop_accepted += loop.accepted;
        loop_frames_in += loop.framesIn;
        loop_frames_out += loop.framesOut;
    }
    EXPECT_EQ(loop_accepted, counters.accepted);
    EXPECT_EQ(loop_frames_in, counters.framesIn);
    EXPECT_EQ(loop_frames_out, counters.framesOut);

    // Wire requests are tagged with their loop: slot 0 (in-process)
    // stays zero and the per-loop router counters tile the total.
    ASSERT_EQ(snap.routedPerLoop.size(), 5u);
    EXPECT_EQ(snap.routedPerLoop[0], 0u);
    uint64_t routed_by_loop = 0;
    for (uint64_t n : snap.routedPerLoop)
        routed_by_loop += n;
    EXPECT_EQ(routed_by_loop, snap.routed);

    std::string json = server.metricsJson();
    EXPECT_NE(json.find("\"event_loops\""), std::string::npos);
    EXPECT_NE(json.find("\"routed_per_loop\""), std::string::npos);
    server.stop();
    EXPECT_EQ(server.connectionCounters().active, 0u);
}

TEST(NetLoopback, CloseAndReacceptWithinOnePollBatchIsSafe)
{
    // Regression canary for the stale-Conn* dispatch bug: a
    // connection with POLLOUT backlog whose read side closes inside a
    // poll batch frees its fd; when an accept in the same batch
    // reuses that fd, the old dispatch code touched the freed Conn
    // through the saved pointer (and could flush the *new* conn for
    // the stale event). The fix re-looks-up the fd and matches the
    // conn id. The interleaving is probabilistic, so iterate: under
    // ASan any hit on the old code crashes; the fixed code must
    // serve the replacement connection correctly every time.
    ServerConfig config;
    config.loops = 1; // fd reuse only recycles within one loop.
    config.sendBufferBytes = 4096;
    config.service.shards = 1;
    config.service.shard.workers = 2;
    NoMapServer server(std::move(config));
    server.start();

    // ~40 KiB of print output: overflows the 4 KiB server send
    // buffer + 4 KiB client receive window, so the response backlog
    // keeps POLLOUT armed while the client never reads.
    const char *kChatty = R"JS(
var line = "";
for (var i = 0; i < 100; i++) line = line + "x";
for (var r = 0; r < 400; r++) print(line);
result = 1;
)JS";

    uint64_t served = 0;
    for (int iter = 0; iter < 12; ++iter) {
        NetClient backlogged;
        backlogged.setReceiveBuffer(4096);
        backlogged.connect("127.0.0.1", server.port());
        WireRequest chatty;
        chatty.id = 1000 + static_cast<uint64_t>(iter);
        chatty.source = kChatty;
        backlogged.sendRequest(chatty);
        // Wait until the response is queued on the connection (the
        // frames_out counter bumps at append time), so its socket
        // has unflushed backlog and POLLOUT interest.
        ++served;
        ASSERT_TRUE(eventually([&] {
            return server.connectionCounters().framesOut >= served;
        }));
        // EOF + pending backlog: readable and writable fire in one
        // event; the close frees the fd for the next accept.
        backlogged.close();

        NetClient replacement;
        replacement.connect("127.0.0.1", server.port());
        WireRequest probe;
        probe.id = 2000 + static_cast<uint64_t>(iter);
        probe.source = "result = 6 * 7;";
        WireResponse response = replacement.call(probe);
        EXPECT_EQ(response.status,
                  static_cast<uint8_t>(ResponseStatus::Ok));
        EXPECT_EQ(response.id, probe.id);
        EXPECT_EQ(response.resultString, "42");
        ++served;
    }
    server.stop();
    EXPECT_EQ(server.connectionCounters().active, 0u);
}

TEST(NetLoopback, MalformedPayloadThenPeerResetDoesNotTouchFreedConn)
{
    // Regression canary for the processFrame error-path UAF: a
    // well-framed but malformed payload makes processFrame queue an
    // error frame and flush inline; when the peer has already reset
    // the connection that send() fails hard (ECONNRESET/EPIPE) and
    // closeConn frees the Conn — the old handleReadable then read
    // conn->id through the freed pointer. Loopback delivers the
    // payload and the RST back-to-back, so the kernel hands the
    // server the data first (queued bytes drain before sk_err) and
    // fails the send that follows; iterate to cover the remaining
    // timing window. Under ASan any hit on the old code crashes; the
    // fixed server must stay up and keep serving.
    ServerConfig config;
    config.loops = 1;
    config.service.shards = 1;
    config.service.shard.workers = 1;
    NoMapServer server(std::move(config));
    server.start();

    const std::string hostile = frameMessage("not a real payload");
    for (int iter = 0; iter < 64; ++iter) {
        int fd = socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_in addr {};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(server.port());
        ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
        ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        ASSERT_EQ(send(fd, hostile.data(), hostile.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(hostile.size()));
        // SO_LINGER with zero timeout turns close() into a RST.
        linger hard {};
        hard.l_onoff = 1;
        hard.l_linger = 0;
        setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
        ::close(fd);
    }

    // Quiesce: every reset connection the kernel let through accept()
    // must be closed again (whether one in the accept queue survives
    // its RST is kernel-specific, so no exact count is asserted).
    ASSERT_TRUE(eventually([&] {
        NetConnectionCounters c = server.connectionCounters();
        return c.accepted > 0 && c.closed == c.accepted;
    }));
    NetClient probe;
    probe.connect("127.0.0.1", server.port());
    WireRequest request;
    request.id = 7;
    request.source = "result = 6 * 7;";
    EXPECT_EQ(probe.call(request).resultString, "42");
    server.stop();
    EXPECT_EQ(server.connectionCounters().active, 0u);
}

TEST(NetLoopback, MaxConnectionRejectionCountsAsRejected)
{
    ServerConfig config;
    config.loops = 1; // One acceptor makes the cap exact.
    config.maxConnections = 2;
    config.service.shards = 1;
    config.service.shard.workers = 1;
    NoMapServer server(std::move(config));
    server.start();

    WireRequest request;
    request.id = 1;
    request.source = "result = 2;";

    NetClient first, second;
    first.connect("127.0.0.1", server.port());
    EXPECT_EQ(first.call(request).resultString, "2");
    second.connect("127.0.0.1", server.port());
    EXPECT_EQ(second.call(request).resultString, "2");
    ASSERT_TRUE(eventually(
        [&] { return server.connectionCounters().accepted == 2; }));

    // Over the cap: the kernel completes the handshake, the server
    // closes it unserved — counted as rejected, NOT accepted+closed.
    NetClient over;
    over.connect("127.0.0.1", server.port());
    EXPECT_THROW(
        {
            over.sendRequest(request);
            over.recvResponse();
        },
        FatalError);
    ASSERT_TRUE(eventually(
        [&] { return server.connectionCounters().rejected == 1; }));
    NetConnectionCounters counters = server.connectionCounters();
    EXPECT_EQ(counters.accepted, 2u);
    EXPECT_EQ(counters.closed, 0u);
    EXPECT_EQ(counters.active, 2u);
    EXPECT_NE(server.metricsJson().find("\"rejected\": 1"),
              std::string::npos);

    // Freeing a slot readmits new connections.
    first.close();
    ASSERT_TRUE(eventually(
        [&] { return server.connectionCounters().closed == 1; }));
    NetClient readmitted;
    readmitted.connect("127.0.0.1", server.port());
    EXPECT_EQ(readmitted.call(request).resultString, "2");
    EXPECT_EQ(server.connectionCounters().accepted, 3u);
    server.stop();
}

TEST(NetLoopback, TransientAcceptFailureBacksOffAndRecovers)
{
    // Drive a real EMFILE through accept(2) by exhausting the fd
    // table, and check the loop counts the fault, drops accept
    // interest for a backoff tick instead of hot-spinning on the
    // level-triggered listener, and serves new connections again
    // once fds free up. (Whether the connection pending during the
    // failure survives is kernel-specific — some stacks keep it
    // queued, some reset it — so only fresh-connection recovery is
    // asserted.)
    ServerConfig config;
    config.loops = 1;
    config.acceptBackoffMs = 25;
    config.service.shards = 1;
    config.service.shard.workers = 1;
    NoMapServer server(std::move(config));
    server.start();

    // The triggering socket must exist before exhaustion: connect()
    // on an existing fd needs no new descriptor, and the handshake
    // completes in the listen backlog without the server's help.
    int clientFd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(clientFd, 0);

    rlimit saved {};
    ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &saved), 0);
    rlimit tight = saved;
    tight.rlim_cur = 128; // Plenty above current usage, quick to fill.
    ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &tight), 0);
    std::vector<int> hogs;
    for (;;) {
        int fd = dup(clientFd);
        if (fd < 0)
            break;
        hogs.push_back(fd);
    }
    ASSERT_FALSE(hogs.empty());

    sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(clientFd,
                        reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    // accept() hits EMFILE: fault counted, accept interest dropped.
    ASSERT_TRUE(eventually([&] {
        NetConnectionCounters c = server.connectionCounters();
        return c.acceptFaults >= 1 && c.acceptBackoffs >= 1;
    }));
    EXPECT_EQ(server.connectionCounters().accepted, 0u);

    // Release the fd table; after the backoff tick the listener
    // re-arms and fresh connections are served again.
    for (int fd : hogs)
        close(fd);
    ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &saved), 0);
    close(clientFd);

    NetClient client;
    client.connect("127.0.0.1", server.port());
    WireRequest request;
    request.id = 9;
    request.source = "result = 3 * 3;";
    WireResponse response = client.call(request);
    EXPECT_EQ(response.status,
              static_cast<uint8_t>(ResponseStatus::Ok));
    EXPECT_EQ(response.resultString, "9");
    EXPECT_GE(server.connectionCounters().accepted, 1u);
    server.stop();
}

TEST(ShardedService, LoopOrdinalTagsSpansAndRouterCounters)
{
    // The wire path stamps Request::loop (EventLoop::processFrame);
    // the span wrapper must carry it into the Request span's aux
    // field, and the router must count admissions per loop.
    // Exercised in-process with an explicit ordinal; in-process
    // submissions themselves stay loop 0, keeping trace goldens and
    // the slot-0 counter unchanged.
    ShardedServiceConfig config;
    config.shards = 2;
    config.shard.workers = 1;
    config.loops = 4;
    ShardedService service(config);

    Request request;
    request.source = "result = 3;";
    request.config.traceCapacity = 4096;
    request.connectionId = 99;
    request.loop = 3;
    Response response = service.submit(request).get();
    ASSERT_TRUE(response.ok()) << response.error;

    bool saw_request_span = false;
    for (const TraceEvent &event : response.traceEvents) {
        if (event.type != TraceEventType::SpanBegin &&
            event.type != TraceEventType::SpanEnd)
            continue;
        if (event.code != static_cast<uint8_t>(SpanKind::Request))
            continue;
        saw_request_span = true;
        EXPECT_EQ(event.aux, 3u);
        EXPECT_EQ(event.pc, 99u);
    }
    EXPECT_TRUE(saw_request_span);

    Request inproc;
    inproc.source = "result = 4;";
    ASSERT_TRUE(service.submit(inproc).get().ok());

    ShardedMetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.loops, 4u);
    ASSERT_EQ(snap.routedPerLoop.size(), 5u);
    EXPECT_EQ(snap.routedPerLoop[3], 1u);
    EXPECT_EQ(snap.routedPerLoop[0], 1u); // The in-process submit.
    EXPECT_EQ(snap.routedPerLoop[1], 0u);
}

TEST(ShardedService, ConnectionIdTagsRequestSpans)
{
    // The wire path stamps Request::connectionId before submission
    // (NoMapServer::processFrame); the span wrapper must carry it
    // into the Request span's pc field for per-connection grouping
    // in trace views. Exercised here in-process with an explicit id.
    ShardedServiceConfig config;
    config.shards = 2;
    config.shard.workers = 1;
    ShardedService service(config);

    Request request;
    request.source = "result = 3;";
    request.config.traceCapacity = 4096;
    request.connectionId = 99;
    Response response = service.submit(request).get();
    ASSERT_TRUE(response.ok()) << response.error;

    bool saw_request_span = false;
    for (const TraceEvent &event : response.traceEvents) {
        if (event.type != TraceEventType::SpanBegin &&
            event.type != TraceEventType::SpanEnd)
            continue;
        if (event.code != static_cast<uint8_t>(SpanKind::Request))
            continue;
        saw_request_span = true;
        EXPECT_EQ(event.pc, 99u);
        EXPECT_EQ(event.funcId, response.shard);
    }
    EXPECT_TRUE(saw_request_span);
}

} // namespace
} // namespace nomap
