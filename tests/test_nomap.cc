#include <gtest/gtest.h>

#include "engine/engine.h"
#include "support/logging.h"

namespace nomap {
namespace {

/**
 * NoMap planner and runtime-policy tests: transaction placement,
 * scope selection, capacity escalation, irrevocable events, tiling.
 */

EngineResult
runArch(Architecture arch, const std::string &src, Engine **out = nullptr)
{
    static std::unique_ptr<Engine> keeper;
    EngineConfig config;
    config.arch = arch;
    keeper = std::make_unique<Engine>(config);
    EngineResult r = keeper->run(src);
    if (out)
        *out = keeper.get();
    return r;
}

TEST(Planner, WrapsHotLoopsOnly)
{
    // The cold helper is called a handful of times: no transactions.
    Engine *engine = nullptr;
    runArch(Architecture::NoMap, R"JS(
function hot(a) {
    var s = 0;
    for (var i = 0; i < a.length; i++) s = (s + a[i]) & 65535;
    return s;
}
function coldish(x) {
    var t = 0;
    for (var i = 0; i < 2; i++) t += x;
    return t;
}
var a = [];
for (var i = 0; i < 100; i++) a[i] = i;
var out = 0;
for (var r = 0; r < 150; r++) out = hot(a);
out += coldish(1);
result = out;
)JS", &engine);
    const FunctionState *hot = engine->functionState("hot");
    ASSERT_NE(hot, nullptr);
    ASSERT_NE(hot->ftl, nullptr);
    EXPECT_EQ(hot->ftl->planResult.transactionsPlaced, 1u);
    const FunctionState *cold = engine->functionState("coldish");
    ASSERT_NE(cold, nullptr);
    EXPECT_EQ(cold->ftl, nullptr); // Never reached FTL.
}

TEST(Planner, SkipsLoopsWithPrint)
{
    Engine *engine = nullptr;
    runArch(Architecture::NoMap, R"JS(
function chatty(n) {
    var s = 0;
    for (var i = 0; i < n; i++) {
        s += i;
        if (i == 9999) print("never");
    }
    return s;
}
var out = 0;
for (var r = 0; r < 150; r++) out = chatty(60);
result = out;
)JS", &engine);
    const FunctionState *state = engine->functionState("chatty");
    ASSERT_NE(state, nullptr);
    ASSERT_NE(state->ftl, nullptr);
    EXPECT_EQ(state->ftl->planResult.transactionsPlaced, 0u);
    EXPECT_EQ(state->ftl->planResult.nestsSkippedIrrevocable, 1u);
}

TEST(Planner, IrrevocableEventAbortsIfItFires)
{
    // print() in a trained-cold branch that eventually executes from
    // within a transaction must abort it, not violate isolation.
    EngineResult r = runArch(Architecture::NoMap, R"JS(
var mode = 0;
function maybePrint(n) {
    var s = 0;
    for (var i = 0; i < n; i++) {
        s += i;
        if (mode == 1 && i == 3) print("inside");
    }
    return s;
}
var out = 0;
for (var r2 = 0; r2 < 150; r2++) out = maybePrint(60);
mode = 1;
out = maybePrint(60);
result = out;
)JS");
    EXPECT_EQ(r.resultString, "1770");
    EXPECT_NE(r.printed.find("inside"), std::string::npos);
}

TEST(Planner, TilesWhenFootprintExceedsCapacity)
{
    // 640 KB of writes per call: beyond even the L2 budget -> the
    // planner must tile, and the program must still be correct.
    Engine *engine = nullptr;
    EngineResult r = runArch(Architecture::NoMap, R"JS(
function fill(dst) {
    var n = dst.length;
    for (var i = 0; i < n; i++) dst[i] = i & 1023;
    return dst[n - 1];
}
var dst = [];
for (var i = 0; i < 80000; i++) dst[i] = 0;
var out = 0;
for (var r = 0; r < 80; r++) out = fill(dst);
result = out;
)JS", &engine);
    EXPECT_EQ(r.resultString, std::to_string(79999 & 1023));
    const FunctionState *state = engine->functionState("fill");
    ASSERT_NE(state->ftl, nullptr);
    EXPECT_EQ(state->ftl->planResult.tiledLoops, 1u);
    EXPECT_GT(r.stats.txCommits, 80u); // Multiple tiles per call.
    EXPECT_EQ(r.stats.txAbortsCapacity, 0u);
}

TEST(Planner, CapacityAbortEscalatesScope)
{
    // The static estimate sees a small per-iteration footprint, but
    // the callee-free loop writes via push() growth... instead use a
    // loop whose trip count explodes after training so the runtime
    // hits capacity aborts and recompiles with a smaller scope.
    Engine *engine = nullptr;
    EngineResult r = runArch(Architecture::NoMap, R"JS(
function fill(dst, n) {
    for (var i = 0; i < n; i++) dst[i] = i & 255;
    return dst[n - 1];
}
var dst = [];
for (var i = 0; i < 80000; i++) dst[i] = 0;
var out = 0;
for (var r = 0; r < 130; r++) out = fill(dst, 64);
out = fill(dst, 80000);
out = fill(dst, 80000);
out = fill(dst, 80000);
result = out;
)JS", &engine);
    EXPECT_EQ(r.resultString, std::to_string(79999 & 255));
    // At least one capacity abort happened, and the engine recompiled
    // with an escalated (smaller) transaction scope.
    EXPECT_GT(r.stats.txAbortsCapacity, 0u);
    EXPECT_GT(r.stats.ftlRecompiles, 0u);
}

TEST(Planner, RepeatedCheckAbortsDetransactionalize)
{
    // After training, every call deopts on a shape change: the
    // runtime should eventually give up on transactions for the
    // function instead of aborting forever.
    Engine *engine = nullptr;
    EngineConfig config;
    config.arch = Architecture::NoMap;
    config.abortEscalationLimit = 4;
    Engine e(config);
    EngineResult r = e.run(R"JS(
function readX(p, n) {
    var acc = 0;
    for (var i = 0; i < n; i++) acc += p.x;
    return acc;
}
var trained = {x: 2, y: 0};
var out = 0;
for (var r2 = 0; r2 < 130; r2++) out = readX(trained, 30);
var odd = {y: 1, x: 5};
for (var r3 = 0; r3 < 20; r3++) out = readX(odd, 30);
result = out;
)JS");
    engine = &e;
    EXPECT_EQ(r.resultString, "150");
    EXPECT_GT(r.stats.txAbortsCheck, 0u);
    EXPECT_GT(r.stats.ftlRecompiles, 0u);
    const FunctionState *state = engine->functionState("readX");
    ASSERT_NE(state, nullptr);
    EXPECT_EQ(state->txScopeLevel, 3u); // Transactions disabled.
    // Aborts are bounded by the escalation limit, not 20.
    EXPECT_LE(r.stats.txAbortsCheck, 6u);
}

TEST(Planner, NestedLoopsWrapAtNestLevel)
{
    Engine *engine = nullptr;
    runArch(Architecture::NoMap, R"JS(
function mat(a, n) {
    var s = 0;
    for (var i = 0; i < n; i++) {
        for (var j = 0; j < n; j++) {
            s = (s + a[i * n + j]) & 65535;
        }
    }
    return s;
}
var a = [];
for (var i = 0; i < 400; i++) a[i] = i & 7;
var out = 0;
for (var r = 0; r < 150; r++) out = mat(a, 20);
result = out;
)JS", &engine);
    const FunctionState *state = engine->functionState("mat");
    ASSERT_NE(state->ftl, nullptr);
    // One transaction around the whole nest, not one per inner loop.
    EXPECT_EQ(state->ftl->planResult.transactionsPlaced, 1u);
    EXPECT_EQ(state->ftl->ir.txRegions.size(), 1u);
}

} // namespace
} // namespace nomap
