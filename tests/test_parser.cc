#include <gtest/gtest.h>

#include "js/parser.h"
#include "support/logging.h"

namespace nomap {
namespace {

TEST(Parser, FunctionAndTopLevel)
{
    Program p = parseProgram("function f(a, b) { return a + b; }\n"
                             "var x = f(1, 2);");
    ASSERT_EQ(p.functions.size(), 1u);
    EXPECT_EQ(p.functions[0]->name, "f");
    ASSERT_EQ(p.functions[0]->params.size(), 2u);
    ASSERT_EQ(p.topLevel.size(), 1u);
    EXPECT_EQ(p.topLevel[0]->kind, StmtKind::VarDecl);
}

TEST(Parser, Precedence)
{
    Program p = parseProgram("x = 1 + 2 * 3;");
    auto &stmt = static_cast<ExpressionStmt &>(*p.topLevel[0]);
    EXPECT_EQ(exprToString(*stmt.expr), "x = (1 + (2 * 3))");
}

TEST(Parser, PrecedenceBitwiseVsComparison)
{
    Program p = parseProgram("x = a & b == c;");
    auto &stmt = static_cast<ExpressionStmt &>(*p.topLevel[0]);
    EXPECT_EQ(exprToString(*stmt.expr), "x = (a & (b == c))");
}

TEST(Parser, RightAssociativeAssignment)
{
    Program p = parseProgram("a = b = 3;");
    auto &stmt = static_cast<ExpressionStmt &>(*p.topLevel[0]);
    EXPECT_EQ(exprToString(*stmt.expr), "a = b = 3");
}

TEST(Parser, CompoundAssignment)
{
    Program p = parseProgram("a += 2; a <<= 1;");
    auto &s0 = static_cast<ExpressionStmt &>(*p.topLevel[0]);
    EXPECT_EQ(s0.expr->kind, ExprKind::CompoundAssign);
    auto &s1 = static_cast<ExpressionStmt &>(*p.topLevel[1]);
    auto &ca = static_cast<CompoundAssignExpr &>(*s1.expr);
    EXPECT_EQ(ca.op, BinaryOp::Shl);
}

TEST(Parser, ForLoopPieces)
{
    Program p = parseProgram("for (var i = 0; i < 10; i++) { x = i; }");
    ASSERT_EQ(p.topLevel.size(), 1u);
    auto &loop = static_cast<ForStmt &>(*p.topLevel[0]);
    ASSERT_NE(loop.init, nullptr);
    ASSERT_NE(loop.cond, nullptr);
    ASSERT_NE(loop.update, nullptr);
    EXPECT_EQ(loop.update->kind, ExprKind::PostIncDec);
}

TEST(Parser, ForLoopEmptyClauses)
{
    Program p = parseProgram("for (;;) { break; }");
    auto &loop = static_cast<ForStmt &>(*p.topLevel[0]);
    EXPECT_EQ(loop.init, nullptr);
    EXPECT_EQ(loop.cond, nullptr);
    EXPECT_EQ(loop.update, nullptr);
}

TEST(Parser, MemberIndexCallChain)
{
    Program p = parseProgram("y = obj.values[i].length;");
    auto &stmt = static_cast<ExpressionStmt &>(*p.topLevel[0]);
    EXPECT_EQ(exprToString(*stmt.expr), "y = obj.values[i].length");
}

TEST(Parser, MethodCall)
{
    Program p = parseProgram("s.charCodeAt(3);");
    auto &stmt = static_cast<ExpressionStmt &>(*p.topLevel[0]);
    auto &call = static_cast<CallExpr &>(*stmt.expr);
    EXPECT_EQ(call.callee->kind, ExprKind::Member);
    ASSERT_EQ(call.args.size(), 1u);
}

TEST(Parser, ArrayAndObjectLiterals)
{
    Program p = parseProgram("var a = [1, 2, 3], o = {x: 1, y: [2]};");
    auto &decl = static_cast<VarDeclStmt &>(*p.topLevel[0]);
    ASSERT_EQ(decl.decls.size(), 2u);
    EXPECT_EQ(decl.decls[0].second->kind, ExprKind::ArrayLit);
    EXPECT_EQ(decl.decls[1].second->kind, ExprKind::ObjectLit);
}

TEST(Parser, TernaryAndLogical)
{
    Program p = parseProgram("x = a && b ? c || d : e;");
    auto &stmt = static_cast<ExpressionStmt &>(*p.topLevel[0]);
    EXPECT_EQ(exprToString(*stmt.expr),
              "x = ((a && b) ? (c || d) : e)");
}

TEST(Parser, WhileAndDoWhile)
{
    Program p = parseProgram("while (x) x--; do { x++; } while (x < 3);");
    EXPECT_EQ(p.topLevel[0]->kind, StmtKind::While);
    EXPECT_EQ(p.topLevel[1]->kind, StmtKind::DoWhile);
}

TEST(Parser, IfElseChain)
{
    Program p = parseProgram("if (a) x = 1; else if (b) x = 2; else x = 3;");
    auto &stmt = static_cast<IfStmt &>(*p.topLevel[0]);
    ASSERT_NE(stmt.elseStmt, nullptr);
    EXPECT_EQ(stmt.elseStmt->kind, StmtKind::If);
}

TEST(Parser, UnaryChain)
{
    Program p = parseProgram("x = -~!y;");
    auto &stmt = static_cast<ExpressionStmt &>(*p.topLevel[0]);
    EXPECT_EQ(exprToString(*stmt.expr), "x = -(~(!(y)))");
}

TEST(Parser, TypeofOperator)
{
    Program p = parseProgram("t = typeof x;");
    auto &stmt = static_cast<ExpressionStmt &>(*p.topLevel[0]);
    auto &un = static_cast<UnaryExpr &>(
        *static_cast<AssignExpr &>(*stmt.expr).value);
    EXPECT_EQ(un.op, UnaryOp::Typeof);
}

TEST(Parser, PreAndPostIncrement)
{
    Program p = parseProgram("++a; a++; --b[i]; obj.x--;");
    EXPECT_EQ(static_cast<ExpressionStmt &>(*p.topLevel[0]).expr->kind,
              ExprKind::PreIncDec);
    EXPECT_EQ(static_cast<ExpressionStmt &>(*p.topLevel[1]).expr->kind,
              ExprKind::PostIncDec);
    EXPECT_EQ(static_cast<ExpressionStmt &>(*p.topLevel[2]).expr->kind,
              ExprKind::PreIncDec);
    EXPECT_EQ(static_cast<ExpressionStmt &>(*p.topLevel[3]).expr->kind,
              ExprKind::PostIncDec);
}

TEST(Parser, SyntaxErrors)
{
    EXPECT_THROW(parseProgram("var = 3;"), FatalError);
    EXPECT_THROW(parseProgram("function () {}"), FatalError);
    EXPECT_THROW(parseProgram("if (x { }"), FatalError);
    EXPECT_THROW(parseProgram("1 = 2;"), FatalError);
    EXPECT_THROW(parseProgram("++1;"), FatalError);
    EXPECT_THROW(parseProgram("x = [1, 2;"), FatalError);
}

TEST(Parser, SwitchClauses)
{
    Program p = parseProgram(
        "switch (x) { case 1: a = 1; break; case 2: case 3: a = 2;"
        " break; default: a = 9; }");
    ASSERT_EQ(p.topLevel.size(), 1u);
    auto &sw = static_cast<SwitchStmt &>(*p.topLevel[0]);
    ASSERT_EQ(sw.clauses.size(), 4u);
    EXPECT_NE(sw.clauses[0].test, nullptr);
    EXPECT_EQ(sw.clauses[1].body.size(), 0u); // Empty fall-through.
    EXPECT_EQ(sw.clauses[3].test, nullptr);   // default.
}

TEST(Parser, SwitchErrors)
{
    EXPECT_THROW(
        parseProgram("switch (x) { default: ; default: ; }"),
        FatalError);
    EXPECT_THROW(parseProgram("switch (x) { foo; }"), FatalError);
}

TEST(Parser, BreakContinueReturn)
{
    Program p = parseProgram(
        "function f() { while (1) { if (x) break; continue; } return; }");
    ASSERT_EQ(p.functions.size(), 1u);
    EXPECT_EQ(p.functions[0]->body[0]->kind, StmtKind::While);
}

} // namespace
} // namespace nomap
