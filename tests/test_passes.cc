#include <gtest/gtest.h>

#include "engine/engine.h"
#include "ftl/compile.h"
#include "js/parser.h"
#include "passes/analysis.h"
#include "passes/passes.h"

namespace nomap {
namespace {

/**
 * Pass tests drive the real pipeline through an Engine (to get
 * genuine profiles) and assert on the PassStats and resulting IR
 * shape per architecture.
 */
class PassTest : public ::testing::Test
{
  protected:
    /** Run src, then return the state of function @p name. */
    const FunctionState *
    trainAndGet(Architecture arch, const std::string &src,
                const std::string &name)
    {
        engine = std::make_unique<Engine>([&] {
            EngineConfig config;
            config.arch = arch;
            return config;
        }());
        engine->run(src);
        return engine->functionState(name);
    }

    static uint32_t
    countOps(const IrFunction &ir, IrOp op)
    {
        uint32_t n = 0;
        for (const IrBlock &block : ir.blocks) {
            for (const IrInstr &instr : block.instrs)
                n += instr.op == op;
        }
        return n;
    }

    std::unique_ptr<Engine> engine;
};

const char *kSumLoop = R"JS(
function sumInto(obj) {
    var len = obj.values.length;
    for (var idx = 0; idx < len; idx++) {
        var value = obj.values[idx];
        obj.sum += value;
    }
    return obj.sum;
}
var o = {values: [], sum: 0};
for (var i = 0; i < 200; i++) o.values[i] = i % 7;
var total = 0;
for (var r = 0; r < 120; r++) { o.sum = 0; total = sumInto(o); }
result = total;
)JS";

TEST_F(PassTest, BaseKeepsSmpsAndStoresInLoop)
{
    const FunctionState *state =
        trainAndGet(Architecture::Base, kSumLoop, "sumInto");
    ASSERT_NE(state, nullptr);
    ASSERT_NE(state->ftl, nullptr);
    const IrFunction &ir = state->ftl->ir;
    EXPECT_FALSE(ir.txAware);
    EXPECT_EQ(countOps(ir, IrOp::TxBegin), 0u);
    // Un-converted checks everywhere.
    uint32_t unconverted = 0;
    for (const IrBlock &block : ir.blocks) {
        for (const IrInstr &instr : block.instrs)
            unconverted += instr.isCheck() && !instr.converted;
    }
    EXPECT_GT(unconverted, 3u);
    // The accumulator store stays inside the loop: no store sinking.
    EXPECT_EQ(state->ftl->passStats.storesSunk, 0u);
}

TEST_F(PassTest, NoMapSConvertsAndPromotes)
{
    const FunctionState *state =
        trainAndGet(Architecture::NoMapS, kSumLoop, "sumInto");
    ASSERT_NE(state, nullptr);
    ASSERT_NE(state->ftl, nullptr);
    const IrFunction &ir = state->ftl->ir;
    EXPECT_TRUE(ir.txAware);
    EXPECT_EQ(countOps(ir, IrOp::TxBegin), 1u);
    EXPECT_GE(countOps(ir, IrOp::TxEnd), 1u);
    EXPECT_GT(state->ftl->planResult.checksConverted, 0u);
    // Figure 4(d): obj.sum promoted to a register, stored at exit.
    EXPECT_EQ(state->ftl->passStats.storesSunk, 1u);
    EXPECT_GE(state->ftl->passStats.loadsPromoted, 1u);
    // Invariant shape check hoisted out of the loop.
    EXPECT_GE(state->ftl->passStats.opsHoisted, 1u);
}

TEST_F(PassTest, NoMapBCombinesBoundsChecks)
{
    const FunctionState *state =
        trainAndGet(Architecture::NoMapB, kSumLoop, "sumInto");
    ASSERT_NE(state->ftl, nullptr);
    EXPECT_GE(state->ftl->passStats.boundsChecksCombined, 1u);
    EXPECT_EQ(countOps(state->ftl->ir, IrOp::CheckBounds), 0u);
    EXPECT_GE(countOps(state->ftl->ir, IrOp::CheckBoundsRange), 1u);
}

TEST_F(PassTest, FullNoMapElidesOverflowChecks)
{
    const FunctionState *state =
        trainAndGet(Architecture::NoMap, kSumLoop, "sumInto");
    ASSERT_NE(state->ftl, nullptr);
    EXPECT_GE(state->ftl->passStats.overflowChecksRemoved, 1u);
    // Only un-converted overflow checks (outside transactions) may
    // remain.
    for (const IrBlock &block : state->ftl->ir.blocks) {
        for (const IrInstr &instr : block.instrs) {
            if (instr.op == IrOp::CheckOverflow) {
                EXPECT_FALSE(instr.converted);
            }
        }
    }
}

TEST_F(PassTest, RtmKeepsOverflowChecks)
{
    // x86 has no SOF: NoMap_RTM runs the NoMap_B pipeline.
    const FunctionState *state =
        trainAndGet(Architecture::NoMapRTM, kSumLoop, "sumInto");
    ASSERT_NE(state->ftl, nullptr);
    EXPECT_EQ(state->ftl->passStats.overflowChecksRemoved, 0u);
    EXPECT_GT(countOps(state->ftl->ir, IrOp::CheckOverflow), 0u);
}

TEST_F(PassTest, BcRemovesEverything)
{
    const FunctionState *state =
        trainAndGet(Architecture::NoMapBC, kSumLoop, "sumInto");
    ASSERT_NE(state->ftl, nullptr);
    for (const IrBlock &block : state->ftl->ir.blocks) {
        for (const IrInstr &instr : block.instrs) {
            EXPECT_FALSE(instr.isCheck() && instr.converted);
        }
    }
    EXPECT_GT(state->ftl->passStats.checksRemovedUnsafe, 0u);
}

TEST_F(PassTest, DfgRunsOnlyLightPasses)
{
    EngineConfig config;
    config.arch = Architecture::NoMap;
    config.maxTier = Tier::Dfg;
    engine = std::make_unique<Engine>(config);
    engine->run(kSumLoop);
    const FunctionState *state = engine->functionState("sumInto");
    ASSERT_NE(state, nullptr);
    EXPECT_EQ(state->tier, Tier::Dfg);
    ASSERT_NE(state->dfg, nullptr);
    // DFG never gets transactions, even under NoMap configs.
    EXPECT_FALSE(state->dfg->ir.txAware);
    EXPECT_EQ(state->dfg->passStats.storesSunk, 0u);
}

TEST_F(PassTest, KindInferenceRemovesProvableChecks)
{
    // idx is proven int32 by the overflow-checked increment: the
    // compare's CheckInt32 disappears even in Base.
    const FunctionState *state =
        trainAndGet(Architecture::Base, kSumLoop, "sumInto");
    ASSERT_NE(state->ftl, nullptr);
    EXPECT_GT(state->ftl->passStats.checksRemovedByKinds, 0u);
}

const char *kDecreasing = R"JS(
function sumDown(arr) {
    var acc = 0;
    for (var i = arr.length - 1; i >= 0; i--) {
        acc += arr[i];
    }
    return acc;
}
var data = [];
for (var i = 0; i < 128; i++) data[i] = i & 3;
var out = 0;
for (var r = 0; r < 120; r++) out = sumDown(data);
result = out;
)JS";

TEST_F(PassTest, DecreasingInductionAlsoCombines)
{
    const FunctionState *state =
        trainAndGet(Architecture::NoMapB, kDecreasing, "sumDown");
    ASSERT_NE(state->ftl, nullptr);
    EXPECT_GE(state->ftl->passStats.boundsChecksCombined, 1u);
}

const char *kEarlyExit = R"JS(
function findFirst(arr, needle) {
    for (var i = 0; i < arr.length; i++) {
        if (arr[i] == needle) break;
    }
    return i;
}
var data = [];
for (var i = 0; i < 128; i++) data[i] = i;
var out = 0;
for (var r = 0; r < 120; r++) out = findFirst(data, 100);
result = out;
)JS";

TEST_F(PassTest, EarlyExitLoopDoesNotCombine)
{
    // Conservative condition: combining requires a single header
    // exit; the break adds a second one.
    const FunctionState *state =
        trainAndGet(Architecture::NoMapB, kEarlyExit, "findFirst");
    ASSERT_NE(state->ftl, nullptr);
    EXPECT_EQ(state->ftl->passStats.boundsChecksCombined, 0u);
    // Still correct, of course.
}

const char *kDeadLoop = R"JS(
function spin(n) {
    var junk = 0;
    for (var i = 0; i < n; i++) junk += i * 3;
    return 0;
}
var z = 0;
for (var r = 0; r < 120; r++) z += spin(500);
result = z;
)JS";

TEST_F(PassTest, DeadAccumulatorLoopVanishesInTx)
{
    const FunctionState *state =
        trainAndGet(Architecture::NoMap, kDeadLoop, "spin");
    ASSERT_NE(state->ftl, nullptr);
    EXPECT_GT(state->ftl->passStats.deadOpsRemoved, 0u);
    EXPECT_GE(state->ftl->passStats.emptyLoopsRemoved, 1u);
}

TEST_F(PassTest, DeadAccumulatorLoopSurvivesInBase)
{
    // SMP liveness pins the accumulator in Base compilation.
    const FunctionState *state =
        trainAndGet(Architecture::Base, kDeadLoop, "spin");
    ASSERT_NE(state->ftl, nullptr);
    EXPECT_EQ(state->ftl->passStats.emptyLoopsRemoved, 0u);
    EXPECT_GT(countOps(state->ftl->ir, IrOp::AddInt), 0u);
}

TEST_F(PassTest, AnalysisFindsLoopsAndDominators)
{
    const FunctionState *state =
        trainAndGet(Architecture::Base, kSumLoop, "sumInto");
    ASSERT_NE(state->ftl, nullptr);
    const IrFunction &ir = state->ftl->ir;
    std::vector<uint32_t> idom = computeIdoms(ir);
    std::vector<NaturalLoop> loops = findLoops(ir, idom);
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_FALSE(loops[0].blocks.empty());
    EXPECT_EQ(loops[0].exitingBlocks.size(), 1u);
    // Entry dominates everything reachable.
    for (uint32_t b = 0; b < ir.blocks.size(); ++b) {
        if (idom[b] != UINT32_MAX) {
            EXPECT_TRUE(dominates(idom, 0, b));
        }
    }
}

} // namespace
} // namespace nomap
