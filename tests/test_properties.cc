#include <map>
#include <set>

#include <gtest/gtest.h>

#include "htm/transaction.h"
#include "memsim/cache.h"
#include "memsim/footprint.h"
#include "support/random.h"
#include "vm/heap.h"

namespace nomap {
namespace {

/**
 * Property-based sweeps: hardware models are replayed against slow
 * reference implementations under randomized operation streams, and
 * the heap undo log is checked to restore arbitrary mutation
 * sequences exactly.
 */

// ---- Cache vs. reference LRU model ------------------------------------

struct CacheParams {
    uint32_t sizeBytes;
    uint32_t ways;
    uint64_t seed;
};

class CacheProperty : public ::testing::TestWithParam<CacheParams>
{
};

/** Slow, obviously-correct set-associative LRU reference. */
class ReferenceCache
{
  public:
    ReferenceCache(uint32_t size_bytes, uint32_t ways)
        : ways(ways), numSets(size_bytes / (kLineSize * ways)),
          sets(numSets)
    {
    }

    bool
    access(Addr addr)
    {
        uint64_t line = addr / kLineSize;
        auto &set = sets[line & (numSets - 1)];
        ++clock;
        auto it = set.find(line);
        if (it != set.end()) {
            it->second = clock;
            return true;
        }
        if (set.size() >= ways) {
            auto victim = set.begin();
            for (auto jt = set.begin(); jt != set.end(); ++jt) {
                if (jt->second < victim->second)
                    victim = jt;
            }
            set.erase(victim);
        }
        set[line] = clock;
        return false;
    }

  private:
    uint32_t ways;
    uint32_t numSets;
    std::vector<std::map<uint64_t, uint64_t>> sets;
    uint64_t clock = 0;
};

TEST_P(CacheProperty, MatchesReferenceLru)
{
    const CacheParams &p = GetParam();
    Cache cache(p.sizeBytes, p.ways);
    ReferenceCache ref(p.sizeBytes, p.ways);
    Xorshift64Star rng(p.seed);

    // Mixture of hot lines and cold sweeps.
    for (int i = 0; i < 20000; ++i) {
        Addr addr;
        if (rng.nextBounded(4) == 0)
            addr = rng.nextBounded(64) * kLineSize; // Hot region.
        else
            addr = rng.nextBounded(1 << 16) * kLineSize;
        bool expect_hit = ref.access(addr);
        CacheResult got = cache.access(addr, rng.nextBounded(2) == 0);
        EXPECT_EQ(expect_hit, got == CacheResult::Hit)
            << "op " << i << " addr " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Values(CacheParams{1024, 1, 11},
                      CacheParams{2048, 2, 12},
                      CacheParams{4096, 4, 13},
                      CacheParams{32 * 1024, 8, 14},
                      CacheParams{256 * 1024, 8, 15},
                      CacheParams{4096, 16, 16}));

// ---- Footprint tracker vs. reference set -------------------------------

class FootprintProperty : public ::testing::TestWithParam<CacheParams>
{
};

TEST_P(FootprintProperty, MatchesReferenceSets)
{
    const CacheParams &p = GetParam();
    FootprintTracker tracker(p.sizeBytes, p.ways);
    uint32_t num_sets = p.sizeBytes / (kLineSize * p.ways);
    std::vector<std::set<uint64_t>> ref(num_sets);
    Xorshift64Star rng(p.seed);

    std::set<uint64_t> all;
    bool overflowed = false;
    for (int i = 0; i < 5000 && !overflowed; ++i) {
        Addr addr = rng.nextBounded(1 << 14) * kLineSize;
        uint64_t line = addr / kLineSize;
        auto &set = ref[line & (num_sets - 1)];
        bool fits = set.count(line) || set.size() < p.ways;
        bool got = tracker.insert(addr);
        ASSERT_EQ(fits, got) << "op " << i;
        if (!fits) {
            overflowed = true;
            break;
        }
        set.insert(line);
        all.insert(line);
        ASSERT_EQ(tracker.lineCount(), all.size());
        ASSERT_TRUE(tracker.contains(addr));
    }
    // Max ways consistency.
    size_t max_ways = 0;
    for (const auto &set : ref)
        max_ways = std::max(max_ways, set.size());
    EXPECT_EQ(tracker.maxWaysUsed(), max_ways);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FootprintProperty,
    ::testing::Values(CacheParams{1024, 2, 21},
                      CacheParams{8192, 4, 22},
                      CacheParams{32 * 1024, 8, 23},
                      CacheParams{256 * 1024, 8, 24}));

// ---- Heap undo log under random mutation streams ------------------------

class UndoProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(UndoProperty, RollbackRestoresExactState)
{
    ShapeTable shapes;
    StringTable strings;
    Heap heap(shapes, strings);
    TransactionManager tm(HtmMode::Rot);
    tm.setRollbackClient(&heap);
    heap.setTransactionManager(&tm);
    Xorshift64Star rng(GetParam());

    // Build initial state.
    std::vector<uint32_t> objs, arrs;
    std::vector<uint32_t> names;
    for (int i = 0; i < 4; ++i) {
        names.push_back(
            strings.intern("p" + std::to_string(i)));
    }
    for (int i = 0; i < 4; ++i) {
        objs.push_back(heap.allocObject().payload());
        arrs.push_back(heap.allocArray(
                               8 + static_cast<uint32_t>(
                                       rng.nextBounded(24)))
                           .payload());
    }
    std::vector<uint32_t> globals;
    for (int i = 0; i < 4; ++i) {
        globals.push_back(
            heap.globalIndex("g" + std::to_string(i)));
    }
    // Pre-transaction mutations (must survive rollback).
    for (int i = 0; i < 40; ++i) {
        heap.setProperty(objs[rng.nextBounded(4)],
                         names[rng.nextBounded(4)],
                         Value::int32(static_cast<int>(i)));
        heap.setElement(arrs[rng.nextBounded(4)],
                        static_cast<int64_t>(rng.nextBounded(16)),
                        Value::int32(static_cast<int>(i * 3)));
        heap.setGlobal(globals[rng.nextBounded(4)],
                       Value::int32(static_cast<int>(i * 7)));
    }

    // Snapshot the observable state.
    auto observe = [&] {
        std::string out;
        for (uint32_t obj : objs) {
            for (uint32_t name : names) {
                out += heap.valueToDisplayString(
                           heap.getProperty(obj, name)) +
                       ";";
            }
        }
        for (uint32_t arr : arrs) {
            out += std::to_string(heap.array(arr).length()) + ":";
            for (uint32_t i = 0; i < heap.array(arr).length(); ++i) {
                out += heap.valueToDisplayString(
                           heap.getElement(arr, i)) +
                       ",";
            }
        }
        for (uint32_t g : globals)
            out += heap.valueToDisplayString(heap.getGlobal(g)) + "|";
        return out;
    };
    std::string before = observe();

    // Transaction with a random mutation storm, then abort.
    tm.begin();
    for (int i = 0; i < 300; ++i) {
        switch (rng.nextBounded(6)) {
          case 0:
            heap.setProperty(objs[rng.nextBounded(4)],
                             names[rng.nextBounded(4)],
                             Value::boxDouble(rng.nextDouble()));
            break;
          case 1:
            heap.setElement(arrs[rng.nextBounded(4)],
                            static_cast<int64_t>(rng.nextBounded(64)),
                            Value::int32(static_cast<int>(
                                rng.nextBounded(1000))));
            break;
          case 2:
            heap.setGlobal(globals[rng.nextBounded(4)],
                           Value::boolean(rng.nextBounded(2) != 0));
            break;
          case 3:
            heap.arrayPush(arrs[rng.nextBounded(4)],
                           Value::int32(9));
            break;
          case 4:
            heap.arrayPop(arrs[rng.nextBounded(4)]);
            break;
          case 5: {
            // Fresh property name: shape transition.
            uint32_t fresh = strings.intern(
                "q" + std::to_string(rng.nextBounded(1000)));
            heap.setProperty(objs[rng.nextBounded(4)], fresh,
                             Value::int32(1));
            break;
          }
        }
    }
    std::string during = observe();
    EXPECT_NE(during, before); // The storm really changed things.
    tm.abort(AbortCode::ExplicitCheck);
    EXPECT_EQ(observe(), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UndoProperty,
                         ::testing::Range<uint64_t>(100, 116));

// ---- SOF semantics across modes -------------------------------------------

TEST(SofProperty, LatchedOverflowAlwaysAbortsAtOutermostEnd)
{
    for (uint64_t seed = 0; seed < 8; ++seed) {
        TransactionManager tm(HtmMode::Rot);
        Xorshift64Star rng(seed);
        tm.begin();
        uint32_t depth = 1;
        bool latched = false;
        for (int i = 0; i < 50; ++i) {
            switch (rng.nextBounded(3)) {
              case 0:
                tm.begin();
                ++depth;
                break;
              case 1:
                if (depth > 1) {
                    EXPECT_TRUE(tm.end().committed);
                    --depth;
                }
                break;
              case 2:
                if (rng.nextBounded(4) == 0) {
                    tm.noteArithmeticOverflow();
                    latched = true;
                }
                break;
            }
        }
        while (depth > 1) {
            EXPECT_TRUE(tm.end().committed);
            --depth;
        }
        CommitResult final_commit = tm.end();
        EXPECT_EQ(final_commit.committed, !latched) << seed;
        if (latched) {
            EXPECT_EQ(final_commit.abortCode,
                      AbortCode::StickyOverflow);
        }
    }
}

} // namespace
} // namespace nomap
