/**
 * @file
 * Differential test for bytecode quickening and superinstruction
 * fusion: for every suite program and every architecture, an Engine
 * run with quickening enabled (the default) must be bit-identical —
 * result value, print output, every ExecutionStats counter, and the
 * full trace-event stream including virtual-cycle timestamps — to the
 * generic reference path (EngineConfig::quickening = false). The
 * in-place rewrites are a pure host-speed optimization; nothing
 * guest-visible may move.
 *
 * The equivalence must also hold under armed deterministic fault
 * plans: quickening changes neither which injection sites execute nor
 * their order, so occurrence-counted faults fire at the same points
 * and recover identically on both paths.
 */

#include <gtest/gtest.h>

#include "bytecode/compiler.h"
#include "bytecode/opcode.h"
#include "engine/engine.h"
#include "inject/fault_plan.h"
#include "suites/suite.h"
#include "trace/trace.h"

namespace nomap {
namespace {

struct Outcome {
    std::string result;
    std::string printed;
    ExecutionStats stats;
    std::vector<TraceEvent> events;
};

Outcome
runOutcome(const std::string &source, Architecture arch, bool quicken,
           uint32_t trace_capacity, const FaultPlan *plan)
{
    EngineConfig config;
    config.arch = arch;
    config.quickening = quicken;
    config.traceCapacity = trace_capacity;
    Engine engine(config);
    if (plan)
        engine.armFaultPlan(plan);
    EngineResult r = engine.run(source);
    Outcome out;
    out.result = r.resultString;
    out.printed = r.printed;
    out.stats = r.stats;
    if (engine.trace())
        out.events = engine.trace()->events();
    return out;
}

void
expectSameStats(const ExecutionStats &quickened,
                const ExecutionStats &generic)
{
    for (size_t b = 0;
         b < static_cast<size_t>(InstrBucket::NumBuckets); ++b) {
        EXPECT_EQ(quickened.instr[b], generic.instr[b])
            << "instr bucket " << b;
    }
    for (size_t k = 0; k < static_cast<size_t>(CheckKind::NumKinds);
         ++k) {
        EXPECT_EQ(quickened.checks[k], generic.checks[k])
            << "check kind " << checkKindName(static_cast<CheckKind>(k));
    }
    // Exact equality on the doubles (see test_accounting_diff):
    // quickened dispatch must charge the very same integer units in
    // the very same order.
    EXPECT_EQ(quickened.cyclesTm, generic.cyclesTm);
    EXPECT_EQ(quickened.cyclesNonTm, generic.cyclesNonTm);
    EXPECT_EQ(quickened.ftlFunctionCalls, generic.ftlFunctionCalls);
    EXPECT_EQ(quickened.deopts, generic.deopts);
    EXPECT_EQ(quickened.baselineCompiles, generic.baselineCompiles);
    EXPECT_EQ(quickened.dfgCompiles, generic.dfgCompiles);
    EXPECT_EQ(quickened.ftlCompiles, generic.ftlCompiles);
    EXPECT_EQ(quickened.ftlRecompiles, generic.ftlRecompiles);
    EXPECT_EQ(quickened.txCommits, generic.txCommits);
    EXPECT_EQ(quickened.txAborts, generic.txAborts);
    EXPECT_EQ(quickened.txAbortsCapacity, generic.txAbortsCapacity);
    EXPECT_EQ(quickened.txAbortsCheck, generic.txAbortsCheck);
    EXPECT_EQ(quickened.txAbortsSof, generic.txAbortsSof);
    EXPECT_EQ(quickened.avgWriteFootprintBytes,
              generic.avgWriteFootprintBytes);
    EXPECT_EQ(quickened.maxWriteFootprintBytes,
              generic.maxWriteFootprintBytes);
    EXPECT_EQ(quickened.maxWriteWaysUsed, generic.maxWriteWaysUsed);
}

void
expectSameOutcome(const Outcome &quickened, const Outcome &generic)
{
    EXPECT_EQ(quickened.result, generic.result);
    EXPECT_EQ(quickened.printed, generic.printed);
    expectSameStats(quickened.stats, generic.stats);
    // Element-wise trace equality, virtual-cycle timestamps included:
    // quickening must not shift when any event is emitted.
    ASSERT_EQ(quickened.events.size(), generic.events.size());
    for (size_t i = 0; i < quickened.events.size(); ++i) {
        EXPECT_TRUE(quickened.events[i] == generic.events[i])
            << "trace event " << i << " differs";
    }
}

void
compareSuite(const std::vector<BenchmarkSpec> &suite, Architecture arch,
             uint32_t trace_capacity = 0,
             const FaultPlan *plan = nullptr)
{
    for (const BenchmarkSpec &spec : suite) {
        SCOPED_TRACE(spec.id + " on " + architectureName(arch));
        expectSameOutcome(
            runOutcome(spec.source, arch, true, trace_capacity, plan),
            runOutcome(spec.source, arch, false, trace_capacity, plan));
    }
}

/** First @p keep entries (keeps the fault/trace sweeps affordable). */
std::vector<BenchmarkSpec>
prefix(const std::vector<BenchmarkSpec> &suite, size_t keep)
{
    if (suite.size() <= keep)
        return suite;
    return std::vector<BenchmarkSpec>(
        suite.begin(), suite.begin() + static_cast<long>(keep));
}

class Quicken : public ::testing::TestWithParam<Architecture>
{
};

TEST_P(Quicken, SunSpiderMatchesGenericPath)
{
    compareSuite(sunspiderSuite(), GetParam());
}

TEST_P(Quicken, KrakenMatchesGenericPath)
{
    compareSuite(krakenSuite(), GetParam());
}

TEST_P(Quicken, FaultPlansMatchGenericPath)
{
    const char *plans[] = {"htm.abort@2", "check.bounds@5",
                           "check.any@3", "engine.watchdog@400"};
    for (const char *text : plans) {
        SCOPED_TRACE(text);
        FaultPlan plan = FaultPlan::parse(text);
        compareSuite(prefix(sunspiderSuite(), 2), GetParam(), 0,
                     &plan);
        compareSuite(prefix(krakenSuite(), 2), GetParam(), 0, &plan);
    }
}

TEST_P(Quicken, TracingMatchesGenericPath)
{
    // Trace ring large enough that no event is evicted, so the
    // streams compare element-for-element with timestamps.
    const uint32_t capacity = 1u << 16;
    compareSuite(prefix(sunspiderSuite(), 2), GetParam(), capacity);
    compareSuite(prefix(krakenSuite(), 2), GetParam(), capacity);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, Quicken,
    ::testing::Values(Architecture::Base, Architecture::NoMapS,
                      Architecture::NoMapB, Architecture::NoMap,
                      Architecture::NoMapBC, Architecture::NoMapRTM),
    [](const ::testing::TestParamInfo<Architecture> &info) {
        return std::string(architectureName(info.param));
    });

// The differential above is only meaningful if quickening actually
// rewrites something: after a run that tiers functions up, the warm
// functions must contain quickened opcodes.
TEST(QuickenStructure, HotProgramContainsQuickenedOps)
{
    EngineConfig config;
    config.arch = Architecture::NoMap;
    Engine engine(config);
    engine.run(sunspiderSuite()[0].source);
    const CompiledProgram *prog = engine.program();
    ASSERT_NE(prog, nullptr);
    bool any_quickened_fn = false;
    bool any_quickened_op = false;
    for (const auto &fn : prog->functions) {
        any_quickened_fn = any_quickened_fn || fn->quickened;
        for (const BytecodeInstr &instr : fn->code)
            any_quickened_op = any_quickened_op || isQuickened(instr.op);
    }
    EXPECT_TRUE(any_quickened_fn);
    EXPECT_TRUE(any_quickened_op);
}

// And the reference mode must stay pristine: with quickening off, no
// rewrite may ever happen, or the differential compares quickened
// against quickened.
TEST(QuickenStructure, ReferenceModeNeverRewrites)
{
    EngineConfig config;
    config.arch = Architecture::NoMap;
    config.quickening = false;
    Engine engine(config);
    engine.run(sunspiderSuite()[0].source);
    const CompiledProgram *prog = engine.program();
    ASSERT_NE(prog, nullptr);
    for (const auto &fn : prog->functions) {
        EXPECT_FALSE(fn->quickened) << fn->name;
        for (const BytecodeInstr &instr : fn->code)
            EXPECT_FALSE(isQuickened(instr.op)) << fn->name;
    }
}

} // namespace
} // namespace nomap
