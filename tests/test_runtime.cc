#include <cmath>

#include <gtest/gtest.h>

#include "vm/builtins.h"
#include "vm/runtime.h"

namespace nomap {
namespace {

class RuntimeTest : public ::testing::Test
{
  protected:
    RuntimeTest() : heap(shapes, strings), rt(heap), builtins(rt) {}

    Value str(const std::string &s)
    {
        return Value::string(strings.intern(s));
    }

    ShapeTable shapes;
    StringTable strings;
    Heap heap;
    Runtime rt;
    Builtins builtins;
};

TEST_F(RuntimeTest, ToNumberConversions)
{
    EXPECT_DOUBLE_EQ(rt.toNumber(Value::int32(7)), 7.0);
    EXPECT_DOUBLE_EQ(rt.toNumber(Value::boolean(true)), 1.0);
    EXPECT_DOUBLE_EQ(rt.toNumber(Value::null()), 0.0);
    EXPECT_TRUE(std::isnan(rt.toNumber(Value::undefined())));
    EXPECT_DOUBLE_EQ(rt.toNumber(str("3.5")), 3.5);
    EXPECT_DOUBLE_EQ(rt.toNumber(str("")), 0.0);
    EXPECT_TRUE(std::isnan(rt.toNumber(str("3x"))));
}

TEST_F(RuntimeTest, ToBooleanTruthiness)
{
    EXPECT_FALSE(rt.toBoolean(Value::int32(0)));
    EXPECT_TRUE(rt.toBoolean(Value::int32(-1)));
    EXPECT_FALSE(rt.toBoolean(Value::boxDouble(std::nan(""))));
    EXPECT_FALSE(rt.toBoolean(Value::undefined()));
    EXPECT_FALSE(rt.toBoolean(Value::null()));
    EXPECT_FALSE(rt.toBoolean(str("")));
    EXPECT_TRUE(rt.toBoolean(str("x")));
    EXPECT_TRUE(rt.toBoolean(heap.allocObject()));
}

TEST_F(RuntimeTest, ToInt32Modular)
{
    EXPECT_EQ(rt.toInt32(Value::boxDouble(4294967296.0 + 5)), 5);
    EXPECT_EQ(rt.toInt32(Value::boxDouble(-1.0)), -1);
    EXPECT_EQ(rt.toInt32(Value::boxDouble(2147483648.0)), INT32_MIN);
    EXPECT_EQ(rt.toInt32(Value::boxDouble(std::nan(""))), 0);
    EXPECT_EQ(rt.toInt32(Value::boxDouble(INFINITY)), 0);
    EXPECT_EQ(rt.toInt32(Value::boxDouble(3.7)), 3);
}

TEST_F(RuntimeTest, GenericAddSemantics)
{
    EXPECT_EQ(rt.genericAdd(Value::int32(2), Value::int32(3)),
              Value::int32(5));
    EXPECT_EQ(rt.genericAdd(str("a"), str("b")), str("ab"));
    EXPECT_EQ(rt.genericAdd(str("n="), Value::int32(4)), str("n=4"));
    // undefined + number -> NaN.
    Value v = rt.genericAdd(Value::undefined(), Value::int32(1));
    EXPECT_TRUE(std::isnan(v.asNumber()));
}

TEST_F(RuntimeTest, ArithKeepsIntWhenExact)
{
    Value v = rt.genericMul(Value::int32(6), Value::int32(7));
    EXPECT_TRUE(v.isInt32());
    EXPECT_EQ(v.asInt32(), 42);
    Value d = rt.genericDiv(Value::int32(1), Value::int32(2));
    EXPECT_TRUE(d.isBoxedDouble());
    EXPECT_DOUBLE_EQ(d.asBoxedDouble(), 0.5);
}

TEST_F(RuntimeTest, BitwiseOps)
{
    EXPECT_EQ(rt.genericBitAnd(Value::int32(6), Value::int32(3)),
              Value::int32(2));
    EXPECT_EQ(rt.genericShl(Value::int32(1), Value::int32(4)),
              Value::int32(16));
    EXPECT_EQ(rt.genericShr(Value::int32(-8), Value::int32(1)),
              Value::int32(-4));
    // >>> produces a non-negative number.
    Value u = rt.genericUShr(Value::int32(-1), Value::int32(0));
    EXPECT_DOUBLE_EQ(u.asNumber(), 4294967295.0);
}

TEST_F(RuntimeTest, Comparisons)
{
    EXPECT_TRUE(rt.genericLt(Value::int32(1), Value::int32(2))
                    .asBoolean());
    EXPECT_TRUE(rt.genericLt(str("abc"), str("abd")).asBoolean());
    EXPECT_FALSE(
        rt.genericLt(Value::undefined(), Value::int32(1)).asBoolean());
}

TEST_F(RuntimeTest, Equality)
{
    EXPECT_TRUE(rt.strictEquals(Value::int32(1), Value::boxDouble(1.0)));
    EXPECT_FALSE(rt.strictEquals(Value::int32(1), str("1")));
    EXPECT_TRUE(rt.looseEquals(Value::int32(1), str("1")));
    EXPECT_TRUE(rt.looseEquals(Value::null(), Value::undefined()));
    EXPECT_FALSE(rt.strictEquals(Value::null(), Value::undefined()));
    Value o = heap.allocObject();
    EXPECT_TRUE(rt.strictEquals(o, o));
    EXPECT_FALSE(rt.strictEquals(o, heap.allocObject()));
}

TEST_F(RuntimeTest, TypeofResults)
{
    EXPECT_EQ(rt.typeofValue(Value::int32(1)), str("number"));
    EXPECT_EQ(rt.typeofValue(str("x")), str("string"));
    EXPECT_EQ(rt.typeofValue(Value::undefined()), str("undefined"));
    EXPECT_EQ(rt.typeofValue(Value::null()), str("object"));
    EXPECT_EQ(rt.typeofValue(heap.allocArray(0)), str("object"));
}

TEST_F(RuntimeTest, GenericIndexAccess)
{
    Value arr = heap.allocArray(3);
    heap.setElement(arr.payload(), 0, Value::int32(9));
    EXPECT_EQ(rt.getIndexGeneric(arr, Value::int32(0)), Value::int32(9));
    EXPECT_TRUE(rt.getIndexGeneric(arr, Value::int32(7)).isUndefined());
    EXPECT_TRUE(
        rt.getIndexGeneric(arr, Value::boxDouble(0.5)).isUndefined());

    // String indexing yields one-character strings.
    EXPECT_EQ(rt.getIndexGeneric(str("hey"), Value::int32(1)), str("e"));

    // Object indexing falls back to property access.
    Value o = heap.allocObject();
    rt.setIndexGeneric(o, str("k"), Value::int32(3));
    EXPECT_EQ(rt.getIndexGeneric(o, str("k")), Value::int32(3));
}

TEST_F(RuntimeTest, GenericPropertyAccess)
{
    Value arr = heap.allocArray(5);
    uint32_t len = strings.intern("length");
    EXPECT_EQ(rt.getPropertyGeneric(arr, len), Value::int32(5));
    EXPECT_EQ(rt.getPropertyGeneric(str("hello"), len), Value::int32(5));
    // Property store on a number is silently ignored.
    rt.setPropertyGeneric(Value::int32(1), len, Value::int32(9));
}

TEST_F(RuntimeTest, MathBuiltins)
{
    Value args2[2] = {Value::int32(2), Value::int32(10)};
    EXPECT_EQ(builtins.call(BuiltinId::MathPow, args2, 2),
              Value::int32(1024));
    Value neg[1] = {Value::boxDouble(-2.5)};
    EXPECT_DOUBLE_EQ(
        builtins.call(BuiltinId::MathAbs, neg, 1).asNumber(), 2.5);
    EXPECT_DOUBLE_EQ(
        builtins.call(BuiltinId::MathFloor, neg, 1).asNumber(), -3.0);
    Value four[1] = {Value::int32(4)};
    EXPECT_DOUBLE_EQ(
        builtins.call(BuiltinId::MathSqrt, four, 1).asNumber(), 2.0);
    Value minmax[3] = {Value::int32(3), Value::int32(1), Value::int32(2)};
    EXPECT_EQ(builtins.call(BuiltinId::MathMin, minmax, 3),
              Value::int32(1));
    EXPECT_EQ(builtins.call(BuiltinId::MathMax, minmax, 3),
              Value::int32(3));
}

TEST_F(RuntimeTest, MathRandomDeterministic)
{
    Builtins b1(rt, 42), b2(rt, 42);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(b1.call(BuiltinId::MathRandom, nullptr, 0),
                  b2.call(BuiltinId::MathRandom, nullptr, 0));
    }
}

TEST_F(RuntimeTest, StringMethods)
{
    Value s = str("hello");
    Value i1[1] = {Value::int32(1)};
    EXPECT_EQ(builtins.callMethod(s, strings.intern("charCodeAt"), i1, 1),
              Value::int32('e'));
    EXPECT_EQ(builtins.callMethod(s, strings.intern("charAt"), i1, 1),
              str("e"));
    Value sub[2] = {Value::int32(1), Value::int32(3)};
    EXPECT_EQ(builtins.callMethod(s, strings.intern("substring"), sub, 2),
              str("el"));
    Value needle[1] = {str("llo")};
    EXPECT_EQ(builtins.callMethod(s, strings.intern("indexOf"), needle, 1),
              Value::int32(2));
}

TEST_F(RuntimeTest, ArrayMethods)
{
    Value arr = heap.allocArray(0);
    Value one[1] = {Value::int32(1)};
    Value two[1] = {Value::int32(2)};
    builtins.callMethod(arr, strings.intern("push"), one, 1);
    builtins.callMethod(arr, strings.intern("push"), two, 1);
    EXPECT_EQ(heap.array(arr.payload()).length(), 2u);
    EXPECT_EQ(builtins.callMethod(arr, strings.intern("pop"), nullptr, 0),
              Value::int32(2));
    Value sep[1] = {str("-")};
    builtins.callMethod(arr, strings.intern("push"), two, 1);
    EXPECT_EQ(builtins.callMethod(arr, strings.intern("join"), sep, 1),
              str("1-2"));
}

TEST_F(RuntimeTest, StringFromCharCodeAndSplit)
{
    Value codes[3] = {Value::int32('a'), Value::int32('b'),
                      Value::int32('c')};
    EXPECT_EQ(builtins.call(BuiltinId::StringFromCharCode, codes, 3),
              str("abc"));
    Value sep[1] = {str(",")};
    Value parts = builtins.callMethod(str("a,b,c"),
                                      strings.intern("split"), sep, 1);
    ASSERT_TRUE(parts.isArray());
    EXPECT_EQ(heap.array(parts.payload()).length(), 3u);
    EXPECT_EQ(heap.getElement(parts.payload(), 1), str("b"));
}

TEST_F(RuntimeTest, PrintAccumulates)
{
    Value args[2] = {str("x"), Value::int32(3)};
    builtins.call(BuiltinId::Print, args, 2);
    EXPECT_EQ(builtins.printedOutput(), "x 3\n");
}

TEST_F(RuntimeTest, ParseIntFloat)
{
    Value s1[1] = {str("42")};
    EXPECT_EQ(builtins.call(BuiltinId::ParseInt, s1, 1), Value::int32(42));
    Value s2[2] = {str("ff"), Value::int32(16)};
    EXPECT_EQ(builtins.call(BuiltinId::ParseInt, s2, 2),
              Value::int32(255));
    Value s3[1] = {str("2.5x")};
    EXPECT_DOUBLE_EQ(
        builtins.call(BuiltinId::ParseFloat, s3, 1).asNumber(), 2.5);
}

TEST_F(RuntimeTest, BuiltinResolution)
{
    BuiltinId id;
    EXPECT_TRUE(resolveBuiltin("Math", "sqrt", &id));
    EXPECT_EQ(id, BuiltinId::MathSqrt);
    EXPECT_TRUE(resolveBuiltin("String", "fromCharCode", &id));
    EXPECT_FALSE(resolveBuiltin("Math", "nope", &id));
    EXPECT_FALSE(resolveBuiltin("Other", "sqrt", &id));
    EXPECT_TRUE(resolveGlobalBuiltin("print", &id));
    EXPECT_FALSE(resolveGlobalBuiltin("frobnicate", &id));
}

} // namespace
} // namespace nomap
