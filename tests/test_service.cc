#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "service/engine_pool.h"
#include "service/mpmc_queue.h"
#include "support/logging.h"

namespace nomap {
namespace {

const Architecture kAllArchs[] = {
    Architecture::Base,   Architecture::NoMapS, Architecture::NoMapB,
    Architecture::NoMap,  Architecture::NoMapBC,
    Architecture::NoMapRTM,
};

EngineConfig
configFor(Architecture arch)
{
    EngineConfig config;
    config.arch = arch;
    return config;
}

// Three small workloads that all reach the FTL tier (and, on NoMap
// architectures, place transactions): an object/array reduction, an
// overflow-heavy arithmetic kernel, and a bounds-heavy array kernel.
const char *kScripts[] = {
    R"JS(
function makeObj(n) {
    var obj = {values: [], sum: 0};
    for (var i = 0; i < n; i++) obj.values[i] = i % 7;
    return obj;
}
function sumInto(obj) {
    var len = obj.values.length;
    for (var idx = 0; idx < len; idx++) {
        obj.sum += obj.values[idx];
    }
    return obj.sum;
}
var o = makeObj(150);
var total = 0;
for (var r = 0; r < 110; r++) {
    o.sum = 0;
    total = sumInto(o);
}
result = total;
)JS",
    R"JS(
function mix(seed, rounds) {
    var h = seed;
    for (var i = 0; i < rounds; i++) {
        h = (h * 31 + i) % 65521;
        h = h + (h % 13);
    }
    return h;
}
var acc = 0;
for (var r = 0; r < 130; r++) {
    acc = (acc + mix(r, 90)) % 1000000;
}
result = acc;
)JS",
    R"JS(
function fill(a, n) {
    for (var i = 0; i < n; i++) a[i] = (i * i) % 97;
    return a;
}
function scan(a, n) {
    var best = 0;
    for (var i = 0; i < n; i++) {
        if (a[i] > best) best = a[i];
    }
    return best;
}
var arr = [];
fill(arr, 120);
var peak = 0;
for (var r = 0; r < 120; r++) {
    peak = scan(arr, 120);
}
result = peak;
)JS",
};
constexpr size_t kNumScripts = sizeof(kScripts) / sizeof(kScripts[0]);

/** Counters that must be bit-identical between pooled and sequential
 *  execution (the differential contract of the serving layer). */
void
expectStatsEqual(const ExecutionStats &a, const ExecutionStats &b,
                 const std::string &context)
{
    for (size_t i = 0;
         i < static_cast<size_t>(InstrBucket::NumBuckets); ++i) {
        EXPECT_EQ(a.instr[i], b.instr[i]) << context << " instr[" << i
                                          << "]";
    }
    for (size_t i = 0; i < static_cast<size_t>(CheckKind::NumKinds);
         ++i) {
        EXPECT_EQ(a.checks[i], b.checks[i])
            << context << " checks[" << i << "]";
    }
    EXPECT_EQ(a.deopts, b.deopts) << context;
    EXPECT_EQ(a.ftlFunctionCalls, b.ftlFunctionCalls) << context;
    EXPECT_EQ(a.ftlCompiles, b.ftlCompiles) << context;
    EXPECT_EQ(a.ftlRecompiles, b.ftlRecompiles) << context;
    EXPECT_EQ(a.txCommits, b.txCommits) << context;
    EXPECT_EQ(a.txAborts, b.txAborts) << context;
    EXPECT_EQ(a.txAbortsCapacity, b.txAbortsCapacity) << context;
    EXPECT_EQ(a.txAbortsCheck, b.txAbortsCheck) << context;
    EXPECT_EQ(a.txAbortsSof, b.txAbortsSof) << context;
    EXPECT_DOUBLE_EQ(a.totalCycles(), b.totalCycles()) << context;
}

// ---- Differential concurrency test -------------------------------------

TEST(Service, ConcurrentExecutionMatchesSequential)
{
    // Sequential reference: every (arch, script) on a fresh Engine.
    struct Expected {
        std::string resultString;
        ExecutionStats stats;
    };
    std::vector<Expected> expected;
    for (Architecture arch : kAllArchs) {
        for (const char *src : kScripts) {
            Engine engine(configFor(arch));
            EngineResult r = engine.run(src);
            expected.push_back({r.resultString, r.stats});
        }
    }

    ServiceConfig sc;
    sc.workers = 4;
    sc.queueCapacity = 128;
    ExecutionService service(sc);

    // Two pooled repeats of every pair, interleaved across workers:
    // the second round exercises isolate reuse and program-cache hits.
    constexpr int kRounds = 2;
    std::vector<std::future<Response>> futures;
    for (int round = 0; round < kRounds; ++round) {
        for (Architecture arch : kAllArchs) {
            for (const char *src : kScripts) {
                Request req;
                req.source = src;
                req.config = configFor(arch);
                futures.push_back(service.submit(std::move(req)));
            }
        }
    }

    size_t idx = 0;
    for (int round = 0; round < kRounds; ++round) {
        for (size_t a = 0; a < 6; ++a) {
            for (size_t s = 0; s < kNumScripts; ++s) {
                Response resp = futures[idx++].get();
                const Expected &want = expected[a * kNumScripts + s];
                std::string context = strprintf(
                    "round %d arch %s script %zu", round,
                    architectureName(kAllArchs[a]), s);
                ASSERT_TRUE(resp.ok())
                    << context << ": " << resp.error;
                EXPECT_EQ(resp.resultString, want.resultString)
                    << context;
                expectStatsEqual(resp.stats, want.stats, context);
            }
        }
    }

    ServiceMetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.completed, futures.size());
    EXPECT_EQ(snap.succeeded, futures.size());
    EXPECT_GT(snap.cacheHits, 0u);
    EXPECT_GT(snap.enginesReused, 0u);
    EXPECT_GT(snap.throughputRps, 0.0);
}

// ---- Program cache ------------------------------------------------------

TEST(Service, ProgramCacheSkipsRecompilation)
{
    ServiceConfig sc;
    sc.workers = 2;
    ExecutionService service(sc);

    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 8; ++i) {
        Request req;
        req.source = kScripts[0];
        futures.push_back(service.submit(std::move(req)));
    }
    int hits = 0;
    std::string first;
    for (auto &f : futures) {
        Response r = f.get();
        ASSERT_TRUE(r.ok()) << r.error;
        if (first.empty())
            first = r.resultString;
        EXPECT_EQ(r.resultString, first);
        hits += r.programCacheHit ? 1 : 0;
    }
    EXPECT_GE(hits, 6); // at most one cold compile per worker
    ServiceMetricsSnapshot snap = service.metrics();
    EXPECT_GE(snap.cacheHits, static_cast<uint64_t>(hits));
    EXPECT_EQ(snap.cacheEntries, 1u);
}

TEST(ProgramCache, InstantiationIsBitIdenticalToCompile)
{
    CompiledProgramCache cache;

    Engine uncached((EngineConfig()));
    EngineResult want = uncached.run(kScripts[1]);

    Engine cold((EngineConfig()));
    cold.setProgramCache(&cache);
    EngineResult miss = cold.run(kScripts[1]);
    EXPECT_FALSE(miss.programCacheHit);

    Engine warm((EngineConfig()));
    warm.setProgramCache(&cache);
    EngineResult hit = warm.run(kScripts[1]);
    EXPECT_TRUE(hit.programCacheHit);

    EXPECT_EQ(hit.resultString, want.resultString);
    expectStatsEqual(hit.stats, want.stats, "cache hit");
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().rebindFailures, 0u);
}

// ---- Robustness paths ---------------------------------------------------

TEST(Service, TimeoutProducesTimeoutResponse)
{
    ServiceConfig sc;
    sc.workers = 1;
    ExecutionService service(sc);

    Request req;
    req.source = R"JS(
var i = 0;
while (i < 400000000) { i = i + 1; }
result = i;
)JS";
    req.timeoutMs = 30;
    Response resp = service.submit(std::move(req)).get();
    EXPECT_EQ(resp.status, ResponseStatus::Timeout);
    EXPECT_NE(resp.error.find("deadline"), std::string::npos);

    // The worker survives: a subsequent request still succeeds.
    Request ok;
    ok.source = "result = 21 * 2;";
    Response after = service.submit(std::move(ok)).get();
    ASSERT_TRUE(after.ok()) << after.error;
    EXPECT_EQ(after.resultString, "42");

    EXPECT_EQ(service.metrics().timeouts, 1u);
}

TEST(Service, FatalErrorBecomesErrorResponse)
{
    ServiceConfig sc;
    sc.workers = 1;
    ExecutionService service(sc);

    Request bad;
    bad.source = "var = ;";
    Response resp = service.submit(std::move(bad)).get();
    EXPECT_EQ(resp.status, ResponseStatus::Error);
    EXPECT_FALSE(resp.error.empty());
    EXPECT_EQ(resp.attempts, 1u); // user errors are not retried

    Request good;
    good.source = "result = 7;";
    Response after = service.submit(std::move(good)).get();
    ASSERT_TRUE(after.ok()) << after.error;
    EXPECT_EQ(after.resultString, "7");
    EXPECT_EQ(service.metrics().errors, 1u);
}

TEST(Service, TransientFailuresAreRetriedOnFreshIsolates)
{
    ServiceConfig sc;
    sc.workers = 2;
    sc.defaultMaxRetries = 2;
    std::atomic<uint64_t> injected{0};
    sc.failureInjection = [&](const Request &, uint32_t attempt) {
        if (attempt == 0) {
            injected.fetch_add(1);
            return true;
        }
        return false;
    };
    ExecutionService service(sc);

    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 6; ++i) {
        Request req;
        req.source = "result = 5 + 6;";
        futures.push_back(service.submit(std::move(req)));
    }
    for (auto &f : futures) {
        Response r = f.get();
        ASSERT_TRUE(r.ok()) << r.error;
        EXPECT_EQ(r.resultString, "11");
        EXPECT_EQ(r.attempts, 2u);
    }
    EXPECT_EQ(injected.load(), 6u);
    EXPECT_EQ(service.metrics().retries, 6u);
}

TEST(Service, ExhaustedRetriesReportError)
{
    ServiceConfig sc;
    sc.workers = 1;
    sc.defaultMaxRetries = 1;
    sc.failureInjection = [](const Request &, uint32_t) {
        return true; // every attempt fails
    };
    ExecutionService service(sc);

    Request req;
    req.source = "result = 1;";
    Response resp = service.submit(std::move(req)).get();
    EXPECT_EQ(resp.status, ResponseStatus::Error);
    EXPECT_EQ(resp.attempts, 2u);
    EXPECT_NE(resp.error.find("injected"), std::string::npos);
}

TEST(Service, QueueFullRejectsWithBackpressureResponse)
{
    // The injection hook doubles as a worker blocker: request id 77
    // parks inside the worker until released, holding the single
    // worker busy without burning CPU.
    std::atomic<bool> release{false};
    ServiceConfig sc;
    sc.workers = 1;
    sc.queueCapacity = 1;
    sc.failureInjection = [&](const Request &req, uint32_t) {
        while (req.id == 77 &&
               !release.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
        return false;
    };
    ExecutionService service(sc);

    Request slow;
    slow.id = 77;
    slow.source = "result = 1;";
    std::future<Response> slow_future =
        service.submit(std::move(slow));
    while (service.metrics().inFlight == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // Fill the single queue slot, then overflow it.
    Request queued;
    queued.source = "result = 2;";
    std::future<Response> queued_future =
        service.submit(std::move(queued));

    Request overflow;
    overflow.source = "result = 3;";
    Response rejected = service.trySubmit(std::move(overflow)).get();
    EXPECT_EQ(rejected.status, ResponseStatus::QueueFull);
    EXPECT_NE(rejected.error.find("queue full"), std::string::npos);

    release.store(true, std::memory_order_release);
    EXPECT_TRUE(slow_future.get().ok());
    Response queued_resp = queued_future.get();
    ASSERT_TRUE(queued_resp.ok()) << queued_resp.error;
    EXPECT_EQ(queued_resp.resultString, "2");
    EXPECT_EQ(service.metrics().rejected, 1u);
}

TEST(Service, ShutdownDrainsQueuedWorkAndRejectsNewWork)
{
    auto service = std::make_unique<ExecutionService>([] {
        ServiceConfig sc;
        sc.workers = 2;
        return sc;
    }());

    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 10; ++i) {
        Request req;
        req.source = "result = " + std::to_string(i) + " * 2;";
        futures.push_back(service->submit(std::move(req)));
    }
    service->shutdown();
    for (int i = 0; i < 10; ++i) {
        Response r = futures[static_cast<size_t>(i)].get();
        ASSERT_TRUE(r.ok()) << r.error;
        EXPECT_EQ(r.resultString, std::to_string(i * 2));
    }

    Request late;
    late.source = "result = 0;";
    Response refused = service->submit(std::move(late)).get();
    EXPECT_EQ(refused.status, ResponseStatus::Shutdown);
}

// ---- Engine reuse primitives -------------------------------------------

TEST(Engine, ResetStatsReportsPerRunCounters)
{
    // Accumulating engine: run twice, stats pile up.
    Engine accumulating((EngineConfig()));
    ExecutionStats first = accumulating.run(kScripts[0]).stats;
    ExecutionStats cumulative = accumulating.run(kScripts[0]).stats;
    ASSERT_GT(cumulative.totalInstructions(),
              first.totalInstructions());

    // Same engine history, but with resetStats() between runs: the
    // second run reports exactly the marginal counters.
    Engine clean((EngineConfig()));
    clean.run(kScripts[0]);
    clean.resetStats();
    ExecutionStats marginal = clean.run(kScripts[0]).stats;
    EXPECT_EQ(marginal.totalInstructions(),
              cumulative.totalInstructions() -
                  first.totalInstructions());
    EXPECT_EQ(marginal.txCommits,
              cumulative.txCommits - first.txCommits);
}

TEST(Engine, ResetRestoresPristineDeterminism)
{
    EngineConfig config = configFor(Architecture::NoMap);
    Engine reference(config);
    EngineResult want = reference.run(kScripts[0]);

    Engine reused(config);
    reused.run(kScripts[2]); // dirty the isolate with another tenant
    reused.reset();
    EXPECT_TRUE(reused.pristine());
    EngineResult got = reused.run(kScripts[0]);
    EXPECT_EQ(got.resultString, want.resultString);
    expectStatsEqual(got.stats, want.stats, "after reset");
}

// ---- Queue + logging + histogram units ---------------------------------

TEST(MpmcQueue, OrderingBackpressureAndDrain)
{
    BoundedMpmcQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    int three = 3;
    EXPECT_FALSE(q.tryPush(std::move(three))); // full
    EXPECT_EQ(q.size(), 2u);

    auto a = q.pop();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, 1);
    EXPECT_TRUE(q.push(3));

    q.close();
    EXPECT_FALSE(q.push(4)); // closed to producers
    EXPECT_EQ(*q.pop(), 2);  // but drains
    EXPECT_EQ(*q.pop(), 3);
    EXPECT_FALSE(q.pop().has_value()); // closed + empty
}

TEST(Logging, ConcurrentSinkReceivesWholeLines)
{
    std::mutex lines_mutex;
    std::vector<std::string> lines;
    setLogSink([&](LogLevel, const std::string &msg) {
        std::lock_guard<std::mutex> lock(lines_mutex);
        lines.push_back(msg);
    });
    LogLevel saved = logLevel();
    setLogLevel(LogLevel::Warning);

    constexpr int kThreads = 8;
    constexpr int kPerThread = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i)
                warn("thread %d message %d", t, i);
        });
    }
    for (auto &th : threads)
        th.join();

    setLogSink(nullptr);
    setLogLevel(saved);

    ASSERT_EQ(lines.size(),
              static_cast<size_t>(kThreads * kPerThread));
    for (const std::string &line : lines) {
        EXPECT_EQ(line.rfind("thread ", 0), 0u) << line;
        EXPECT_NE(line.find(" message "), std::string::npos) << line;
    }
}

TEST(Logging, AtomicLevelFiltersBelowThreshold)
{
    int count = 0;
    setLogSink([&](LogLevel, const std::string &) { ++count; });
    LogLevel saved = logLevel();

    setLogLevel(LogLevel::Error);
    warn("filtered out");
    logMessage(LogLevel::Info, "also filtered");
    EXPECT_EQ(count, 0);
    logMessage(LogLevel::Error, "emitted");
    EXPECT_EQ(count, 1);

    setLogLevel(LogLevel::Debug);
    logMessage(LogLevel::Debug, "now emitted");
    EXPECT_EQ(count, 2);

    setLogSink(nullptr);
    setLogLevel(saved);
}

TEST(LatencyHistogram, PercentilesTrackRecordedDistribution)
{
    LatencyHistogram h;
    for (int i = 1; i <= 1000; ++i)
        h.record(static_cast<double>(i));
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_NEAR(h.mean(), 500.5, 0.1);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    // Geometric buckets have ~25% relative error.
    EXPECT_NEAR(h.percentile(50.0), 500.0, 150.0);
    EXPECT_NEAR(h.percentile(99.0), 990.0, 260.0);
    EXPECT_LE(h.percentile(100.0), 1000.0);
}

} // namespace
} // namespace nomap
