/**
 * @file
 * Shared guest heaps (stm/shared_heap.h): region primitives, the K=1
 * isolate-parity contract, EMME-style litmus outcomes under K>=2, and
 * the injected-storm fallback path.
 *
 * The load-bearing invariants:
 *  - A K=1 session run is bit-identical to a plain isolate run of the
 *    same program — result, printed output, every stat, and the engine
 *    trace stream — on all six architectures.
 *  - Region retries are invisible: a region that aborts N times and
 *    then commits (HTM or fallback) produces exactly the output a
 *    clean first-attempt run produces.
 *  - Concurrent lanes admit only serializable outcomes (store
 *    buffering, message passing, coherence).
 */

#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "htm/region.h"
#include "stm/shared_heap.h"
#include "support/counters.h"
#include "support/logging.h"

namespace nomap {
namespace {

const Architecture kAllArchs[] = {
    Architecture::Base,   Architecture::NoMapS, Architecture::NoMapB,
    Architecture::NoMap,  Architecture::NoMapBC,
    Architecture::NoMapRTM,
};

/** Hot enough to tier to FTL and place transactions (NoMap archs). */
const char *kWorkload = R"JS(
function makeObj(n) {
    var obj = {values: [], sum: 0};
    for (var i = 0; i < n; i++) obj.values[i] = i % 7;
    return obj;
}
function sumInto(obj) {
    var len = obj.values.length;
    for (var idx = 0; idx < len; idx++) {
        obj.sum += obj.values[idx];
    }
    return obj.sum;
}
var o = makeObj(160);
var total = 0;
for (var r = 0; r < 110; r++) {
    o.sum = 0;
    total = sumInto(o);
}
print(total);
result = total + Math.floor(Math.random() * 10);
)JS";

/** Full-field stats comparison (bit-identity, not tolerance). */
void
expectStatsIdentical(const ExecutionStats &a, const ExecutionStats &b,
                     const std::string &context)
{
    for (size_t i = 0;
         i < static_cast<size_t>(InstrBucket::NumBuckets); ++i) {
        EXPECT_EQ(a.instr[i], b.instr[i])
            << context << " instr[" << i << "]";
    }
    for (size_t i = 0; i < static_cast<size_t>(CheckKind::NumKinds);
         ++i) {
        EXPECT_EQ(a.checks[i], b.checks[i])
            << context << " checks[" << i << "]";
    }
    EXPECT_EQ(a.cyclesTm, b.cyclesTm) << context;
    EXPECT_EQ(a.cyclesNonTm, b.cyclesNonTm) << context;
    EXPECT_EQ(a.ftlFunctionCalls, b.ftlFunctionCalls) << context;
    EXPECT_EQ(a.deopts, b.deopts) << context;
    EXPECT_EQ(a.baselineCompiles, b.baselineCompiles) << context;
    EXPECT_EQ(a.dfgCompiles, b.dfgCompiles) << context;
    EXPECT_EQ(a.ftlCompiles, b.ftlCompiles) << context;
    EXPECT_EQ(a.ftlRecompiles, b.ftlRecompiles) << context;
    EXPECT_EQ(a.txCommits, b.txCommits) << context;
    EXPECT_EQ(a.txAborts, b.txAborts) << context;
    EXPECT_EQ(a.txAbortsCapacity, b.txAbortsCapacity) << context;
    EXPECT_EQ(a.txAbortsCheck, b.txAbortsCheck) << context;
    EXPECT_EQ(a.txAbortsSof, b.txAbortsSof) << context;
    EXPECT_EQ(a.avgWriteFootprintBytes, b.avgWriteFootprintBytes)
        << context;
    EXPECT_EQ(a.maxWriteFootprintBytes, b.maxWriteFootprintBytes)
        << context;
    EXPECT_EQ(a.maxWriteWaysUsed, b.maxWriteWaysUsed) << context;
}

std::string
engineTraceText(Engine &engine)
{
    TraceBuffer *buf = engine.trace();
    return buf ? traceText(buf->drain()) : std::string();
}

// ---- Region primitives (htm/region.h) ---------------------------------

TEST(RegionFootprint, DeduplicatesLines)
{
    RegionFootprint fp(HtmMode::Rot, CapacityModelKind::WaysAssoc);
    fp.noteWrite(0x10000);
    fp.noteWrite(0x10008); // same line
    fp.noteWrite(0x10040); // next line
    fp.noteRead(0x20000);
    fp.noteRead(0x20010); // same line
    fp.noteRead(0); // ignored
    fp.noteWrite(0); // ignored
    EXPECT_EQ(fp.writeLines().size(), 2u);
    EXPECT_EQ(fp.readLines().size(), 1u);
    EXPECT_EQ(fp.writeFootprintBytes(), 2u * kLineSize);
    EXPECT_FALSE(fp.exceeded());
    fp.clear();
    EXPECT_TRUE(fp.writeLines().empty());
    EXPECT_TRUE(fp.readLines().empty());
    EXPECT_EQ(fp.writeFootprintBytes(), 0u);
}

TEST(RegionFootprint, LatchesCapacityOverflow)
{
    // RTM geometry: 32 KB / 8 ways / 64 B lines = 64 sets. Nine
    // writes at a 64-set stride land in one set and overflow it.
    RegionFootprint fp(HtmMode::Rtm, CapacityModelKind::WaysAssoc);
    const Addr stride = 64ull * kLineSize;
    for (int i = 0; i < 8; ++i)
        fp.noteWrite(0x10000 + static_cast<Addr>(i) * stride);
    EXPECT_FALSE(fp.exceeded());
    fp.noteWrite(0x10000 + 8ull * stride);
    EXPECT_TRUE(fp.exceeded());
    // Overflow is latched until clear().
    fp.noteWrite(0x10000);
    EXPECT_TRUE(fp.exceeded());
    fp.clear();
    EXPECT_FALSE(fp.exceeded());
}

TEST(ConflictTable, DetectsOverlapOnlyInsideTheWindow)
{
    ConflictTable table;

    // Region A begins, then B commits a write to line 0x40000.
    uint64_t a_start = table.beginRegion();
    std::unordered_set<Addr> b_writes{lineBase(0x40000)};
    table.commit(b_writes, /*fallback=*/false);

    // A wrote a disjoint line: no conflict.
    RegionFootprint disjoint(HtmMode::Rot,
                             CapacityModelKind::WaysAssoc);
    disjoint.noteWrite(0x50000);
    EXPECT_FALSE(table.check(disjoint, a_start).conflict);

    // A wrote the same line: write-write conflict.
    RegionFootprint ww(HtmMode::Rot, CapacityModelKind::WaysAssoc);
    ww.noteWrite(0x40010);
    EXPECT_TRUE(table.check(ww, a_start).conflict);

    // A only *read* the line: read-write conflict.
    RegionFootprint rw(HtmMode::Rot, CapacityModelKind::WaysAssoc);
    rw.noteRead(0x40020);
    EXPECT_TRUE(table.check(rw, a_start).conflict);
    table.endRegion(a_start);

    // A region beginning *after* B's commit is not in its window.
    uint64_t late_start = table.beginRegion();
    EXPECT_FALSE(table.check(ww, late_start).conflict);
    table.endRegion(late_start);
}

TEST(ConflictTable, FallbackCommitKillsSubscribedRegions)
{
    ConflictTable table;
    uint64_t start = table.beginRegion();

    // The HTM region subscribed the fallback lock and touched only
    // private data; a fallback run with a disjoint write set commits.
    RegionFootprint fp(HtmMode::Rot, CapacityModelKind::WaysAssoc);
    fp.noteRead(kFallbackLockAddr); // subscription
    fp.noteWrite(0x90000);
    std::unordered_set<Addr> fb_writes{lineBase(0x70000)};
    table.commit(fb_writes, /*fallback=*/true);

    RegionConflict c = table.check(fp, start);
    EXPECT_TRUE(c.conflict);
    EXPECT_TRUE(c.withFallback);
    EXPECT_EQ(c.line, lineBase(kFallbackLockAddr));
    table.endRegion(start);

    // Without the subscription (a fallback run itself does not
    // subscribe) the same commit is invisible.
    uint64_t start2 = table.beginRegion();
    RegionFootprint unsub(HtmMode::Rot, CapacityModelKind::WaysAssoc);
    unsub.noteWrite(0x90000);
    table.commit(fb_writes, /*fallback=*/true);
    EXPECT_FALSE(table.check(unsub, start2).conflict);
    table.endRegion(start2);
}

TEST(Counters, ClampedDeltaNeverWraps)
{
    EXPECT_EQ(clampedDelta(10, 3), 7u);
    EXPECT_EQ(clampedDelta(3, 3), 0u);
    EXPECT_EQ(clampedDelta(3, 10), 0u); // would wrap to ~2^64
}

// ---- K=1 isolate parity ------------------------------------------------

TEST(SharedHeap, SingleLaneMatchesPlainIsolateOnAllArchitectures)
{
    for (Architecture arch : kAllArchs) {
        EngineConfig ec;
        ec.arch = arch;
        ec.traceCapacity = 4096;

        Engine isolate(ec);
        EngineResult want = isolate.run(kWorkload);
        std::string want_trace = engineTraceText(isolate);

        SharedHeapConfig sc;
        sc.engine = ec;
        sc.lanes = 1;
        SharedHeapSession session(sc);
        RegionResult got = session.run(0, kWorkload);
        std::string got_trace = engineTraceText(session.engine(0));

        const char *name = architectureName(arch);
        // A whole program is one region, and on the RTM geometry
        // (32 KB L1) this workload's write footprint deterministically
        // overflows — so NoMap_RTM exercises the full retry ladder and
        // the fallback path here, and parity below proves the retries
        // are invisible. The ROT archs (256 KB L2) commit first try.
        if (arch == Architecture::NoMapRTM) {
            EXPECT_EQ(got.attempts, ec.htmRetryLimit + 1) << name;
            EXPECT_TRUE(got.fallback) << name;
            EXPECT_EQ(got.capacityAborts, ec.htmRetryLimit) << name;
        } else {
            EXPECT_EQ(got.attempts, 1u) << name;
            EXPECT_FALSE(got.fallback) << name;
        }
        EXPECT_EQ(got.engine.resultString, want.resultString) << name;
        EXPECT_EQ(got.engine.printed, want.printed) << name;
        expectStatsIdentical(got.engine.stats, want.stats, name);
        EXPECT_EQ(got_trace, want_trace) << name;

        // The engine-side stm fields stay zero: only the session's
        // aggregate carries them.
        EXPECT_EQ(got.engine.stats.stmRegions, 0u) << name;
        ExecutionStats agg = session.aggregateStats();
        EXPECT_EQ(agg.stmRegions, 1u) << name;
        if (arch == Architecture::NoMapRTM) {
            EXPECT_EQ(agg.stmRegionRetries, ec.htmRetryLimit) << name;
            EXPECT_EQ(agg.stmFallbacks, 1u) << name;
        } else {
            EXPECT_EQ(agg.stmRegionRetries, 0u) << name;
            EXPECT_EQ(agg.stmFallbacks, 0u) << name;
        }
    }
}

TEST(SharedHeap, MultiRegionMatchesReusedIsolate)
{
    // Globals persist across regions exactly like successive run()
    // calls on one isolate (with per-request resetStats between).
    const char *scripts[] = {
        "var counter = 0; counter = counter + 1; result = counter;",
        "counter = counter + 1; result = counter;",
        "counter = counter + 1; result = counter * 10;",
    };

    EngineConfig ec;
    ec.arch = Architecture::NoMap;
    Engine isolate(ec);

    SharedHeapConfig sc;
    sc.engine = ec;
    sc.lanes = 1;
    SharedHeapSession session(sc);

    for (size_t i = 0; i < 3; ++i) {
        if (i > 0)
            isolate.resetStats();
        EngineResult want = isolate.run(scripts[i]);
        RegionResult got = session.run(0, scripts[i]);
        std::string context = "script " + std::to_string(i);
        EXPECT_EQ(got.engine.resultString, want.resultString)
            << context;
        expectStatsIdentical(got.engine.stats, want.stats, context);
    }
    EXPECT_EQ(session.aggregateStats().stmRegions, 3u);
}

TEST(SharedHeap, ExternalVmEngineRefusesReset)
{
    SharedHeapConfig sc;
    sc.lanes = 1;
    SharedHeapSession session(sc);
    EXPECT_THROW(session.engine(0).reset(), FatalError);
}

// ---- Litmus (K=2): only serializable outcomes --------------------------

/** Run @p a and @p b concurrently on lanes 0/1 of @p session. */
std::pair<std::string, std::string>
runPair(SharedHeapSession &session, const std::string &a,
        const std::string &b)
{
    std::string ra, rb;
    std::thread ta(
        [&] { ra = session.run(0, a).engine.resultString; });
    std::thread tb(
        [&] { rb = session.run(1, b).engine.resultString; });
    ta.join();
    tb.join();
    return {ra, rb};
}

SharedHeapConfig
litmusConfig()
{
    SharedHeapConfig sc;
    sc.engine.arch = Architecture::NoMap;
    sc.engine.htmRetryLimit = 4;
    sc.lanes = 2;
    return sc;
}

TEST(SharedHeapLitmus, StoreBuffering)
{
    // SB: A: x=1; r=y.  B: y=1; r=x.  Region-serializable outcomes
    // are (0,1) and (1,0); (0,0) and (1,1) would require the regions
    // to interleave.
    for (int iter = 0; iter < 24; ++iter) {
        SharedHeapSession session(litmusConfig());
        session.run(0, "var x = 0; var y = 0; result = 0;");
        auto [ra, rb] = runPair(session, "x = 1; result = y;",
                                "y = 1; result = x;");
        bool allowed = (ra == "0" && rb == "1") ||
                       (ra == "1" && rb == "0");
        EXPECT_TRUE(allowed)
            << "iteration " << iter << ": forbidden SB outcome ("
            << ra << "," << rb << ")";
    }
}

TEST(SharedHeapLitmus, MessagePassing)
{
    // MP: A publishes data then flag; B reads flag then data. Seeing
    // the flag without the data (or vice versa) is non-serializable.
    for (int iter = 0; iter < 24; ++iter) {
        SharedHeapSession session(litmusConfig());
        session.run(0, "var data = 0; var flag = 0; result = 0;");
        auto [ra, rb] =
            runPair(session, "data = 42; flag = 1; result = 0;",
                    "result = flag * 1000 + data;");
        (void)ra;
        EXPECT_TRUE(rb == "0" || rb == "1042")
            << "iteration " << iter
            << ": non-serializable MP outcome " << rb;
    }
}

TEST(SharedHeapLitmus, CoherenceOnOneLocation)
{
    // Two writers to one location: the final value is one of the two
    // written values, never a blend of torn/aborted state.
    for (int iter = 0; iter < 24; ++iter) {
        SharedHeapSession session(litmusConfig());
        session.run(0, "var x = 0; result = 0;");
        runPair(session, "x = 1; result = 0;", "x = 2; result = 0;");
        RegionResult reader = session.run(0, "result = x;");
        EXPECT_TRUE(reader.engine.resultString == "1" ||
                    reader.engine.resultString == "2")
            << "iteration " << iter << ": x = "
            << reader.engine.resultString;
    }
}

TEST(SharedHeapLitmus, ContendedCountersLoseNoIncrements)
{
    // Each lane increments a shared counter in its own regions; region
    // serializability means no increment can be lost.
    SharedHeapConfig sc = litmusConfig();
    SharedHeapSession session(sc);
    session.run(0, "var n = 0; result = 0;");
    const int kPerLane = 25;
    auto incr = [&](uint32_t lane) {
        for (int i = 0; i < kPerLane; ++i)
            session.run(lane, "n = n + 1; result = n;");
    };
    std::thread t0(incr, 0);
    std::thread t1(incr, 1);
    t0.join();
    t1.join();
    RegionResult reader = session.run(0, "result = n;");
    EXPECT_EQ(reader.engine.resultString,
              std::to_string(2 * kPerLane));
    ExecutionStats agg = session.aggregateStats();
    EXPECT_EQ(agg.stmRegions, 2u * kPerLane + 2u);
}

// ---- Injected abort storms and the fallback path (S4) ------------------

TEST(SharedHeapFallback, StormDrainsRetriesThenFallsBack)
{
    EngineConfig ec;
    ec.arch = Architecture::NoMap;
    ec.htmRetryLimit = 3;
    ec.traceCapacity = 4096;

    // Clean reference session: same program, no injection.
    SharedHeapConfig clean_cfg;
    clean_cfg.engine = ec;
    clean_cfg.lanes = 1;
    clean_cfg.sessionTraceCapacity = 64;
    SharedHeapSession clean(clean_cfg);
    RegionResult want = clean.run(0, kWorkload);
    std::string want_trace = engineTraceText(clean.engine(0));
    EXPECT_EQ(want.attempts, 1u);

    // Stormed session: every HTM attempt of region 1 is doomed.
    FaultPlan plan = FaultPlan::parse("stm.fallback@1");
    SharedHeapSession stormed(clean_cfg, &plan);
    RegionResult got = stormed.run(0, kWorkload);
    std::string got_trace = engineTraceText(stormed.engine(0));

    EXPECT_EQ(got.attempts, ec.htmRetryLimit + 1);
    EXPECT_TRUE(got.fallback);
    EXPECT_EQ(got.injectedAborts, ec.htmRetryLimit);
    EXPECT_EQ(got.conflictAborts, 0u);
    EXPECT_EQ(got.capacityAborts, 0u);

    // The committed fallback attempt is bit-identical to the clean
    // first-attempt run: results, printed output, stats, and the
    // engine's own trace stream.
    EXPECT_EQ(got.engine.resultString, want.engine.resultString);
    EXPECT_EQ(got.engine.printed, want.engine.printed);
    expectStatsIdentical(got.engine.stats, want.engine.stats,
                         "storm vs clean");
    EXPECT_EQ(got_trace, want_trace);

    // Session accounting and the TxFallback region event.
    ExecutionStats agg = stormed.aggregateStats();
    EXPECT_EQ(agg.stmRegions, 1u);
    EXPECT_EQ(agg.stmRegionRetries, ec.htmRetryLimit);
    EXPECT_EQ(agg.stmInjectedAborts, ec.htmRetryLimit);
    EXPECT_EQ(agg.stmFallbacks, 1u);

    ASSERT_NE(stormed.trace(), nullptr);
    std::vector<TraceEvent> events = stormed.trace()->drain();
    size_t fallbacks = 0, aborts = 0;
    for (const TraceEvent &e : events) {
        if (e.type == TraceEventType::TxFallback) {
            ++fallbacks;
            EXPECT_EQ(e.aux, ec.htmRetryLimit);
            EXPECT_EQ(e.tid, 1u);
        }
        if (e.type == TraceEventType::TxAbort)
            ++aborts;
    }
    EXPECT_EQ(fallbacks, 1u);
    EXPECT_EQ(aborts, ec.htmRetryLimit);

    // Only-region semantics: the next region is back on HTM.
    RegionResult after = stormed.run(0, "result = 1;");
    EXPECT_EQ(after.attempts, 1u);
    EXPECT_FALSE(after.fallback);
}

TEST(SharedHeapFallback, CapacityOverflowForcesFallbackDeterministically)
{
    // Growing an array element-by-element reallocates its backing
    // store each step, so the region's write footprint sweeps far more
    // lines than the HTM geometry holds — a deterministic capacity
    // storm with no injection involved.
    const char *big = R"JS(
var a = [];
for (var i = 0; i < 40000; i++) a[i] = i;
result = a[39999];
)JS";

    EngineConfig ec;
    ec.arch = Architecture::NoMap;
    ec.htmRetryLimit = 2;

    Engine isolate(ec);
    EngineResult want = isolate.run(big);

    SharedHeapConfig sc;
    sc.engine = ec;
    sc.lanes = 1;
    SharedHeapSession session(sc);
    RegionResult got = session.run(0, big);

    EXPECT_EQ(got.attempts, 3u);
    EXPECT_TRUE(got.fallback);
    EXPECT_EQ(got.capacityAborts, 2u);
    EXPECT_EQ(got.engine.resultString, want.resultString);
    expectStatsIdentical(got.engine.stats, want.stats,
                         "capacity fallback");
}

TEST(SharedHeapFallback, MetricsJsonReportsTheLadder)
{
    EngineConfig ec;
    ec.htmRetryLimit = 2;
    SharedHeapConfig sc;
    sc.engine = ec;
    sc.lanes = 1;
    FaultPlan plan = FaultPlan::parse("stm.fallback@1");
    SharedHeapSession session(sc, &plan);
    session.run(0, "result = 7;");
    session.run(0, "result = 8;");

    std::string json = session.metricsJson();
    EXPECT_NE(json.find("\"lanes\":1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"htm_retry_limit\":2"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"regions\":2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"htm_commits\":1"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"retries\":2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"injected_aborts\":2"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"fallbacks\":1"), std::string::npos)
        << json;

    LaneCounters lane = session.laneCounters(0);
    EXPECT_EQ(lane.regions, 2u);
    EXPECT_EQ(lane.fallbacks, 1u);
    EXPECT_EQ(lane.injectedAborts, 2u);
}

} // namespace
} // namespace nomap
