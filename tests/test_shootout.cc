#include <gtest/gtest.h>

#include "engine/engine.h"
#include "suites/shootout.h"

namespace nomap {
namespace {

/**
 * Every Shootout kernel's native C++ twin must compute exactly the
 * same result as the VM running the JS-subset source — this is what
 * makes the Figure 1 model trustworthy.
 */
class ShootoutTwin : public ::testing::TestWithParam<size_t>
{
};

TEST_P(ShootoutTwin, NativeMatchesVm)
{
    const ShootoutKernel &kernel = shootoutSuite()[GetParam()];
    uint64_t instr = 0;
    double native = kernel.native(&instr);
    EXPECT_GT(instr, 0u) << kernel.name;

    EngineConfig config;
    Engine engine(config);
    EngineResult r = engine.run(kernel.jsSource);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.0f", native);
    EXPECT_EQ(r.resultString, buf) << kernel.name;
}

std::vector<size_t>
indices()
{
    std::vector<size_t> out;
    for (size_t i = 0; i < shootoutSuite().size(); ++i)
        out.push_back(i);
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, ShootoutTwin, ::testing::ValuesIn(indices()),
    [](const ::testing::TestParamInfo<size_t> &info) {
        return shootoutSuite()[info.param].name;
    });

TEST(Shootout, SuiteShape)
{
    EXPECT_EQ(shootoutSuite().size(), 11u);
    EXPECT_EQ(languageModels().size(), 3u);
    for (const LanguageModel &model : languageModels())
        EXPECT_GT(model.dispatchFactor, 0.0);
}

TEST(Shootout, TierLadderHoldsPerKernel)
{
    // Steady-state FTL must beat the interpreter on every kernel.
    for (const ShootoutKernel &kernel : shootoutSuite()) {
        EngineConfig interp_config;
        interp_config.maxTier = Tier::Interpreter;
        Engine interp_engine(interp_config);
        double interp =
            interp_engine.run(kernel.jsSource).stats.totalCycles();

        EngineConfig ftl_config;
        Engine ftl_engine(ftl_config);
        double ftl =
            ftl_engine.run(kernel.jsSource).stats.totalCycles();
        EXPECT_LT(ftl, interp) << kernel.name;
    }
}

} // namespace
} // namespace nomap
