#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "support/statistics.h"

namespace nomap {
namespace {

// Edge-case coverage for the summary-statistics helpers every figure
// and table binary feeds its measurements through. The geomean cases
// are regression tests: non-positive inputs used to reach log(),
// producing -inf/NaN (or a panic) instead of a deterministic value.

TEST(Statistics, MeanOfEmptyIsZero)
{
    EXPECT_EQ(mean({}), 0.0);
}

TEST(Statistics, MeanOfValues)
{
    EXPECT_DOUBLE_EQ(mean({2.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
    EXPECT_DOUBLE_EQ(mean({-3.0, 3.0}), 0.0);
}

TEST(Statistics, GeomeanOfEmptyIsZero)
{
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Statistics, GeomeanOfPositiveValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({1.0, 1.0, 1.0}), 1.0);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(Statistics, GeomeanOfNonPositiveInputsIsZero)
{
    // Undefined mathematically; must be a deterministic 0.0 in every
    // build type rather than log(0)/log(-x) garbage.
    EXPECT_EQ(geomean({0.0}), 0.0);
    EXPECT_EQ(geomean({-1.0}), 0.0);
    EXPECT_EQ(geomean({2.0, 0.0, 8.0}), 0.0);
    EXPECT_EQ(geomean({2.0, -5.0}), 0.0);
    EXPECT_EQ(geomean({std::numeric_limits<double>::quiet_NaN()}), 0.0);
}

TEST(Statistics, GeomeanResultIsAlwaysFiniteForFiniteInput)
{
    std::vector<double> xs = {1e-300, 1e300, 0.5, 2.0};
    double g = geomean(xs);
    EXPECT_TRUE(std::isfinite(g));
    EXPECT_GT(g, 0.0);
}

TEST(Statistics, MinMaxOfEmptyIsZero)
{
    EXPECT_EQ(minOf({}), 0.0);
    EXPECT_EQ(maxOf({}), 0.0);
}

TEST(Statistics, MinMaxOfValues)
{
    EXPECT_DOUBLE_EQ(minOf({3.0, -1.0, 2.0}), -1.0);
    EXPECT_DOUBLE_EQ(maxOf({3.0, -1.0, 2.0}), 3.0);
    EXPECT_DOUBLE_EQ(minOf({7.0}), 7.0);
    EXPECT_DOUBLE_EQ(maxOf({7.0}), 7.0);
}

} // namespace
} // namespace nomap
