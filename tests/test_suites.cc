#include <gtest/gtest.h>

#include "engine/engine.h"
#include "suites/suite.h"

namespace nomap {
namespace {

EngineResult
runWith(Architecture arch, const std::string &src)
{
    EngineConfig config;
    config.arch = arch;
    Engine engine(config);
    return engine.run(src);
}

TEST(Suites, TableIIIMembership)
{
    const auto &ss = sunspiderSuite();
    const auto &kk = krakenSuite();
    ASSERT_EQ(ss.size(), 26u);
    ASSERT_EQ(kk.size(), 14u);

    // Paper Table III: SunSpider AvgS = {1,3,4,5,6,7,10,11,12,13,14,
    // 15,16,18,19,20}; Kraken AvgS = {1,5,6,7,8,11,12,13,14}.
    const int ss_avgs[] = {1, 3, 4, 5, 6, 7, 10, 11, 12,
                           13, 14, 15, 16, 18, 19, 20};
    const int kk_avgs[] = {1, 5, 6, 7, 8, 11, 12, 13, 14};
    for (int i = 0; i < 26; ++i) {
        bool expected = false;
        for (int x : ss_avgs)
            expected |= (x == i + 1);
        EXPECT_EQ(ss[i].inAvgS, expected) << ss[i].id;
        if (!expected) {
            EXPECT_FALSE(ss[i].exclusionReason.empty()) << ss[i].id;
        }
    }
    for (int i = 0; i < 14; ++i) {
        bool expected = false;
        for (int x : kk_avgs)
            expected |= (x == i + 1);
        EXPECT_EQ(kk[i].inAvgS, expected) << kk[i].id;
    }
}

TEST(Suites, FindBenchmark)
{
    ASSERT_NE(findBenchmark("S01"), nullptr);
    EXPECT_EQ(findBenchmark("S01")->name, "3d-cube");
    ASSERT_NE(findBenchmark("K07"), nullptr);
    EXPECT_EQ(findBenchmark("ZZZ"), nullptr);
}

/** Differential parameterized test: every benchmark computes the
 *  same result under every architecture (NoMap_BC excluded: it is
 *  unsound by design on corner cases, though it also agrees here). */
class SuiteDifferential
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteDifferential, AllArchitecturesAgree)
{
    const BenchmarkSpec *spec = findBenchmark(GetParam());
    ASSERT_NE(spec, nullptr);
    EngineResult base = runWith(Architecture::Base, spec->source);
    ASSERT_FALSE(base.resultString.empty());
    EXPECT_NE(base.resultString, "undefined") << spec->id;

    const Architecture rest[] = {
        Architecture::NoMapS, Architecture::NoMapB, Architecture::NoMap,
        Architecture::NoMapBC, Architecture::NoMapRTM};
    for (Architecture arch : rest) {
        EngineResult r = runWith(arch, spec->source);
        EXPECT_EQ(r.resultString, base.resultString)
            << spec->id << " under " << architectureName(arch);
    }
}

std::vector<std::string>
allIds()
{
    std::vector<std::string> ids;
    for (const auto &spec : sunspiderSuite())
        ids.push_back(spec.id);
    for (const auto &spec : krakenSuite())
        ids.push_back(spec.id);
    return ids;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteDifferential, ::testing::ValuesIn(allIds()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Suites, DeadCodeBenchmarksCollapseUnderNoMap)
{
    // S02/S08/S09 are excluded from AvgS because NoMap's DCE removes
    // their hot loops entirely (paper Table III).
    for (const char *id : {"S02", "S08", "S09"}) {
        const BenchmarkSpec *spec = findBenchmark(id);
        ASSERT_NE(spec, nullptr);
        uint64_t base = runWith(Architecture::Base, spec->source)
                            .stats.totalInstructions();
        uint64_t nomap = runWith(Architecture::NoMap, spec->source)
                             .stats.totalInstructions();
        EXPECT_LT(static_cast<double>(nomap),
                  0.55 * static_cast<double>(base))
            << id << " should mostly vanish";
    }
}

TEST(Suites, NonFtlBenchmarksAreRuntimeDominated)
{
    for (const char *id :
         {"S21", "S22", "S24", "S25", "K02", "K09", "K10"}) {
        const BenchmarkSpec *spec = findBenchmark(id);
        ASSERT_NE(spec, nullptr);
        EngineResult r = runWith(Architecture::Base, spec->source);
        double noftl = static_cast<double>(
            r.stats.instrIn(InstrBucket::NoFtl));
        double total =
            static_cast<double>(r.stats.totalInstructions());
        EXPECT_GT(noftl / total, 0.60) << id;
    }
}

TEST(Suites, KrakenWriteFootprintsExceedRtmCapacity)
{
    // K05-K07 stream through buffers bigger than a 32 KB L1D; under
    // ROT-style HTM their transactions still commit.
    for (const char *id : {"K05", "K06", "K07"}) {
        const BenchmarkSpec *spec = findBenchmark(id);
        EngineResult rot = runWith(Architecture::NoMap, spec->source);
        EXPECT_GT(rot.stats.maxWriteFootprintBytes, 32u * 1024) << id;
        EXPECT_GT(rot.stats.txCommits, 0u) << id;
    }
}

} // namespace
} // namespace nomap
