#include <gtest/gtest.h>

#include "support/logging.h"
#include "support/random.h"
#include "support/statistics.h"

namespace nomap {
namespace {

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 42, "hi"), "x=42 y=hi");
    EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config %d", 7), FatalError);
    try {
        fatal("bad config %d", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad config 7");
    }
}

TEST(Random, Deterministic)
{
    Xorshift64Star a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Xorshift64Star a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Random, DoubleInUnitInterval)
{
    Xorshift64Star rng(99);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Random, BoundedWithinBound)
{
    Xorshift64Star rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Random, ZeroSeedRemapped)
{
    Xorshift64Star rng(0);
    EXPECT_NE(rng.next(), 0u);
}

TEST(Statistics, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1, 4}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2, 8}), 4.0, 1e-12);
}

TEST(Statistics, MinMax)
{
    EXPECT_DOUBLE_EQ(minOf({3, 1, 2}), 1.0);
    EXPECT_DOUBLE_EQ(maxOf({3, 1, 2}), 3.0);
}

TEST(Statistics, TextTableAligns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"b", "22"});
    std::string s = t.render();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Statistics, Formatting)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPercent(0.142, 1), "14.2%");
}

} // namespace
} // namespace nomap
