#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "inject/fault_plan.h"
#include "service/engine_pool.h"
#include "suites/suite.h"
#include "support/logging.h"
#include "trace/trace.h"

namespace nomap {
namespace {

/**
 * Tests for the trace attribution layer (src/trace/): the ring
 * buffer's drop policy, both exporters, and — most importantly — the
 * two system-level invariants:
 *
 *  1. **Determinism.** Timestamps come from the engine's virtual
 *     clock, so the same program under the same config yields a
 *     bit-identical event stream on every run, machine, and build
 *     config. Pinned by a golden file (regenerate deliberately with
 *     NOMAP_UPDATE_GOLDEN=1 ./tests/test_trace) plus a run-twice
 *     comparison.
 *
 *  2. **Zero perturbation.** Enabling tracing must not change a
 *     single guest-visible counter: ExecutionStats is bit-identical
 *     with tracing off, on, and on-with-a-tiny-buffer, across all six
 *     architectures.
 */

// ---- Golden-file plumbing (same convention as test_metrics_golden) ----

std::string
goldenPath(const char *name)
{
    return std::string(NOMAP_GOLDEN_DIR) + "/" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool
updateMode()
{
    const char *v = std::getenv("NOMAP_UPDATE_GOLDEN");
    return v && *v && std::string(v) != "0";
}

void
checkAgainstGolden(const char *name, const std::string &actual)
{
    std::string path = goldenPath(name);
    if (updateMode()) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << path;
        out << actual;
        return;
    }
    std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden " << path
        << " — bootstrap with NOMAP_UPDATE_GOLDEN=1";
    EXPECT_EQ(actual, expected)
        << "trace output drifted from " << path
        << "; if intentional, regenerate with NOMAP_UPDATE_GOLDEN=1 "
           "and review the diff";
}

// ---- Ring buffer -------------------------------------------------------

TraceEvent
eventAt(uint64_t vcycles, TraceEventType type = TraceEventType::TxBegin)
{
    TraceEvent e;
    e.vcycles = vcycles;
    e.type = type;
    return e;
}

TEST(TraceBuffer, ZeroCapacityIsDisabled)
{
    TraceBuffer buf(0);
    EXPECT_FALSE(buf.enabled());
    EXPECT_EQ(buf.capacity(), 0u);

    TraceBuffer on(4);
    EXPECT_TRUE(on.enabled());
}

TEST(TraceBuffer, KeepOldestDropPolicy)
{
    TraceBuffer buf(4);
    for (uint64_t i = 1; i <= 6; ++i)
        buf.emit(eventAt(i));

    // The first 4 events are kept; the newest 2 are dropped, so a
    // truncated trace is a stable prefix of the full one.
    ASSERT_EQ(buf.events().size(), 4u);
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(buf.events()[i].vcycles, i + 1);
    EXPECT_EQ(buf.emitted(), 4u);
    EXPECT_EQ(buf.dropped(), 2u);
}

TEST(TraceBuffer, ClearResetsEventsAndCounters)
{
    TraceBuffer buf(2);
    buf.emit(eventAt(1));
    buf.emit(eventAt(2));
    buf.emit(eventAt(3));
    buf.clear();
    EXPECT_TRUE(buf.events().empty());
    EXPECT_EQ(buf.emitted(), 0u);
    EXPECT_EQ(buf.dropped(), 0u);
    EXPECT_TRUE(buf.enabled()); // Capacity survives a clear.
}

TEST(TraceBuffer, DrainMovesEventsButKeepsTotals)
{
    TraceBuffer buf(8);
    buf.emit(eventAt(1));
    buf.emit(eventAt(2));
    std::vector<TraceEvent> taken = buf.drain();
    ASSERT_EQ(taken.size(), 2u);
    EXPECT_TRUE(buf.events().empty());
    EXPECT_EQ(buf.emitted(), 2u); // Totals are lifetime counters.

    buf.emit(eventAt(3));
    EXPECT_EQ(buf.events().size(), 1u);
    EXPECT_EQ(buf.emitted(), 3u);
}

// ---- Exporters on hand-built streams -----------------------------------

/** Structural JSON check: balanced nesting, terminated strings. */
void
expectBalancedJson(const std::string &json)
{
    int depth = 0;
    bool in_str = false, esc = false;
    for (char c : json) {
        if (esc) {
            esc = false;
            continue;
        }
        if (in_str) {
            if (c == '\\')
                esc = true;
            else if (c == '"')
                in_str = false;
            continue;
        }
        switch (c) {
          case '"': in_str = true; break;
          case '{':
          case '[': ++depth; break;
          case '}':
          case ']':
            --depth;
            ASSERT_GE(depth, 0);
            break;
          default: break;
        }
    }
    EXPECT_FALSE(in_str);
    EXPECT_EQ(depth, 0);
}

std::vector<TraceEvent>
sampleStream()
{
    std::vector<TraceEvent> ev;
    TraceEvent e;

    e.type = TraceEventType::SpanBegin;
    e.code = 0; // SpanKind::Request
    e.tid = 7;
    e.bytes = 1234; // wall micros
    ev.push_back(e);

    e = TraceEvent();
    e.type = TraceEventType::TxBegin;
    e.vcycles = 100;
    e.funcId = 1;
    e.pc = 42;
    e.tid = 7;
    ev.push_back(e);

    e.type = TraceEventType::TxAbort;
    e.vcycles = 180;
    e.code = 2; // Capacity
    e.bytes = 4096;
    e.ways = 8;
    ev.push_back(e);

    e.type = TraceEventType::TxBegin;
    e.vcycles = 200;
    e.code = 0;
    e.bytes = 0;
    e.ways = 0;
    ev.push_back(e);

    e.type = TraceEventType::TxCommit;
    e.vcycles = 300;
    e.bytes = 2048;
    e.ways = 4;
    ev.push_back(e);

    e = TraceEvent();
    e.type = TraceEventType::Deopt;
    e.vcycles = 310;
    e.code = 0; // Bounds
    e.funcId = 1;
    e.pc = 17;
    e.tid = 7;
    ev.push_back(e);

    e = TraceEvent();
    e.type = TraceEventType::SpanEnd;
    e.code = 0;
    e.vcycles = 320;
    e.tid = 7;
    ev.push_back(e);
    return ev;
}

TEST(TraceExport, ChromeJsonIsStructurallyValid)
{
    std::string json = chromeTraceJson(sampleStream());
    expectBalancedJson(json);
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"abort_code\":\"Capacity\""),
              std::string::npos);
    EXPECT_NE(json.find("\"check_kind\":\"Bounds\""),
              std::string::npos);
    EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
}

TEST(TraceExport, ChromeJsonUsesNameResolver)
{
    std::string json = chromeTraceJson(
        sampleStream(),
        [](uint32_t id) { return id == 1 ? "work" : ""; });
    EXPECT_NE(json.find("\"name\":\"tx work\""), std::string::npos);
    // Unresolved ids fall back to fn#<id>.
    std::string fallback = chromeTraceJson(sampleStream());
    EXPECT_NE(fallback.find("\"name\":\"tx fn#1\""),
              std::string::npos);
}

TEST(TraceExport, AbortReportRanksByCountWithStableTies)
{
    std::vector<TraceEvent> ev;
    auto abortAt = [&](uint32_t fn, uint32_t pc, uint8_t code,
                       uint64_t bytes) {
        TraceEvent e;
        e.type = TraceEventType::TxAbort;
        e.funcId = fn;
        e.pc = pc;
        e.code = code;
        e.bytes = bytes;
        ev.push_back(e);
    };
    abortAt(2, 10, 1, 100); // site B: 1 abort
    abortAt(1, 20, 2, 500); // site A: 3 aborts
    abortAt(1, 20, 2, 700);
    abortAt(1, 20, 2, 600);
    abortAt(3, 30, 1, 50); // site C: 1 abort (ties with B; B first
                           // by (funcId, pc, code) key order)

    std::string report = abortAttributionReport(ev);
    EXPECT_NE(report.find("3 of 3 site(s), 5 abort(s) total"),
              std::string::npos)
        << report;
    size_t site_a = report.find("fn#1");
    size_t site_b = report.find("fn#2");
    size_t site_c = report.find("fn#3");
    ASSERT_NE(site_a, std::string::npos);
    ASSERT_NE(site_b, std::string::npos);
    ASSERT_NE(site_c, std::string::npos);
    EXPECT_LT(site_a, site_b);
    EXPECT_LT(site_b, site_c);
    // Per-site footprint maxima, not sums.
    EXPECT_NE(report.find("700"), std::string::npos);

    // top_n truncation keeps the head of the ranking.
    std::string top1 = abortAttributionReport(ev, 1);
    EXPECT_NE(top1.find("1 of 3 site(s), 5 abort(s) total"),
              std::string::npos)
        << top1;
    EXPECT_NE(top1.find("fn#1"), std::string::npos);
    EXPECT_EQ(top1.find("fn#2"), std::string::npos);
}

// ---- Engine integration ------------------------------------------------

/**
 * The same hot array-writing loop the chaos sweeps use: tiers to FTL
 * quickly under the lowered thresholds and opens a transaction per
 * call, so the trace carries tier-ups, pass reports, and a tx
 * lifecycle per iteration.
 */
const char kTraceProgram[] = R"JS(
var A = [];
for (var i = 0; i < 20; i++) A[i] = i % 7;
function work(a) {
    var s = 0;
    for (var j = 0; j < a.length; j++) {
        a[j] = (a[j] + 3) % 19;
        s = (s + a[j] * 2) % 1009;
    }
    return s;
}
var out = 0;
for (var r = 0; r < 40; r++) out = (out + work(A)) % 65536;
result = out;
)JS";

EngineConfig
traceConfig(Architecture arch, uint32_t capacity)
{
    EngineConfig config;
    config.arch = arch;
    config.baselineThreshold = 2;
    config.dfgThreshold = 4;
    config.ftlThreshold = 8;
    config.traceCapacity = capacity;
    return config;
}

size_t
countType(const std::vector<TraceEvent> &ev, TraceEventType type)
{
    size_t n = 0;
    for (const TraceEvent &e : ev)
        if (e.type == type)
            ++n;
    return n;
}

TEST(TraceEngine, EventCountsMatchExecutionStats)
{
    FaultPlan plan = FaultPlan::parse("htm.abort@2");
    Engine engine(traceConfig(Architecture::NoMap, 1 << 16));
    engine.armFaultPlan(&plan);
    EngineResult r = engine.run(kTraceProgram);

    ASSERT_NE(engine.trace(), nullptr);
    EXPECT_EQ(engine.trace()->dropped(), 0u);
    const std::vector<TraceEvent> &ev = engine.trace()->events();

    EXPECT_EQ(countType(ev, TraceEventType::TxCommit),
              r.stats.txCommits);
    EXPECT_EQ(countType(ev, TraceEventType::TxAbort),
              r.stats.txAborts);
    EXPECT_GE(r.stats.txAborts, 1u); // The injected one.
    EXPECT_EQ(countType(ev, TraceEventType::TxBegin),
              r.stats.txCommits + r.stats.txAborts);
    EXPECT_EQ(countType(ev, TraceEventType::Deopt), r.stats.deopts);
    EXPECT_GE(countType(ev, TraceEventType::TierUp), 1u);
    EXPECT_GE(countType(ev, TraceEventType::PassReport), 1u);
    // Engine-local events carry no request lane.
    for (const TraceEvent &e : ev)
        EXPECT_EQ(e.tid, 0u);
}

TEST(TraceEngine, GoldenTraceText)
{
    FaultPlan plan = FaultPlan::parse("htm.abort@2");
    Engine engine(traceConfig(Architecture::NoMap, 1 << 16));
    engine.armFaultPlan(&plan);
    engine.run(kTraceProgram);
    ASSERT_NE(engine.trace(), nullptr);
    checkAgainstGolden("trace_events.golden.txt",
                       traceText(engine.trace()->events()));
}

TEST(TraceEngine, TraceIsBitIdenticalAcrossRuns)
{
    FaultPlan plan = FaultPlan::parse("htm.abort@2");
    auto capture = [&plan]() {
        Engine engine(traceConfig(Architecture::NoMap, 1 << 16));
        engine.armFaultPlan(&plan);
        engine.run(kTraceProgram);
        return engine.trace()->events();
    };
    std::vector<TraceEvent> first = capture();
    std::vector<TraceEvent> second = capture();
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);

    // reset() also restores determinism on a reused isolate.
    Engine engine(traceConfig(Architecture::NoMap, 1 << 16));
    engine.armFaultPlan(&plan);
    engine.run(kTraceProgram);
    std::vector<TraceEvent> before = engine.trace()->events();
    engine.reset();
    engine.run(kTraceProgram);
    EXPECT_EQ(engine.trace()->events(), before);
}

/** All ExecutionStats fields, rendered exactly. */
std::string
statsFingerprint(const ExecutionStats &s)
{
    std::string out;
    for (uint64_t v : s.instr)
        out += strprintf("i%llu ", static_cast<unsigned long long>(v));
    for (uint64_t v : s.checks)
        out += strprintf("c%llu ", static_cast<unsigned long long>(v));
    out += strprintf(
        "tm=%.17g ntm=%.17g calls=%llu deopts=%llu bc=%llu dc=%llu "
        "fc=%llu fr=%llu commits=%llu aborts=%llu cap=%llu chk=%llu "
        "sof=%llu avg=%.17g max=%llu ways=%u",
        s.cyclesTm, s.cyclesNonTm,
        static_cast<unsigned long long>(s.ftlFunctionCalls),
        static_cast<unsigned long long>(s.deopts),
        static_cast<unsigned long long>(s.baselineCompiles),
        static_cast<unsigned long long>(s.dfgCompiles),
        static_cast<unsigned long long>(s.ftlCompiles),
        static_cast<unsigned long long>(s.ftlRecompiles),
        static_cast<unsigned long long>(s.txCommits),
        static_cast<unsigned long long>(s.txAborts),
        static_cast<unsigned long long>(s.txAbortsCapacity),
        static_cast<unsigned long long>(s.txAbortsCheck),
        static_cast<unsigned long long>(s.txAbortsSof),
        s.avgWriteFootprintBytes,
        static_cast<unsigned long long>(s.maxWriteFootprintBytes),
        s.maxWriteWaysUsed);
    return out;
}

TEST(TraceEngine, TracingDoesNotPerturbStatsOnAnyArchitecture)
{
    const Architecture archs[] = {
        Architecture::Base,    Architecture::NoMapS,
        Architecture::NoMapB,  Architecture::NoMap,
        Architecture::NoMapBC, Architecture::NoMapRTM,
    };
    // The plan adds aborts (and, on deopt-capable archs, check
    // traffic) so the comparison covers the eventful paths too.
    FaultPlan plan = FaultPlan::parse("htm.abort@2,check.bounds@3");

    for (Architecture arch : archs) {
        auto runWith = [&](uint32_t capacity) {
            Engine engine(traceConfig(arch, capacity));
            engine.armFaultPlan(&plan);
            return engine.run(kTraceProgram);
        };
        EngineResult off = runWith(0);
        EngineResult on = runWith(1 << 16);
        // A buffer too small for the run must ALSO not perturb:
        // events are dropped, never allowed to change behavior.
        EngineResult tiny = runWith(8);

        EXPECT_EQ(off.resultString, on.resultString)
            << architectureName(arch);
        EXPECT_EQ(statsFingerprint(off.stats),
                  statsFingerprint(on.stats))
            << architectureName(arch);
        EXPECT_EQ(statsFingerprint(off.stats),
                  statsFingerprint(tiny.stats))
            << architectureName(arch);
    }
}

TEST(TraceEngine, TinyBufferCountsDrops)
{
    Engine engine(traceConfig(Architecture::NoMap, 8));
    engine.run(kTraceProgram);
    ASSERT_NE(engine.trace(), nullptr);
    EXPECT_EQ(engine.trace()->events().size(), 8u);
    EXPECT_EQ(engine.trace()->emitted(), 8u);
    EXPECT_GT(engine.trace()->dropped(), 0u);
}

TEST(TraceEngine, DisabledByDefault)
{
    EngineConfig config;
    config.arch = Architecture::NoMap;
    Engine engine(config);
    EXPECT_EQ(engine.trace(), nullptr);
}

// ---- Kraken acceptance run ---------------------------------------------

TEST(TraceEngine, KrakenRunExportsValidJsonAndAbortReport)
{
    const BenchmarkSpec &k01 = krakenSuite().front();
    EngineConfig config;
    config.arch = Architecture::NoMap;
    config.traceCapacity = 1 << 18;
    // Guarantee at least one abort so the attribution report has a
    // site to show even if the workload commits cleanly.
    FaultPlan plan = FaultPlan::parse("htm.abort@3");
    Engine engine(config);
    engine.armFaultPlan(&plan);
    engine.run(k01.source);

    ASSERT_NE(engine.trace(), nullptr);
    const std::vector<TraceEvent> &ev = engine.trace()->events();
    ASSERT_FALSE(ev.empty());

    std::string json = chromeTraceJson(ev, [&](uint32_t id) {
        return engine.functionName(id);
    });
    expectBalancedJson(json);
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""),
              std::string::npos);

    std::string report = abortAttributionReport(ev);
    EXPECT_EQ(report.find("0 of 0 site(s)"), std::string::npos)
        << report;
    EXPECT_NE(report.find("ExplicitCheck"), std::string::npos)
        << report;
}

// ---- Service spans -----------------------------------------------------

TEST(TraceService, RequestSpansWrapEngineEvents)
{
    ServiceConfig scfg;
    scfg.workers = 1;
    ExecutionService service(scfg);

    Request req;
    req.source = kTraceProgram;
    req.config = traceConfig(Architecture::NoMap, 1 << 16);
    Response resp = service.submit(req).get();
    ASSERT_EQ(resp.status, ResponseStatus::Ok);

    const std::vector<TraceEvent> &ev = resp.traceEvents;
    ASSERT_GE(ev.size(), 6u);
    // Outermost: a Request span brackets the whole stream.
    EXPECT_EQ(ev.front().type, TraceEventType::SpanBegin);
    EXPECT_EQ(static_cast<SpanKind>(ev.front().code),
              SpanKind::Request);
    EXPECT_EQ(ev.back().type, TraceEventType::SpanEnd);
    EXPECT_EQ(static_cast<SpanKind>(ev.back().code),
              SpanKind::Request);
    // Every event, engine ones included, is stamped with the request
    // lane so multi-request exports separate per tid.
    for (const TraceEvent &e : ev)
        EXPECT_EQ(e.tid, static_cast<uint32_t>(resp.id));
    EXPECT_GE(countType(ev, TraceEventType::TxCommit), 1u);
    EXPECT_EQ(countType(ev, TraceEventType::SpanBegin),
              countType(ev, TraceEventType::SpanEnd));

    ServiceMetricsSnapshot m = service.metrics();
    EXPECT_EQ(m.traceEvents, ev.size());
    EXPECT_EQ(m.traceDrops, 0u);
}

TEST(TraceService, UntracedRequestCarriesNoEvents)
{
    ServiceConfig scfg;
    scfg.workers = 1;
    ExecutionService service(scfg);

    Request req;
    req.source = "result = 6 * 7;";
    req.config.arch = Architecture::NoMap;
    Response resp = service.submit(req).get();
    ASSERT_EQ(resp.status, ResponseStatus::Ok);
    EXPECT_TRUE(resp.traceEvents.empty());
    EXPECT_EQ(resp.traceDropped, 0u);
    EXPECT_EQ(service.metrics().traceEvents, 0u);
}

} // namespace
} // namespace nomap
