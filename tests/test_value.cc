#include <cmath>

#include <gtest/gtest.h>

#include "vm/value.h"

namespace nomap {
namespace {

TEST(Value, DefaultIsUndefined)
{
    Value v;
    EXPECT_TRUE(v.isUndefined());
    EXPECT_EQ(v.kind(), ValueKind::Undefined);
}

TEST(Value, Int32RoundTrip)
{
    for (int32_t x : {0, 1, -1, 42, INT32_MIN, INT32_MAX}) {
        Value v = Value::int32(x);
        EXPECT_TRUE(v.isInt32());
        EXPECT_TRUE(v.isNumber());
        EXPECT_EQ(v.asInt32(), x);
        EXPECT_DOUBLE_EQ(v.asNumber(), static_cast<double>(x));
    }
}

TEST(Value, DoubleRoundTrip)
{
    for (double x : {0.5, -3.25, 1e300, -1e-300}) {
        Value v = Value::boxDouble(x);
        EXPECT_TRUE(v.isBoxedDouble());
        EXPECT_DOUBLE_EQ(v.asBoxedDouble(), x);
    }
}

TEST(Value, NumberPrefersInt32)
{
    EXPECT_TRUE(Value::number(7.0).isInt32());
    EXPECT_TRUE(Value::number(-5.0).isInt32());
    EXPECT_TRUE(Value::number(7.5).isBoxedDouble());
    EXPECT_TRUE(Value::number(1e100).isBoxedDouble());
    // -0 must stay a double: int32 cannot represent it.
    EXPECT_TRUE(Value::number(-0.0).isBoxedDouble());
    EXPECT_TRUE(std::signbit(Value::number(-0.0).asBoxedDouble()));
}

TEST(Value, NanCanonicalized)
{
    // A NaN with a payload that would collide with tag space must be
    // canonicalized when boxed.
    double evil;
    uint64_t evil_bits = 0xfff2000000000005ull; // Looks like an object!
    std::memcpy(&evil, &evil_bits, sizeof(evil));
    ASSERT_TRUE(evil != evil);
    Value v = Value::boxDouble(evil);
    EXPECT_TRUE(v.isBoxedDouble());
    EXPECT_FALSE(v.isObject());
    EXPECT_TRUE(v.asBoxedDouble() != v.asBoxedDouble());
}

TEST(Value, InfinityStaysDouble)
{
    Value pos = Value::boxDouble(INFINITY);
    Value neg = Value::boxDouble(-INFINITY);
    EXPECT_TRUE(pos.isBoxedDouble());
    EXPECT_TRUE(neg.isBoxedDouble());
    EXPECT_DOUBLE_EQ(neg.asBoxedDouble(), -INFINITY);
}

TEST(Value, BooleansAndSpecials)
{
    EXPECT_TRUE(Value::boolean(true).asBoolean());
    EXPECT_FALSE(Value::boolean(false).asBoolean());
    EXPECT_TRUE(Value::boolean(true).isBoolean());
    EXPECT_TRUE(Value::null().isNull());
    EXPECT_NE(Value::null(), Value::undefined());
    EXPECT_NE(Value::boolean(false), Value::undefined());
}

TEST(Value, ReferenceKinds)
{
    Value obj = Value::object(123);
    EXPECT_TRUE(obj.isObject());
    EXPECT_EQ(obj.payload(), 123u);
    EXPECT_EQ(obj.kind(), ValueKind::Object);

    Value arr = Value::array(7);
    EXPECT_TRUE(arr.isArray());
    EXPECT_FALSE(arr.isObject());

    Value str = Value::string(55);
    EXPECT_TRUE(str.isString());
    EXPECT_EQ(str.payload(), 55u);

    Value fn = Value::function(2);
    EXPECT_TRUE(fn.isFunction());
    Value nf = Value::nativeFunction(3);
    EXPECT_TRUE(nf.isNativeFunction());
}

TEST(Value, KindMasks)
{
    EXPECT_EQ(valueKindMask(ValueKind::Int32), kMaskInt32);
    EXPECT_EQ(valueKindMask(ValueKind::Array), kMaskArray);
    uint16_t numeric = kMaskInt32 | kMaskDouble;
    EXPECT_TRUE(valueKindMask(Value::number(1.5).kind()) & numeric);
    EXPECT_TRUE(valueKindMask(Value::number(1.0).kind()) & numeric);
    EXPECT_FALSE(valueKindMask(Value::boolean(true).kind()) & numeric);
}

TEST(Value, EqualityIsBitwise)
{
    EXPECT_EQ(Value::int32(5), Value::int32(5));
    EXPECT_NE(Value::int32(5), Value::boxDouble(5.0));
    EXPECT_EQ(Value::object(1), Value::object(1));
    EXPECT_NE(Value::object(1), Value::object(2));
}

} // namespace
} // namespace nomap
