#include "testing/program_generator.h"

#include <algorithm>
#include <cstdlib>

namespace nomap {
namespace testutil {

// The emitted source is part of the differential-test contract:
// changing any literal below changes every seed's program, so keep
// edits deliberate (they invalidate previously reported seeds).
std::string
ProgramGenerator::generate()
{
    out.str("");
    // Globals: two arrays and an object with numeric fields.
    int len_a = 16 + static_cast<int>(rng.nextBounded(48));
    int len_b = 16 + static_cast<int>(rng.nextBounded(48));
    out << "var A = [];\n";
    out << "for (var i0 = 0; i0 < " << len_a << "; i0++) "
        << "A[i0] = (i0 * " << (1 + rng.nextBounded(13)) << ") % "
        << (3 + rng.nextBounded(97)) << ";\n";
    out << "var B = [];\n";
    out << "for (var i1 = 0; i1 < " << len_b << "; i1++) "
        << "B[i1] = (i1 % " << (2 + rng.nextBounded(9))
        << ") * 0.5;\n";
    out << "var obj = {p: " << rng.nextBounded(50) << ", q: "
        << rng.nextBounded(50) << ", acc: 0};\n";

    // The hot function.
    out << "function work(a, b, o, k) {\n";
    out << "    var s = 0;\n";
    int stmts = 2 + static_cast<int>(rng.nextBounded(4));
    for (int i = 0; i < stmts; ++i)
        emitStatement(i, len_a, len_b);
    out << "    o.acc = o.acc + (s % 100000);\n";
    out << "    return s % 1000000;\n";
    out << "}\n";

    // Training + steady state + a perturbation pass.
    out << "var out = 0;\n";
    out << "for (var r = 0; r < 130; r++) {\n";
    out << "    out = (out + work(A, B, obj, r % 7)) % 16777216;\n";
    out << "}\n";
    out << "result = out + obj.acc;\n";
    return out.str();
}

void
ProgramGenerator::emitStatement(int idx, int len_a, int len_b)
{
    switch (rng.nextBounded(6)) {
      case 0: // Int array reduction.
        out << "    for (var x" << idx << " = 0; x" << idx
            << " < a.length; x" << idx << "++) { s = (s + a[x" << idx
            << "] * " << (1 + rng.nextBounded(7))
            << ") % 1000000; }\n";
        break;
      case 1: // Double array reduction.
        out << "    var d" << idx << " = 0;\n"
            << "    for (var y" << idx << " = 0; y" << idx
            << " < b.length; y" << idx << "++) { d" << idx << " += b[y"
            << idx << "] * 1.25; }\n"
            << "    s = (s + Math.floor(d" << idx
            << ")) % 1000000;\n";
        break;
      case 2: // Array write loop (read-modify-write).
        out << "    for (var z" << idx << " = 0; z" << idx
            << " < a.length; z" << idx << "++) { a[z" << idx
            << "] = (a[z" << idx << "] + " << rng.nextBounded(5)
            << ") % 251; }\n";
        break;
      case 3: // Property arithmetic.
        out << "    s = (s + o.p * " << (1 + rng.nextBounded(4))
            << " + o.q) % 1000000;\n";
        break;
      case 4: // Bit mixing with the parameter.
        out << "    s = (s ^ ((k << " << (1 + rng.nextBounded(5))
            << ") | (s >> " << (1 + rng.nextBounded(4))
            << "))) & 1048575;\n";
        break;
      case 5: // Conditional accumulate over the smaller array.
        out << "    for (var w" << idx << " = 0; w" << idx << " < "
            << std::min(len_a, len_b) << "; w" << idx
            << "++) { if (a[w" << idx << "] > " << rng.nextBounded(40)
            << ") s = (s + w" << idx << ") % 1000000; }\n";
        break;
    }
}

namespace {

uint64_t
uintFromEnv(const char *name, uint64_t fallback)
{
    const char *text = std::getenv(name);
    if (!text || !*text)
        return fallback;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (!end || *end != '\0')
        return fallback;
    return static_cast<uint64_t>(v);
}

} // namespace

uint64_t
fuzzSeedFromEnv(uint64_t fallback)
{
    return uintFromEnv("NOMAP_FUZZ_SEED", fallback);
}

uint64_t
fuzzItersFromEnv(uint64_t fallback)
{
    return uintFromEnv("NOMAP_FUZZ_ITERS", fallback);
}

std::string
reproHint(uint64_t seed)
{
    return "NOMAP_FUZZ_SEED=" + std::to_string(seed) +
           " NOMAP_FUZZ_ITERS=1";
}

} // namespace testutil
} // namespace nomap
