#ifndef NOMAP_TESTS_TESTING_PROGRAM_GENERATOR_H
#define NOMAP_TESTS_TESTING_PROGRAM_GENERATOR_H

/**
 * @file
 * Seeded random-program generator shared by the differential-fuzz and
 * chaos tests.
 *
 * Programs are random but deterministic (same seed → same source),
 * terminating, and exercise the whole pipeline: int/double
 * arithmetic, array reads/writes, property access, bit mixing, and
 * data-dependent control flow, run hot enough to reach the FTL tier.
 *
 * Reproduction knobs (read by the tests via the helpers below):
 *
 *     NOMAP_FUZZ_SEED=<n>   first seed to run (default 1)
 *     NOMAP_FUZZ_ITERS=<n>  how many consecutive seeds (default 32)
 *
 * so any failing seed replays as a one-liner, e.g.
 * `NOMAP_FUZZ_SEED=17 NOMAP_FUZZ_ITERS=1 ./tests/test_differential_fuzz`.
 */

#include <cstdint>
#include <sstream>
#include <string>

#include "support/random.h"

namespace nomap {
namespace testutil {

/** Deterministic seed → JS-subset program text. */
class ProgramGenerator
{
  public:
    explicit ProgramGenerator(uint64_t seed) : rng(seed) {}

    /** Generate the program for this generator's seed. */
    std::string generate();

  private:
    void emitStatement(int idx, int len_a, int len_b);

    Xorshift64Star rng;
    std::ostringstream out;
};

/** NOMAP_FUZZ_SEED, or @p fallback when unset/invalid. */
uint64_t fuzzSeedFromEnv(uint64_t fallback);

/** NOMAP_FUZZ_ITERS, or @p fallback when unset/invalid. */
uint64_t fuzzItersFromEnv(uint64_t fallback);

/** "NOMAP_FUZZ_SEED=<seed> NOMAP_FUZZ_ITERS=1" repro hint. */
std::string reproHint(uint64_t seed);

} // namespace testutil
} // namespace nomap

#endif // NOMAP_TESTS_TESTING_PROGRAM_GENERATOR_H
